"""Legacy setup shim.

The execution environment has no network and no ``wheel`` package, so
PEP 517 editable installs fail.  This shim lets ``pip install -e .``
fall back to ``setup.py develop`` (pip picks it automatically with
``--no-use-pep517``; a plain ``pip install -e .`` also works on
environments with the wheel package installed).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
