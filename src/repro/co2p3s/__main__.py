"""Command-line interface to the CO2P3S template engine.

The CO2P3S system drove template instantiation from a GUI; this CLI is
the batch equivalent:

    python -m repro.co2p3s list
    python -m repro.co2p3s options n-server
    python -m repro.co2p3s generate n-server --set O6=LRU --set O4=Asynchronous \
        --dest build --package my_fw
    python -m repro.co2p3s generate n-server --preset cops-http --dest build
    python -m repro.co2p3s crosscut n-server
"""

from __future__ import annotations

import argparse
import sys

from repro.co2p3s.crosscut import empirical_matrix, format_matrix
from repro.co2p3s.template import available_templates, get_template

# Importing registers the N-Server template.
from repro.co2p3s.nserver import (  # noqa: F401  (registration side effect)
    ALL_FEATURES_ON,
    COPS_FTP_OPTIONS,
    COPS_HTTP_OPTIONS,
    DEGRADATION_TOGGLE_BASE,
    NSERVER,
    POOL_TOGGLE_BASE,
)

PRESETS = {
    "cops-http": COPS_HTTP_OPTIONS,
    "cops-ftp": COPS_FTP_OPTIONS,
    "all-on": ALL_FEATURES_ON,
}


def _coerce(value: str):
    lowered = value.lower()
    if lowered in ("yes", "true"):
        return True
    if lowered in ("no", "false"):
        return False
    if lowered in ("none", "null"):
        return None
    try:
        return int(value)
    except ValueError:
        return value


def cmd_list(_args) -> int:
    for name, description in sorted(available_templates().items()):
        print(f"{name}: {description}")
    return 0


def cmd_options(args) -> int:
    template = get_template(args.template)
    for spec in template.option_specs():
        print(f"{spec.key:5s} {spec.name:<44s} "
              f"[{spec.describe_values}] default={spec.default!r}")
    return 0


def cmd_generate(args) -> int:
    template = get_template(args.template)
    values = dict(PRESETS[args.preset]) if args.preset else {}
    for assignment in args.set or []:
        key, _, raw = assignment.partition("=")
        if not _:
            print(f"error: --set needs KEY=VALUE, got {assignment!r}",
                  file=sys.stderr)
            return 2
        values[key] = _coerce(raw)
    opts = template.configure(values)
    report = template.generate(opts, args.dest, package=args.package)
    print(f"generated {len(report.files)} files, {len(report.classes)} "
          f"classes, {report.total_lines} lines -> {report.dest}")
    return 0


def cmd_crosscut(args) -> int:
    template = get_template(args.template)
    extra = ((POOL_TOGGLE_BASE, DEGRADATION_TOGGLE_BASE)
             if args.template == "n-server" else ())
    base = ALL_FEATURES_ON if args.template == "n-server" else None
    matrix = empirical_matrix(template, base, extra_bases=extra)
    print(format_matrix(matrix, title=f"Crosscut matrix for {args.template}"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.co2p3s",
        description="CO2P3S generative design pattern templates")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available templates")

    p_options = sub.add_parser("options", help="show a template's options")
    p_options.add_argument("template")

    p_gen = sub.add_parser("generate", help="generate a framework package")
    p_gen.add_argument("template")
    p_gen.add_argument("--preset", choices=sorted(PRESETS),
                       help="start from a named option column of Table 1")
    p_gen.add_argument("--set", action="append", metavar="KEY=VALUE",
                       help="override one option (repeatable)")
    p_gen.add_argument("--dest", default="build")
    p_gen.add_argument("--package", default="generated")

    p_x = sub.add_parser("crosscut",
                         help="print the empirical option x class matrix")
    p_x.add_argument("template")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "list": cmd_list,
        "options": cmd_options,
        "generate": cmd_generate,
        "crosscut": cmd_crosscut,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
