"""Code metrics: classes, methods, NCSS.

Tables 3 and 4 of the paper report code distribution as (classes,
methods, NCSS) where NCSS is "the number of lines of code that were not
comment statements".  We count the Python analogue: non-blank lines
that are neither comments nor docstrings.
"""

from __future__ import annotations

import ast
import io
import os
import tokenize
from dataclasses import dataclass
from typing import Iterable, List, Set

__all__ = ["CodeMetrics", "measure_source", "measure_file", "measure_paths"]


@dataclass
class CodeMetrics:
    """Counts for a body of code; addable so categories can aggregate."""

    classes: int = 0
    methods: int = 0
    ncss: int = 0
    files: int = 0

    def __add__(self, other: "CodeMetrics") -> "CodeMetrics":
        return CodeMetrics(
            classes=self.classes + other.classes,
            methods=self.methods + other.methods,
            ncss=self.ncss + other.ncss,
            files=self.files + other.files,
        )

    def row(self, label: str) -> str:
        return f"{label:<24s} {self.classes:>8d} {self.methods:>8d} {self.ncss:>8d}"


def _docstring_lines(tree: ast.AST) -> Set[int]:
    """Line numbers occupied by docstrings."""
    lines: Set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.Module, ast.ClassDef, ast.FunctionDef,
                             ast.AsyncFunctionDef)):
            body = getattr(node, "body", [])
            if body and isinstance(body[0], ast.Expr) and \
                    isinstance(body[0].value, ast.Constant) and \
                    isinstance(body[0].value.value, str):
                expr = body[0]
                end = expr.end_lineno or expr.lineno
                lines.update(range(expr.lineno, end + 1))
    return lines


def measure_source(source: str) -> CodeMetrics:
    """Metrics for one module's source text."""
    tree = ast.parse(source)
    doc_lines = _docstring_lines(tree)

    comment_lines: Set[int] = set()
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                comment_lines.add(tok.start[0])
    except tokenize.TokenError:  # pragma: no cover - parse succeeded above
        pass

    ncss = 0
    for lineno, line in enumerate(source.splitlines(), start=1):
        stripped = line.strip()
        if not stripped:
            continue
        if lineno in doc_lines:
            continue
        if lineno in comment_lines and stripped.startswith("#"):
            continue
        ncss += 1

    classes = sum(isinstance(n, ast.ClassDef) for n in ast.walk(tree))
    methods = sum(isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
                  for n in ast.walk(tree))
    return CodeMetrics(classes=classes, methods=methods, ncss=ncss, files=1)


def measure_file(path: str) -> CodeMetrics:
    with open(path, "r") as fh:
        return measure_source(fh.read())


def measure_paths(paths: Iterable[str]) -> CodeMetrics:
    """Aggregate metrics over files and directories (``.py`` only)."""
    total = CodeMetrics()
    for path in paths:
        if os.path.isdir(path):
            for root, _dirs, files in os.walk(path):
                for name in sorted(files):
                    if name.endswith(".py"):
                        total += measure_file(os.path.join(root, name))
        elif path.endswith(".py"):
            total += measure_file(path)
    return total
