"""The paper's Table 2, as data.

``PAPER_TABLE2[class_name][option_key]`` is ``"O"`` (option controls the
class's existence), ``"+"`` (option alters the generated code of the
class), or absent (no dependency).  The crosscut benches and tests
compare the empirically computed matrix against this.

This reproduction extends the template with an ``Observability`` class
(the unified O11 layer: registry + spans + sampler + exposition) that
the paper's table does not have.  The extension rows live in
:data:`TABLE2_EXTENSIONS`; :data:`EXPECTED_TABLE2` is the paper table
with the extensions merged in — the matrix codegen must actually
produce.  ``PAPER_TABLE2`` itself stays verbatim.
"""

from __future__ import annotations

__all__ = ["PAPER_TABLE2", "TABLE2_CLASS_ORDER", "TABLE2_EXTENSIONS",
           "EXPECTED_TABLE2"]

TABLE2_CLASS_ORDER = [
    "Event",
    "CompletionEvent",
    "FileOpenEvent",
    "FileReadEvent",
    "Handle",
    "FileHandle",
    "ReadRequestEventHandler",
    "SendReplyEventHandler",
    "DecodeRequestEventHandler",
    "EncodeReplyEventHandler",
    "ComputeRequestEventHandler",
    "EventProcessor",
    "ProcessorController",
    "EventDispatcher",
    "Cache",
    "Reactor",
    "CommunicatorComponent",
    "ServerComponent",
    "ClientComponent",
    "ServerEventHandler",
    "ConnectorEventHandler",
    "AcceptorEventHandler",
    "ContainerComponent",
    "ApplicationEventHandler",
    "ClientConfiguration",
    "ServerConfiguration",
    "Server",
    "Observability",
    "Resilience",
    "Sharding",
    "Buffers",
    "Degradation",
    "Poller",
    "Deployment",
    "Worker",
]

PAPER_TABLE2 = {
    "Event": {"O4": "+", "O8": "+"},
    "CompletionEvent": {"O4": "O"},
    "FileOpenEvent": {"O4": "O", "O6": "+"},
    "FileReadEvent": {"O4": "O", "O6": "+"},
    "Handle": {"O1": "+"},
    "FileHandle": {"O4": "O", "O6": "+"},
    "ReadRequestEventHandler": {"O7": "+", "O10": "+", "O11": "+", "O12": "+"},
    "SendReplyEventHandler": {"O7": "+", "O10": "+", "O11": "+", "O12": "+"},
    "DecodeRequestEventHandler": {"O3": "O", "O7": "+", "O8": "+",
                                  "O10": "+", "O12": "+"},
    "EncodeReplyEventHandler": {"O3": "O", "O7": "+", "O8": "+",
                                "O10": "+", "O12": "+"},
    "ComputeRequestEventHandler": {"O3": "+", "O4": "+", "O7": "+",
                                   "O8": "+", "O10": "+", "O12": "+"},
    "EventProcessor": {"O5": "+", "O8": "+", "O9": "+", "O10": "+"},
    "ProcessorController": {"O5": "O"},
    "EventDispatcher": {"O2": "+", "O4": "+", "O9": "+", "O10": "+",
                        "O11": "+"},
    "Cache": {"O6": "O", "O11": "+"},
    "Reactor": {"O1": "+", "O2": "+", "O4": "+", "O5": "+", "O6": "+",
                "O8": "+", "O9": "+", "O10": "+", "O11": "+", "O12": "+"},
    "CommunicatorComponent": {"O3": "+", "O7": "+", "O8": "+", "O11": "+"},
    "ServerComponent": {"O3": "+", "O7": "+", "O10": "+", "O12": "+"},
    "ClientComponent": {"O3": "+", "O7": "+", "O10": "+", "O12": "+"},
    "ServerEventHandler": {"O7": "+", "O10": "+", "O11": "+"},
    "ConnectorEventHandler": {"O3": "+", "O10": "+", "O11": "+", "O12": "+"},
    "AcceptorEventHandler": {"O3": "+", "O9": "+", "O10": "+", "O11": "+",
                             "O12": "+"},
    "ContainerComponent": {"O7": "+", "O10": "+", "O11": "+", "O12": "+"},
    "ApplicationEventHandler": {"O7": "+", "O10": "+", "O11": "+"},
    "ClientConfiguration": {"O3": "+", "O10": "+"},
    "ServerConfiguration": {"O10": "+"},
    "Server": {"O3": "+"},
}

#: Rows (and extra cells) this reproduction adds beyond the paper's
#: table: the Observability component exists iff O11 and its body
#: depends on which subsystems there are to probe; the Server
#: Component arms the sampling timer and the Server Configuration
#: carries its period, so both gain an O11 ``+``.  The O13
#: fault-tolerance extension adds the Resilience row (exists iff O13;
#: body depends on the pool it supervises, the counters it registers
#: and the log it writes) and '+' cells where the option weaves in:
#: the accept loop, the configuration's tuning block, the Reactor's
#: construction/lifecycle/drain and the Server's drain facade.  The
#: O14 reactor-shards extension adds the Sharding row (exists iff
#: O14>1; body depends on overload-aware placement, the aggregated
#: status fields, accept/drain logging and the hardened accept /
#: cross-shard drain barrier) and '+' cells wherever the sharded
#: shape rewires the generated code: the Reactor's shard identity
#: and guarded listener, the dispatcher's ACCEPT route, the Server
#: Component's optional listen handle and timer arming, the Server
#: facade's delegation and the configuration's placement policy.
#: The O15 zero-copy write path adds the Buffers row (exists iff
#: O15=zerocopy; the body itself is option-independent) and '+'
#: cells where the option weaves in: the Reactor builds the Buffers
#: component, the Communicator takes the shared header pool, the
#: Server Component swaps in segmented out-buffers, the
#: configuration carries the pool geometry and the Observability
#: wire probes the pool hit rate.  The O17 graceful-degradation
#: extension adds the Degradation row (exists iff O17; body depends
#: on O11 — the adaptive controller reads the request-latency p99
#: from the shared registry — and O12, the retune log argument) and
#: '+' cells where the plane weaves in: the Reactor builds, starts
#: and stops the component (and wraps the processor queue / breaks
#: the file I/O through it), the accept loops (single-reactor and
#: sharded) swap silent postponement for explicit shedding, the
#: configuration carries the tuning block and the Observability
#: wire probes shed totals, brownout level and breaker state.
#: The O18 edge-triggered poller extension adds the Poller row
#: (exists iff O18=epoll; the body itself is option-independent) and
#: '+' cells where the backend weaves in: the Reactor builds the
#: component and hands its backend to the socket event source, the
#: accept loops bound their drain and re-post early-stopped
#: listeners, and the configuration carries the batch knob.
#: The O16 multi-process deployment extension adds the Deployment row
#: (exists iff O16>1; body depends on O11 — cluster-wide aggregated
#: status fields — and O13, the cross-process drain barrier) and the
#: Worker row (exists iff O16>1; body depends on O14 — each worker
#: process runs a single Reactor or a Sharding fan-out — plus O11 and
#: O13), and '+' cells where the option weaves in: the Server facade
#: delegates to the Deployment component (and gains the
#: rolling-restart facade), the Server Component adopts the shared
#: SO_REUSEPORT listen socket, the configuration carries the worker
#: deadlines and respawn budget, and the Observability status report
#: aggregates across worker processes through the stats socket.
TABLE2_EXTENSIONS = {
    "Observability": {"O2": "+", "O6": "+", "O9": "+", "O10": "+",
                      "O11": "O", "O14": "+", "O15": "+", "O16": "+",
                      "O17": "+"},
    "ServerComponent": {"O11": "+", "O14": "+", "O15": "+", "O16": "+"},
    "ServerConfiguration": {"O11": "+", "O13": "+", "O14": "+", "O15": "+",
                            "O16": "+", "O17": "+", "O18": "+"},
    "Resilience": {"O2": "+", "O11": "+", "O12": "+", "O13": "O"},
    "Reactor": {"O13": "+", "O14": "+", "O15": "+", "O17": "+", "O18": "+"},
    "AcceptorEventHandler": {"O13": "+", "O17": "+", "O18": "+"},
    "Server": {"O13": "+", "O14": "+", "O16": "+"},
    "EventDispatcher": {"O14": "+"},
    "Sharding": {"O9": "+", "O11": "+", "O12": "+", "O13": "+",
                 "O14": "O", "O17": "+"},
    "CommunicatorComponent": {"O15": "+"},
    "Buffers": {"O15": "O"},
    "Degradation": {"O11": "+", "O12": "+", "O17": "O"},
    "Poller": {"O18": "O"},
    "Deployment": {"O11": "+", "O13": "+", "O16": "O"},
    "Worker": {"O11": "+", "O13": "+", "O14": "+", "O16": "O"},
}


def _merge(paper, extensions):
    merged = {name: dict(row) for name, row in paper.items()}
    for name, row in extensions.items():
        merged.setdefault(name, {}).update(row)
    return merged


#: What the generator must actually produce: paper + extensions.
EXPECTED_TABLE2 = _merge(PAPER_TABLE2, TABLE2_EXTENSIONS)
