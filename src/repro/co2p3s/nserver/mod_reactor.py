"""N-Server template: the ``reactor`` and ``server`` modules.

Table 2 rows covered:

========  =========================================================
Reactor   body depends on O1 O2 O4 O5 O6 O8 O9 O10 O11 O12 O13 O14
          O15 O17 O18 (NOT O3 — step handlers are installed by the
          handlers module's ``install_step_handlers``; NOT O7 — idle
          wiring lives in ServerComponent / ServerEventHandler /
          Container)
Server    body depends on O3, O13 (the ``drain`` facade method), O14
          (delegation to the Sharding component) and O16 (delegation
          to the Deployment component, plus the ``rolling_restart``
          facade)
========  =========================================================
"""

from __future__ import annotations

from repro.co2p3s.codegen import ClassSpec, Fragment, ModuleSpec

__all__ = ["MODULE_REACTOR", "MODULE_SERVER"]


def _o(key):
    return lambda o: bool(o[key])


def _no(key):
    return lambda o: not o[key]


def _debug(o):
    return o["O10"] == "Debug"


def _async(o):
    return o["O4"] == "Asynchronous"


def _sync(o):
    return o["O4"] == "Synchronous"


def _sharded(o):
    return int(o["O14"]) > 1


def _multiproc(o):
    return int(o["O16"]) > 1


def _zerocopy(o):
    return o["O15"] == "zerocopy"


def _epoll(o):
    return o["O18"] == "epoll"


MODULE_REACTOR = ModuleSpec(
    name="reactor",
    doc="Central wiring of the generated framework: the extended Reactor "
        "with Event Source decorators, Event Processors and the feature "
        "subsystems selected by the template options.",
    imports=[
        Fragment("import time"),
        Fragment("import os",
                 guard=lambda o: o["O1"] == "2N" or (
                     o["O4"] == "Synchronous" and o["O6"] is None),
                 options=("O1", "O4", "O6")),
        Fragment("from repro import runtime as rt"),
        Fragment("from $package import handlers"),
        Fragment("from $package.communication import ("
                 "AcceptorEventHandler, ApplicationEventHandler, "
                 "ClientComponent, ConnectorEventHandler, "
                 "ContainerComponent, ServerComponent, ServerEventHandler)"),
        Fragment("from $package.processing import EventDispatcher, EventProcessor"),
        Fragment("from $package.processing import ProcessorController",
                 guard=lambda o: o["O2"] and o["O5"] == "Dynamic",
                 options=("O2", "O5")),
        Fragment("from $package.cache import Cache",
                 guard=lambda o: o["O6"] is not None, options=("O6",)),
        Fragment("from $package.buffers import Buffers",
                 guard=_zerocopy, options=("O15",)),
        Fragment("from $package.observability import Observability",
                 guard=_o("O11"), options=("O11",)),
        Fragment("from $package.resilience import Resilience",
                 guard=_o("O13"), options=("O13",)),
        Fragment("from $package.degradation import Degradation",
                 guard=_o("O17"), options=("O17",)),
        Fragment("from $package.poller import Poller",
                 guard=_epoll, options=("O18",)),
    ],
    classes=[
        ClassSpec(
            name="Reactor",
            doc="Specialised, extended Reactor: event demultiplexing and "
                "dispatching for a network server, with support for "
                "multiple event sources and multiple processors.",
            fragments=[
                # -- construction ------------------------------------------
                Fragment(
                    '''
                    def __init__(self, configuration, hooks$reactor_init_params):
                        self.configuration = configuration
                        self.hooks = hooks
                        $reactor_set_shard_id
                        self.clock = time.monotonic
                        $make_tracer
                        $make_log
                        $make_observability
                        $make_profiler
                        $make_poller_component
                        self.socket_source = rt.SocketEventSource($socket_source_args)
                        self.timer_source = rt.TimerEventSource(self.socket_source)
                        self.source = rt.QueueEventSource(self.timer_source)
                        self.container = ContainerComponent(self)
                        $make_cache
                        $make_buffers
                        $make_processor
                        $make_controller
                        $make_overload
                        $watch_overload
                        $make_degradation
                        $make_file_io
                        handlers.install_step_handlers(self)
                        self.acceptor_event_handler = AcceptorEventHandler(self)
                        self.server_event_handler = ServerEventHandler(self)
                        self.application_event_handler = ApplicationEventHandler(self)
                        self.connector_event_handler = ConnectorEventHandler(self)
                        self.client_component = ClientComponent(self)
                        self.server_component = ServerComponent(self, configuration$reactor_server_component_args)
                        self.dispatcher = EventDispatcher(self, threads=$dispatcher_threads_expr)
                        $enable_dispatch_profiling
                        $enable_cache_profiling
                        $wire_processor_error_trace
                        $wire_observability
                        $make_resilience
                    ''',
                    # $make_resilience comes last so EventQuarantine.attach
                    # chains (not clobbers) the Debug-mode error_hook.
                    # $make_degradation sits between the overload
                    # controller it upgrades and the file I/O it breaks.
                    options=("O1", "O2", "O4", "O5", "O6", "O8", "O9",
                             "O10", "O11", "O12", "O13", "O14", "O15",
                             "O17", "O18"),
                ),
                # -- connection plumbing -------------------------------------
                Fragment(
                    '''
                    def register_communicator(self, conn):
                        self.container.add(conn)
                        self.socket_source.register(conn.handle)
                        $deadline_watch

                    def sync_interest(self, handle):
                        self.socket_source.update_interest(handle)
                        self.socket_source.wakeup()
                    ''',
                    options=("O13",),
                ),
                Fragment(
                    '''
                    def teardown_communicator(self, conn):
                        self.container.remove(conn)
                        self.socket_source.deregister(conn.handle)
                        $deadline_unwatch
                        $teardown_overload
                        $teardown_log
                    ''',
                    options=("O9", "O12", "O13"),
                ),
                # -- event submission (O2=Yes: hand off to the pool) ----------
                Fragment(
                    '''
                    def submit_readable(self, event):
                        # One-shot read interest: no duplicate events while
                        # queued, no two workers on one connection.
                        self.socket_source.pause(event.handle)
                        $stamp_readable_priority
                        $submit_call

                    def submit_writable(self, event):
                        $stamp_writable_priority
                        $submit_call
                    ''',
                    guard=_o("O2"), options=("O2", "O8"),
                ),
                Fragment(
                    '''
                    def submit_completion(self, event):
                        $submit_call
                    ''',
                    guard=lambda o: o["O2"] and o["O4"] == "Asynchronous",
                    options=("O2", "O4", "O8"),
                ),
                Fragment(
                    '''
                    def _connection_priority(self, handle):
                        conn = self.container.lookup(handle)
                        return conn.priority if conn is not None else 0
                    ''',
                    guard=lambda o: o["O2"] and o["O8"],
                    options=("O2", "O8"),
                ),
                # -- event processing (pool handler / inline fallthrough) -----
                Fragment(
                    '''
                    def process_event(self, event):
                        kind = event.kind
                        if kind == rt.EventKind.READABLE:
                            try:
                                self.read_request_event_handler.handle(event)
                            finally:
                                self.socket_source.resume(event.handle)
                        elif kind == rt.EventKind.WRITABLE:
                            self.send_reply_event_handler.handle(event)
                        else:
                            self.process_other(event)
                    ''',
                    options=("O2",),
                ),
                Fragment(
                    '''
                    def process_other(self, event):
                        if event.kind == rt.EventKind.COMPLETION:
                            event.complete()
                    ''',
                    guard=_async, options=("O4",),
                ),
                Fragment(
                    '''
                    def process_other(self, event):
                        # Completion events are synchronous: nothing besides
                        # readiness events reaches the processing path.
                        pass
                    ''',
                    guard=_sync, options=("O4",),
                ),
                # -- file access services ---------------------------------------
                Fragment(
                    '''
                    def read_file_async(self, path, act, priority=0):
                        """Emulated non-blocking file read (Proactor/ACT)."""
                        self.file_io.read_file(path, act=act, priority=priority)
                    ''',
                    guard=_async, options=("O4",),
                ),
                Fragment(
                    '''
                    def read_file_sync(self, path):
                        """Blocking file read through the generated cache."""
                        return self.cache.get_file(path).payload
                    ''',
                    guard=lambda o: o["O4"] == "Synchronous" and o["O6"] is not None,
                    options=("O4", "O6"),
                ),
                Fragment(
                    '''
                    def read_file_sync(self, path):
                        """Blocking, uncached file read."""
                        root = self.configuration.document_root
                        if root is None:
                            raise FileNotFoundError(path)
                        full = os.path.abspath(os.path.join(root, path.lstrip("/")))
                        if not full.startswith(os.path.abspath(root)):
                            raise FileNotFoundError(path)
                        with open(full, "rb") as fh:
                            return fh.read()
                    ''',
                    guard=lambda o: o["O4"] == "Synchronous" and o["O6"] is None,
                    options=("O4", "O6"),
                ),
                # -- lifecycle ----------------------------------------------------
                Fragment(
                    '''
                    def start(self$reactor_start_params):
                        $open_server_component
                        $start_processor
                        $start_controller
                        $start_file_io
                        $start_resilience
                        $start_degradation
                        self.dispatcher.start()
                        $log_started

                    def stop(self):
                        $stop_degradation
                        self.dispatcher.stop()
                        self.server_component.close()
                        self.container.close_all()
                        $stop_resilience
                        $stop_controller
                        $stop_processor
                        $stop_file_io
                        self.source.close()
                        $final_obs_sample
                        $close_tracer
                        $log_stopped
                    ''',
                    # Resilience stops before the processor so a dead
                    # worker is not respawned into a stopping pool; the
                    # adaptive control loop stops before anything else so
                    # it never retunes a dismantling server.
                    options=("O2", "O4", "O5", "O10", "O11", "O12", "O13",
                             "O14", "O17"),
                ),
                Fragment(
                    '''
                    def drain(self, timeout=None):
                        """Graceful shutdown: stop accepting, let accepted
                        work finish up to the deadline, then force-stop.
                        Returns True if the server went quiescent."""
                        if timeout is None:
                            timeout = self.configuration.drain_timeout
                        $log_drain
                        self.server_component.close()
                        deadline = self.clock() + timeout
                        drained = False
                        settle = None
                        while self.clock() < deadline:
                            if self.resilience.quiescent():
                                # Hold quiescent briefly: a reply fully
                                # flushed may still spawn a final event.
                                if settle is None:
                                    settle = self.clock()
                                elif self.clock() - settle >= 0.05:
                                    drained = True
                                    break
                            else:
                                settle = None
                            time.sleep(0.005)
                        self.stop()
                        return drained
                    ''',
                    guard=_o("O13"), options=("O13", "O12"),
                ),
            ],
        ),
    ],
)


MODULE_SERVER = ModuleSpec(
    name="server",
    doc="The generated Server facade: the class application code "
        "instantiates.",
    imports=[
        Fragment("from $package.communication import ServerConfiguration"),
        Fragment("from $package.reactor import Reactor",
                 guard=lambda o: not _sharded(o) and not _multiproc(o),
                 options=("O14", "O16")),
        Fragment("from $package.sharding import Sharding",
                 guard=lambda o: _sharded(o) and not _multiproc(o),
                 options=("O14", "O16")),
        Fragment("from $package.deployment import Deployment",
                 guard=_multiproc, options=("O16",)),
    ],
    classes=[
        ClassSpec(
            name="Server",
            doc="Facade over the generated framework.  Applications provide "
                "only the hook methods (decode / handle / encode, framing, "
                "and lifecycle callbacks) — the paper's programming model.",
            fragments=[
                Fragment(
                    '''
                    pipeline = $server_pipeline
                    ''',
                    options=("O3",),
                ),
                Fragment(
                    '''
                    def __init__(self, hooks, configuration=None,
                                 host="127.0.0.1", port=0):
                        if configuration is None:
                            configuration = ServerConfiguration(host=host, port=port)
                        self.configuration = configuration
                        self.hooks = hooks
                        $server_make_reactor
                        $server_bind_primary

                    @property
                    def port(self):
                        return $server_port_expr

                    def start(self):
                        $server_start_call

                    def stop(self):
                        $server_stop_call

                    def connect(self, client_configuration):
                        """Open an outbound connection through the framework."""
                        $server_connect_body

                    def __enter__(self):
                        self.start()
                        return self

                    def __exit__(self, *exc_info):
                        self.stop()
                    ''',
                    options=("O14", "O16"),
                ),
                Fragment(
                    '''
                    def drain(self, timeout=None):
                        """Gracefully drain in-flight work, then stop."""
                        $server_drain_call
                    ''',
                    guard=_o("O13"), options=("O13", "O14", "O16"),
                ),
                Fragment(
                    '''
                    def rolling_restart(self, drain_timeout=None):
                        """Replace every worker process with a fresh one,
                        zero downtime (option O16): each successor
                        accepts on the shared socket before its
                        predecessor drains."""
                        self.deployment.rolling_restart(drain_timeout)
                    ''',
                    guard=_multiproc, options=("O16",),
                ),
            ],
        ),
    ],
)
