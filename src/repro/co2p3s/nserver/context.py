"""Substitution context for the N-Server template.

Maps the options (the paper's twelve plus the O13 fault-tolerance,
O14 reactor-shards, O15 write-path and O17 degradation extensions) to
the ``$parameter`` values the fragments use.
Option-disabled instrumentation lines expand to :data:`OMIT`, which the
fragment renderer deletes — this is the crosscutting weave: a feature's
call sites exist in the generated text only when its option is on.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.co2p3s.codegen import OMIT
from repro.co2p3s.options import OptionSet

__all__ = ["build_context"]


def build_context(o: OptionSet) -> Dict[str, Any]:
    debug = o["O10"] == "Debug"
    profiling = bool(o["O11"])
    logging = bool(o["O12"])
    idle = bool(o["O7"])
    sched = bool(o["O8"])
    overload = bool(o["O9"])
    codec = bool(o["O3"])
    pool = bool(o["O2"])
    async_io = o["O4"] == "Asynchronous"
    cache = o["O6"]
    dynamic = o["O5"] == "Dynamic"
    resilient = bool(o["O13"])
    sharded = int(o["O14"]) > 1
    multiproc = int(o["O16"]) > 1
    zerocopy = o["O15"] == "zerocopy"
    degradation = bool(o["O17"])
    epoll = o["O18"] == "epoll"

    def on(flag: bool, line: str) -> str:
        return line if flag else OMIT

    ctx: Dict[str, Any] = {}

    # -- handlers module -------------------------------------------------
    for step, label in (("read_request", "readable"),
                        ("send_reply", "writable")):
        tag = step.replace("_", "-")
        ctx[f"trace_{step}"] = on(
            debug, f'self.reactor.tracer.trace("{tag}", event.handle.name)')
        ctx[f"log_{step}"] = on(
            logging, f'self.reactor.log.debug(f"{label}: {{event.handle.name}}")')
        ctx[f"count_{step}"] = on(profiling, "self.events_handled += 1")
        ctx[f"touch_{step}"] = on(
            idle, "conn.handle.last_activity = self.reactor.clock()")

    for step in ("decode", "encode", "compute"):
        ctx[f"trace_{step}"] = on(
            debug, f'self.reactor.tracer.trace("{step}", conn.handle.name)')
        ctx[f"log_{step}"] = on(
            logging, f'self.reactor.log.debug(f"{step}: {{conn.handle.name}}")')
        ctx[f"touch_{step}"] = on(idle, "conn.touch()")

    ctx["reclassify_priority"] = on(
        sched, "conn.set_priority(conn.hooks.classify_priority(conn))")
    # Handling may change a connection's service class (e.g. after
    # authentication), so the Handle step re-evaluates the priority too.
    ctx["compute_reclassify"] = on(
        sched, "conn.set_priority(conn.hooks.classify_priority(conn))")
    ctx["stamp_write_priority"] = on(
        sched, "conn.handle.write_priority = conn.get_priority()")
    ctx["compute_result_check"] = (
        "# the result flows on to the Encode Reply step (Fig 1)"
        if codec else
        'if not (result is PENDING or result is CLOSE or result is None '
        'or isinstance(result, (bytes, bytearray))): '
        'raise TypeError("handle() must return bytes when no codec steps '
        'are generated")')

    # -- processing module ----------------------------------------------------
    # With reactor shards (O14>1) the ACCEPT route goes through the
    # Sharding component; the lambda defers the attribute lookup, since
    # ``reactor.sharding`` is assigned after the Reactors are built.
    ctx["accept_target"] = (
        "(lambda event: reactor.sharding.accept(event))" if sharded
        else "reactor.acceptor_event_handler.handle_guarded" if overload
        else "reactor.acceptor_event_handler.handle")
    ctx["completion_route_pool"] = on(
        async_io, "self.route(EventKind.COMPLETION, reactor.submit_completion)")
    ctx["completion_route_inline"] = on(
        async_io, "self.route(EventKind.COMPLETION, reactor.process_other)")
    if cache == "Custom":
        ctx["cache_policy_expr"] = "reactor.hooks.make_cache_policy()"
    elif cache == "LRU-Threshold":
        ctx["cache_policy_expr"] = ('make_policy("LRU-Threshold", '
                                    'threshold=configuration.cache_threshold)')
    elif cache is not None:
        ctx["cache_policy_expr"] = f'"{cache}"'
    else:
        ctx["cache_policy_expr"] = OMIT  # Cache class not generated

    # -- observability module -------------------------------------------------
    ctx["spans_tracer"] = "reactor.tracer" if debug else "None"
    ctx["probe_queue_depth"] = on(
        pool, 'sampler.add_probe("server_queue_depth", '
              'lambda: reactor.processor.queue_length, '
              'help="Reactive Event Processor queue length")')
    ctx["probe_pool_threads"] = on(
        pool, 'sampler.add_probe("server_pool_threads", '
              'lambda: reactor.processor.thread_count, '
              'help="Event Processor pool size")')
    ctx["probe_pool_busy"] = on(
        pool, 'sampler.add_probe("server_pool_busy", '
              'lambda: reactor.processor.busy_count, '
              'help="Event Processor threads currently handling events")')
    ctx["probe_overload_tripped"] = on(
        overload, 'sampler.add_probe("server_overload_tripped", '
                  'lambda: len(reactor.overload.overloaded_queues()), '
                  'help="Watermark queues currently in the tripped state")')
    ctx["probe_postponed_accepts"] = on(
        overload, 'sampler.add_probe("server_postponed_accepts", '
                  'lambda: reactor.overload.postponed_accepts, '
                  'help="Accepts postponed by overload control")')
    ctx["probe_shed_total"] = on(
        degradation, 'sampler.add_probe("server_shed_total", '
                     'lambda: reactor.degradation.shedding.shed_total, '
                     'help="Connections and requests shed by the '
                     'degradation policy")')
    ctx["probe_brownout_level"] = on(
        degradation, 'sampler.add_probe("server_brownout_level", '
                     'lambda: reactor.degradation.brownout.level, '
                     'help="Brownout degradation level (0..1)")')
    ctx["probe_breaker_open"] = on(
        degradation, 'sampler.add_probe("server_breaker_open", '
                     'lambda: 0.0 if reactor.degradation.breaker.state '
                     '== "closed" else 1.0, '
                     'help="File-I/O circuit breaker not closed (0/1)")')
    ctx["probe_cache_hit_rate"] = on(
        cache is not None,
        'sampler.add_probe("server_cache_hit_rate", '
        'lambda: reactor.cache.stats.hit_rate, '
        'help="File cache hit rate (0..1)")')
    ctx["probe_buffer_pool_hit_rate"] = on(
        zerocopy,
        'sampler.add_probe("server_buffer_pool_hit_rate", '
        'lambda: reactor.buffers.pool.stats.hit_rate, '
        'help="Header buffer pool hit rate (0..1)")')
    # The pooled recv_into read path exists on every backend, so its
    # gauge is unconditional in observability builds.
    ctx["probe_read_pool_hit_rate"] = (
        'sampler.add_probe("server_read_pool_hit_rate", '
        'lambda: reactor.socket_source.read_pool.stats.hit_rate, '
        'help="Pooled read buffer hit rate (0..1)")')

    # -- communication module -----------------------------------------------------
    ctx["use_codec"] = "True" if codec else "False"
    ctx["communicator_profiler_arg"] = on(profiling,
                                          "profiler=reactor.profiler,")
    ctx["communicator_spans_arg"] = on(
        profiling, "spans=reactor.observability.spans,")
    # Zero-copy write path (O15): the Communicator gets the shared
    # header pool, and every accepted handle a segmented out-buffer.
    ctx["communicator_buffer_arg"] = on(
        zerocopy, "buffer_pool=reactor.buffers.pool,")
    ctx["zerocopy_outbuffer"] = on(
        zerocopy, "handle.out_buffer = rt.OutBuffer()")
    five = ('("read request", "decode request", "handle request", '
            '"encode reply", "send reply")')
    three = '("read request", "handle request", "send reply")'
    ctx["pipeline_steps"] = five if codec else three
    ctx["server_pipeline"] = five if codec else three

    ctx["server_open_trace"] = on(
        debug, 'self.reactor.tracer.trace("server", f"open port {self.port}")')
    ctx["server_open_log"] = on(
        logging, 'self.reactor.log.info(f"listening on port {self.port}")')
    ctx["server_open_idle_timer"] = on(
        idle, "self.reactor.timer_source.schedule("
              'self.configuration.idle_scan_interval, payload="idle-scan")')
    ctx["server_open_obs_timer"] = on(
        profiling, "self.reactor.timer_source.schedule("
                   'self.configuration.obs_sample_interval, '
                   'payload="obs-sample")')
    ctx["touch_new_communicator"] = on(idle, "conn.touch()")

    ctx["client_connect_trace"] = on(
        debug, 'self.reactor.tracer.trace("connect", handle.name)')
    ctx["client_connect_log"] = on(
        logging, 'self.reactor.log.info(f"connecting to '
                 '{client_configuration.host}:{client_configuration.port}")')
    ctx["client_connect_touch"] = on(
        idle, "handle.last_activity = self.reactor.clock()")

    ctx["trace_server_event"] = on(
        debug, 'self.reactor.tracer.trace("server-event", str(event.payload))')
    ctx["count_timer_events"] = on(profiling, "self.timer_events += 1")
    ctx["idle_scan_dispatch"] = on(idle, "self._idle_scan(event)")
    ctx["obs_sample_dispatch"] = on(profiling, "self._obs_sample(event)")

    ctx["trace_connect_event"] = on(
        debug, 'self.reactor.tracer.trace("connect", conn.handle.name)')
    ctx["log_connect_event"] = on(
        logging, 'self.reactor.log.info(f"connected to {conn.handle.name}")')
    ctx["count_connections_established"] = on(
        profiling, "self.connections_established += 1")
    ctx["send_client_greeting"] = (
        "conn.send_bytes(conn.hooks.encode("
        "conn.hooks.client_greeting(conn), conn))"
        if codec else
        "conn.send_bytes(conn.hooks.client_greeting(conn))")

    ctx["trace_accept"] = on(
        debug, 'self.reactor.tracer.trace("accept", handle.name)')
    ctx["log_accept"] = on(
        logging, 'self.reactor.log.info(f"accepted {handle.name}")')
    ctx["count_connections_accepted"] = on(
        profiling, "self.connections_accepted += 1")
    ctx["profile_connection_accepted"] = on(
        profiling, "self.reactor.profiler.connection_accepted()")
    ctx["send_server_greeting"] = (
        "conn.send_bytes(conn.hooks.encode("
        "conn.hooks.server_greeting(conn), conn))"
        if codec else
        "conn.send_bytes(conn.hooks.server_greeting(conn))")

    ctx["trace_app_event"] = on(
        debug, 'self.reactor.tracer.trace("app-event", str(event.payload))')
    ctx["count_app_events"] = on(profiling, "self.events_handled += 1")
    ctx["touch_app_event"] = on(
        idle, "if event.handle is not None: "
              "event.handle.last_activity = self.reactor.clock()")

    ctx["trace_connects"] = "True" if debug else "False"

    # -- reactor module ------------------------------------------------------------
    ctx["make_tracer"] = on(debug, "self.tracer = rt.EventTracer()")
    ctx["make_log"] = on(logging, "self.log = rt.ServerLog()")
    # The tracer is built first: the Observability span recorder mirrors
    # span events into it when the build is O10=Debug.
    ctx["make_observability"] = on(
        profiling, "self.observability = Observability(self)")
    ctx["make_profiler"] = on(
        profiling, "self.profiler = self.observability.profiler")
    ctx["wire_observability"] = on(profiling, "self.observability.wire()")
    ctx["make_cache"] = on(cache is not None, "self.cache = Cache(self)")
    ctx["make_buffers"] = on(zerocopy, "self.buffers = Buffers(self)")
    if pool and sched:
        queue_expr = "rt.QuotaPriorityQueue(configuration.scheduling_quotas)"
    elif pool:
        queue_expr = "rt.FifoEventQueue()"
    else:
        queue_expr = None
    if queue_expr is not None and degradation:
        # O17: the CoDel sojourn wrapper goes around whatever queue the
        # other options chose (the Degradation component attaches the
        # drop handler once it is built).
        queue_expr = f"Degradation.wrap_queue(configuration, {queue_expr})"
    if queue_expr is not None:
        ctx["make_processor"] = (
            f"self.processor = EventProcessor(self, {queue_expr}, "
            "configuration.processor_threads)")
    else:
        ctx["make_processor"] = OMIT
    ctx["make_controller"] = on(
        pool and dynamic,
        "self.processor_controller = ProcessorController(self, self.processor)")
    ctx["make_overload"] = on(
        overload, "self.overload = rt.OverloadController("
                  "max_connections=configuration.max_connections)")
    ctx["watch_overload"] = on(
        overload, 'self.overload.watch("reactive", self.processor.queue_probe, '
                  "rt.Watermark(configuration.overload_high, "
                  "configuration.overload_low))")
    if async_io:
        sink = "self.processor.submit" if pool else "self.source.post"
        io_cache = "self.cache.file_cache" if cache is not None else "None"
        io_extra = (", breaker=self.degradation.breaker, "
                    "retry_budget=self.degradation.retry_budget"
                    if degradation else "")
        ctx["make_file_io"] = (
            f"self.file_io = rt.AsyncFileIO(sink={sink}, "
            f"threads=configuration.file_io_threads, cache={io_cache}, "
            f"root=configuration.document_root{io_extra})")
    else:
        ctx["make_file_io"] = OMIT
    ctx["dispatcher_threads_expr"] = (
        "1" if o["O1"] == "1" else "2 * (os.cpu_count() or 1)")
    ctx["enable_dispatch_profiling"] = on(
        profiling, "self.dispatcher.enable_profiling()")
    ctx["enable_cache_profiling"] = on(
        profiling and cache is not None,
        "self.cache.enable_profiling(self.profiler)")
    ctx["wire_processor_error_trace"] = on(
        debug and pool,
        "self.processor.error_hook = self.processor.trace_error")

    # -- poller module (O18) ------------------------------------------------
    ctx["make_poller_component"] = on(epoll, "self.poller = Poller(self)")
    ctx["socket_source_args"] = "poller=self.poller.backend" if epoll else ""
    # Early-stopped accept drains re-post the listener under the
    # edge-triggered backend; the level-triggered shape re-reports the
    # backlog on every poll and needs no call site at all.
    ctx["accept_repost"] = on(
        epoll, "self.reactor.poller.repost_accept(listen)")
    ctx["accept_batch_init"] = on(epoll, "taken = 0")
    ctx["accept_batch_check"] = on(
        epoll, "if taken >= self.reactor.configuration.accept_batch: "
               "return self.reactor.poller.repost_accept(listen)")
    ctx["accept_batch_count"] = on(epoll, "taken += 1")

    ctx["teardown_overload"] = on(overload, "self.overload.connection_closed()")
    ctx["teardown_log"] = on(
        logging, 'self.log.debug(f"teardown {conn.handle.name}")')

    ctx["stamp_readable_priority"] = on(
        sched, "event.priority = self._connection_priority(event.handle)")
    ctx["stamp_writable_priority"] = on(
        sched, 'event.priority = getattr(event.handle, "write_priority", 0)')
    ctx["submit_call"] = ("self.processor.submit_scheduled(event)" if sched
                          else "self.processor.submit(event)")

    ctx["start_processor"] = on(pool, "self.processor.start()")
    ctx["start_controller"] = on(pool and dynamic,
                                 "self.processor_controller.start()")
    ctx["start_file_io"] = on(async_io, "self.file_io.start()")
    # Non-primary shards have no listening endpoint to report.
    ctx["log_started"] = on(
        logging,
        'self.log.info(f"reactor shard {self.shard_id} started")'
        if sharded else
        'self.log.info(f"server listening on port '
        '{self.server_component.port}")')
    ctx["stop_controller"] = on(pool and dynamic,
                                "self.processor_controller.stop()")
    ctx["stop_processor"] = on(pool, "self.processor.stop()")
    ctx["stop_file_io"] = on(async_io, "self.file_io.stop()")
    ctx["final_obs_sample"] = on(
        profiling, "self.observability.sample()")
    ctx["close_tracer"] = on(debug, "self.tracer.close()")
    ctx["log_stopped"] = on(logging, 'self.log.info("server stopped")')

    # -- resilience module (O13) --------------------------------------------------
    dl_extra = ""
    sup_extra = ""
    q_extra = ""
    if profiling:
        dl_extra += (', counter=reactor.observability.registry.counter('
                     '"server_deadline_timeouts_total", '
                     '"Connections closed for blowing a stage deadline")')
        sup_extra += (', counter=reactor.observability.registry.counter('
                      '"server_worker_restarts_total", '
                      '"Dead Event Processor workers replaced")')
        q_extra += (', counter=reactor.observability.registry.counter('
                    '"server_quarantined_events_total", '
                    '"Poison events quarantined after retries")')
    if logging:
        dl_extra += ", log=reactor.log"
        sup_extra += ", log=reactor.log"
        q_extra += ", log=reactor.log"
    ctx["make_deadlines"] = (
        "self.deadlines = rt.DeadlineMonitor("
        "reactor.container.connections, policy, "
        "interval=configuration.deadline_interval" + dl_extra + ")")
    ctx["make_supervisor"] = on(
        pool, "self.supervisor = rt.WorkerSupervisor(reactor.processor, "
              "interval=configuration.supervision_interval" + sup_extra + ")")
    ctx["make_quarantine"] = on(
        pool, "self.quarantine = rt.EventQuarantine.attach(reactor.processor, "
              "max_retries=configuration.max_event_retries" + q_extra + ")")
    ctx["start_supervisor"] = on(pool, "self.supervisor.start()")
    ctx["stop_supervisor"] = on(pool, "self.supervisor.stop()")
    ctx["quiescent_queue_check"] = on(
        pool, "if reactor.processor.queue_length or "
              "reactor.processor.busy_count: return False")
    ctx["count_accept_errors"] = on(
        profiling, "self.reactor.profiler.accept_error()")
    ctx["log_accept_error"] = on(
        logging, 'self.reactor.log.error(f"accept error: {exc!r}")')
    ctx["make_resilience"] = on(resilient, "self.resilience = Resilience(self)")
    # Wheel-backed deadline arming: a watched connection costs O(1) per
    # re-arm instead of a full scan per monitor interval.
    ctx["deadline_watch"] = on(
        resilient, "self.resilience.deadlines.watch(conn)")
    ctx["deadline_unwatch"] = on(
        resilient, "self.resilience.deadlines.unwatch(conn)")
    ctx["start_resilience"] = on(resilient, "self.resilience.start()")
    ctx["stop_resilience"] = on(resilient, "self.resilience.stop()")
    ctx["try_accept_expr"] = (
        "self.reactor.resilience.safe_accept(listen)" if resilient
        else "listen.try_accept()")
    ctx["log_drain"] = on(
        logging, 'self.log.info(f"draining (timeout={timeout}s)")')

    # -- degradation module (O17) -------------------------------------------------
    ctx["make_degradation"] = on(
        degradation, "self.degradation = Degradation(self)")
    ctx["start_degradation"] = on(degradation, "self.degradation.start()")
    ctx["stop_degradation"] = on(degradation, "self.degradation.stop()")
    # The adaptive controller reads the request p99 from the shared obs
    # registry (O11) and logs its retunes (O12); without those options
    # the constructor defaults (no probe, null log) apply.
    ctx["adaptive_probe_arg"] = on(
        profiling, "latency_probe=lambda: reactor.observability.registry"
                   '.histogram("server_request_seconds").quantile(0.99),')
    ctx["adaptive_log_arg"] = on(logging, "log=reactor.log,")
    # Shed records carry the request trace id only when the tracing
    # plane exists (O11) — an O11=No build must not mention trace ids.
    ctx["accept_trace_id"] = (
        'getattr(handle, "trace_id", 0)' if profiling else "0")
    ctx["sojourn_trace_id"] = (
        'getattr(handle, "trace_id", 0) if handle is not None else 0'
        if profiling else "0")

    # -- sharding module (O14) ----------------------------------------------------
    ctx["shard_count"] = str(int(o["O14"]))
    ctx["reactor_init_params"] = ", shard_id=0, listen=True" if sharded else ""
    ctx["reactor_set_shard_id"] = on(sharded, "self.shard_id = shard_id")
    ctx["reactor_server_component_args"] = ", listen=listen" if sharded else ""
    ctx["reactor_start_params"] = ", open_listener=True" if sharded else ""
    ctx["open_server_component"] = (
        "if open_listener: self.server_component.open()" if sharded
        else "self.server_component.open()")
    ctx["server_component_init_params"] = ", listen=True" if sharded else ""
    # At O16>1 the server component runs inside a worker process and
    # adopts the supervisor's shared SO_REUSEPORT socket instead of
    # binding its own (a worker build run outside a supervisor still
    # binds, with SO_REUSEPORT, so the generated package stands alone).
    listen_expr = (
        "rt.worker_listen_handle(configuration, handle_cls=Handle)"
        if multiproc else
        "rt.ListenHandle(configuration.host, configuration.port, "
        "configuration.backlog, handle_cls=Handle)")
    ctx["server_component_listen_expr"] = (
        f"({listen_expr} if listen else None)" if sharded else listen_expr)
    ctx["close_idempotent_guard"] = (
        "if self.listen is None or self.listen.closed:" if sharded
        else "if self.listen.closed:")
    ctx["arm_idle_timer"] = ctx["server_open_idle_timer"]
    ctx["arm_obs_timer"] = ctx["server_open_obs_timer"]
    ctx["server_make_reactor"] = (
        "self.deployment = Deployment(configuration, hooks)" if multiproc
        else "self.sharding = Sharding(configuration, hooks)" if sharded
        else "self.reactor = Reactor(configuration, hooks)")
    ctx["server_bind_primary"] = on(
        sharded and not multiproc, "self.reactor = self.sharding.primary")
    ctx["server_start_call"] = ("self.deployment.start()" if multiproc
                                else "self.sharding.start()" if sharded
                                else "self.reactor.start()")
    ctx["server_stop_call"] = ("self.deployment.stop()" if multiproc
                               else "self.sharding.stop()" if sharded
                               else "self.reactor.stop()")
    ctx["server_drain_call"] = (
        "return self.deployment.drain(timeout)" if multiproc
        else "return self.sharding.drain(timeout)" if sharded
        else "return self.reactor.drain(timeout)")
    ctx["shard_accept_gate"] = on(
        overload,
        "if not any(s.overload.accepting() for s in self.shards): return")
    ctx["shard_try_accept_expr"] = (
        "self.primary.resilience.safe_accept(listen)" if resilient
        else "listen.try_accept()")
    ctx["shard_reroute_overloaded"] = on(
        overload, "if not shard.overload.accepting(): shard = min("
                  "(s for s in self.shards if s.overload.accepting()), "
                  "key=lambda s: (len(s.container), s.shard_id))")
    ctx["shard_overload_opened"] = on(
        overload, "shard.overload.connection_opened()")
    ctx["shard_log_accept"] = on(
        logging, 'self.primary.log.info(f"accepted {handle.name} '
                 '-> shard {shard.shard_id}")')
    ctx["shard_log_drain"] = on(
        logging, 'self.primary.log.info(f"draining {len(self.shards)} '
                 'shards (timeout={timeout}s)")')

    # -- deployment module (O16) --------------------------------------------
    ctx["proc_count"] = str(int(o["O16"]))
    ctx["server_port_expr"] = (
        "self.deployment.port" if multiproc
        else "self.reactor.server_component.port")
    # The supervisor process runs no reactor, so outbound connections
    # can only be opened from hooks inside the worker processes.
    ctx["server_connect_body"] = (
        'raise RuntimeError("connect() needs an in-process reactor; '
        "at O16>1 open outbound connections from hooks inside the "
        'worker processes")'
        if multiproc else
        "return self.reactor.client_component.connect(client_configuration)")
    ctx["worker_make_server"] = (
        "self.server = Sharding(configuration, hooks)" if sharded
        else "self.server = Reactor(configuration, hooks)")
    ctx["worker_port_expr"] = (
        "self.server.primary.server_component.port" if sharded
        else "self.server.server_component.port")

    return ctx
