"""The twelve N-Server options (Table 1) and the paper's configurations.

Option keys are the paper's O1..O12.  The two application columns of
Table 1 are reproduced as :data:`COPS_FTP_OPTIONS` and
:data:`COPS_HTTP_OPTIONS`; the second and third COPS-HTTP experiments
(event scheduling / overload control, Figs 5 and 6) are the variant
dictionaries below.
"""

from __future__ import annotations

from typing import Dict, List

from repro.co2p3s.options import OptionSet, OptionSpec

__all__ = [
    "NSERVER_OPTION_SPECS",
    "COPS_FTP_OPTIONS",
    "COPS_HTTP_OPTIONS",
    "COPS_HTTP_OBSERVABILITY_OPTIONS",
    "COPS_HTTP_RESILIENCE_OPTIONS",
    "COPS_HTTP_SCHEDULING_OPTIONS",
    "COPS_HTTP_OVERLOAD_OPTIONS",
    "COPS_HTTP_SHARDED_OPTIONS",
    "COPS_HTTP_ZEROCOPY_OPTIONS",
    "COPS_HTTP_DEGRADATION_OPTIONS",
    "COPS_HTTP_EPOLL_OPTIONS",
    "ALL_FEATURES_ON",
    "POOL_TOGGLE_BASE",
    "DEGRADATION_TOGGLE_BASE",
    "DEPLOYMENT_TOGGLE_BASE",
    "option_table_rows",
]

CACHE_POLICIES = ("LRU", "LFU", "LRU-MIN", "LRU-Threshold", "Hyper-G", "Custom")

NSERVER_OPTION_SPECS = (
    OptionSpec(key="O1", name="# of dispatcher threads",
               describe_values="1 or 2N", default="1",
               values=("1", "2N")),
    OptionSpec(key="O2", name="Separate thread pool for event handling",
               describe_values="Yes/No", default=True,
               values=(True, False)),
    OptionSpec(key="O3", name="Encoding/Decoding required",
               describe_values="Yes/No", default=True,
               values=(True, False)),
    OptionSpec(key="O4", name="Completion events",
               describe_values="Asynchronous/Synchronous",
               default="Asynchronous",
               values=("Asynchronous", "Synchronous")),
    OptionSpec(key="O5", name="Event thread allocation",
               describe_values="Dynamic/Static", default="Static",
               values=("Dynamic", "Static")),
    OptionSpec(key="O6", name="File cache",
               describe_values="Yes (LRU, LFU, LRU-MIN, LRU-Threshold, "
                               "Hyper-G or Custom) / No",
               default=None,
               values=(None,) + CACHE_POLICIES),
    OptionSpec(key="O7", name="Shutdown long idle",
               describe_values="Yes/No", default=False,
               values=(True, False)),
    OptionSpec(key="O8", name="Event scheduling",
               describe_values="Yes/No", default=False,
               values=(True, False)),
    OptionSpec(key="O9", name="Overload control",
               describe_values="Yes/No", default=False,
               values=(True, False)),
    OptionSpec(key="O10", name="Mode",
               describe_values="Production/Debug", default="Production",
               values=("Production", "Debug")),
    OptionSpec(key="O11", name="Performance profiling",
               describe_values="Yes/No", default=False,
               values=(True, False)),
    OptionSpec(key="O12", name="Logging",
               describe_values="Yes/No", default=False,
               values=(True, False)),
    # Extension beyond the paper's Table 1 (like O11's observability
    # half): fault tolerance — per-stage deadlines, worker supervision,
    # poison-event quarantine, hardened accept and graceful drain.
    OptionSpec(key="O13", name="Fault tolerance",
               describe_values="Yes/No", default=False,
               values=(True, False)),
    # Second structural extension: multi-reactor sharding — N reactors
    # (each with its own event sources, processors and scheduler queue)
    # behind the primary reactor's single listening endpoint.  O14=1 is
    # the paper's single-reactor shape and emits zero sharding code.
    OptionSpec(key="O14", name="Reactor shards",
               describe_values="1, 2, 4 or 8", default=1,
               values=(1, 2, 4, 8)),
    # Third structural extension: the response write path.  "zerocopy"
    # generates a Buffers component (shared size-classed header pool)
    # plus segmented scatter-gather out-buffers per connection;
    # "buffered" is the paper's copying write path and emits zero new
    # code.
    OptionSpec(key="O15", name="Write path",
               describe_values="buffered/zerocopy", default="buffered",
               values=("buffered", "zerocopy")),
    # Sixth structural extension: multi-process deployment — N worker
    # processes (each a fresh interpreter running its own, possibly
    # O14-sharded, reactor) accepting from one shared SO_REUSEPORT
    # listening socket under a ProcessSupervisor with crash respawn
    # and SIGHUP rolling restarts.  O16=1 is the paper's
    # single-process shape and emits zero deployment code.
    OptionSpec(key="O16", name="Deployment (worker processes)",
               describe_values="1, 2, 4 or 8", default=1,
               values=(1, 2, 4, 8)),
    # Fourth structural extension: the graceful-degradation plane.
    # O17=Yes upgrades O9's silent accept/postpone latch to explicit
    # prioritized decisions — per-client rate limiting, cheap 503 +
    # Retry-After rejection, CoDel sojourn drops, brownout, a
    # circuit-broken file I/O plane and (optionally) AIMD watermark
    # control.  O17=No is the paper's shape and emits zero new code.
    OptionSpec(key="O17", name="Degradation policy",
               describe_values="Yes/No", default=False,
               values=(True, False)),
    # Fifth structural extension: the readiness-selection backend.
    # "epoll" generates a Poller component pinning the edge-triggered
    # Linux backend, plus batched-accept bounds and listener re-posting
    # on every early-stopped drain (an edge, once consumed, is never
    # re-delivered).  "select" is the paper's portable scan-based shape
    # and emits zero poller code.
    OptionSpec(key="O18", name="Poller",
               describe_values="select/epoll", default="select",
               values=("select", "epoll")),
)

#: Table 1, COPS-FTP column.
COPS_FTP_OPTIONS: Dict[str, object] = {
    "O1": "1",
    "O2": True,
    "O3": True,
    "O4": "Synchronous",
    "O5": "Dynamic",
    "O6": None,
    "O7": True,
    "O8": False,
    "O9": False,
    "O10": "Production",
    "O11": False,
    "O12": False,
    "O13": False,
    "O14": 1,
    "O15": "buffered",
}

#: Table 1, COPS-HTTP column (first experiment: Figs 3/4).
COPS_HTTP_OPTIONS: Dict[str, object] = {
    "O1": "1",
    "O2": True,
    "O3": True,
    "O4": "Asynchronous",
    "O5": "Static",
    "O6": "LRU",
    "O7": False,
    "O8": False,
    "O9": False,
    "O10": "Production",
    "O11": False,
    "O12": False,
    "O13": False,
    "O14": 1,
    "O15": "buffered",
}

#: Second COPS-HTTP experiment (Fig 5): event scheduling on, cache off.
COPS_HTTP_SCHEDULING_OPTIONS = dict(COPS_HTTP_OPTIONS, O8=True, O6=None)

#: Third COPS-HTTP experiment (Fig 6): overload control on.
COPS_HTTP_OVERLOAD_OPTIONS = dict(COPS_HTTP_OPTIONS, O9=True)

#: COPS-HTTP with the unified observability layer (O11=Yes): the
#: generated framework answers ``GET /server-status`` with live
#: counters, per-stage latency quantiles and sampler gauges.
COPS_HTTP_OBSERVABILITY_OPTIONS = dict(COPS_HTTP_OPTIONS, O11=True)

#: COPS-HTTP hardened for fault injection (O11+O13): observable *and*
#: resilient — deadlines, supervised workers, quarantine, graceful
#: drain, with the resilience counters on ``/server-status``.
COPS_HTTP_RESILIENCE_OPTIONS = dict(
    COPS_HTTP_OBSERVABILITY_OPTIONS, O13=True)

#: COPS-HTTP sharded across four reactors (O11+O13+O14): the Fig 3
#: shard-count sweep shape — observable, resilient, multi-reactor.
COPS_HTTP_SHARDED_OPTIONS = dict(COPS_HTTP_RESILIENCE_OPTIONS, O14=4)

#: COPS-HTTP on the zero-copy write path (O15=zerocopy): pooled header
#: buffers, cached bodies referenced as memoryview segments, and a
#: scatter-gather send loop — the bench_zero_copy comparison shape.
COPS_HTTP_ZEROCOPY_OPTIONS = dict(COPS_HTTP_OPTIONS, O15="zerocopy")

#: COPS-HTTP with the graceful-degradation plane (O9+O11+O17): overload
#: now *answers* — 503 + Retry-After, per-client rate limits, brownout —
#: instead of silently postponing, with the whole plane observable on
#: ``/server-status?auto``.  The graceful-vs-cliff experiment shape.
COPS_HTTP_DEGRADATION_OPTIONS = dict(
    COPS_HTTP_OBSERVABILITY_OPTIONS, O9=True, O17=True)

#: COPS-HTTP on the edge-triggered poller (O18=epoll): a generated
#: Poller component pins the O(ready) epoll backend, bounds the accept
#: drain per readiness event and re-posts early-stopped listeners —
#: the fig3-poller throughput-comparison shape.
COPS_HTTP_EPOLL_OPTIONS = dict(COPS_HTTP_OPTIONS, O18="epoll")

#: Everything enabled — the base point for the Table 2 crosscut analysis
#: (all optional classes exist, so existence toggles are observable).
ALL_FEATURES_ON: Dict[str, object] = {
    "O1": "1",
    "O2": True,
    "O3": True,
    "O4": "Asynchronous",
    "O5": "Dynamic",
    "O6": "LRU",
    "O7": True,
    "O8": True,
    "O9": True,
    "O10": "Debug",
    "O11": True,
    "O12": True,
    "O13": True,
    "O14": 2,
    "O15": "zerocopy",
    "O16": 2,
    "O17": True,
    "O18": "epoll",
}

#: Secondary crosscut base: with scheduling / overload / dynamic threads
#: off, O2 (the thread pool itself) becomes legal to toggle — needed to
#: observe the O2 column of Table 2 empirically.  O14=1 here so the
#: single-reactor accept path is observable too (at O14>1 the ACCEPT
#: route goes through the Sharding component for every O9 value).
POOL_TOGGLE_BASE: Dict[str, object] = dict(
    ALL_FEATURES_ON, O5="Static", O8=False, O9=False, O14=1, O17=False)

#: Third crosscut base: with the degradation plane off, O9 (which
#: O17 requires) becomes legal to toggle again from an otherwise
#: fully-featured *sharded* build — needed to observe the O9 column
#: of classes that only exist at O14>1 (POOL_TOGGLE_BASE is
#: single-reactor, and from ALL_FEATURES_ON the O9 toggle is rejected
#: because O17=Yes depends on it).
DEGRADATION_TOGGLE_BASE: Dict[str, object] = dict(
    ALL_FEATURES_ON, O17=False)

#: Fourth crosscut base: with a single worker process (O16=1) the
#: in-process Server facade becomes observable again — at O16>1 the
#: Server delegates every call to the Deployment component for *every*
#: O14 value, which would hide the Server x O14 cell from the primary
#: base.
DEPLOYMENT_TOGGLE_BASE: Dict[str, object] = dict(
    ALL_FEATURES_ON, O16=1)


def _show(value) -> str:
    if value is True:
        return "Yes"
    if value is False:
        return "No"
    if value is None:
        return "No"
    return str(value)


def option_table_rows(*columns: Dict[str, object]) -> List[List[str]]:
    """Rows of the Table 1 reproduction: option name, legal values, then
    one column per configuration dict."""
    rows = []
    for spec in NSERVER_OPTION_SPECS:
        row = [f"{spec.key}: {spec.name}", spec.describe_values]
        for col in columns:
            value = col.get(spec.key, spec.default)
            shown = _show(value)
            if spec.key == "O6" and value not in (None, False):
                shown = f"Yes: {value}"
            row.append(shown)
        rows.append(row)
    return rows
