"""The N-Server pattern template (the paper's contribution).

``NSERVER`` is the registered template instance; the Table 1 application
configurations are exported alongside it.
"""

from repro.co2p3s.nserver.generator import NSERVER, NSERVER_MODULES, NServerTemplate
from repro.co2p3s.nserver.options import (
    ALL_FEATURES_ON,
    COPS_FTP_OPTIONS,
    COPS_HTTP_OPTIONS,
    COPS_HTTP_DEGRADATION_OPTIONS,
    COPS_HTTP_OBSERVABILITY_OPTIONS,
    COPS_HTTP_OVERLOAD_OPTIONS,
    COPS_HTTP_RESILIENCE_OPTIONS,
    COPS_HTTP_SCHEDULING_OPTIONS,
    COPS_HTTP_SHARDED_OPTIONS,
    COPS_HTTP_ZEROCOPY_OPTIONS,
    DEGRADATION_TOGGLE_BASE,
    NSERVER_OPTION_SPECS,
    POOL_TOGGLE_BASE,
    option_table_rows,
)
from repro.co2p3s.nserver.table2 import (
    EXPECTED_TABLE2,
    PAPER_TABLE2,
    TABLE2_CLASS_ORDER,
    TABLE2_EXTENSIONS,
)

__all__ = [
    "ALL_FEATURES_ON",
    "EXPECTED_TABLE2",
    "PAPER_TABLE2",
    "POOL_TOGGLE_BASE",
    "TABLE2_CLASS_ORDER",
    "TABLE2_EXTENSIONS",
    "COPS_FTP_OPTIONS",
    "COPS_HTTP_OPTIONS",
    "COPS_HTTP_DEGRADATION_OPTIONS",
    "COPS_HTTP_OBSERVABILITY_OPTIONS",
    "COPS_HTTP_OVERLOAD_OPTIONS",
    "COPS_HTTP_RESILIENCE_OPTIONS",
    "COPS_HTTP_SCHEDULING_OPTIONS",
    "COPS_HTTP_SHARDED_OPTIONS",
    "COPS_HTTP_ZEROCOPY_OPTIONS",
    "DEGRADATION_TOGGLE_BASE",
    "NSERVER",
    "NSERVER_MODULES",
    "NSERVER_OPTION_SPECS",
    "NServerTemplate",
    "option_table_rows",
]
