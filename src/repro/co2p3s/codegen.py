"""Fragment-based code generation.

The generative mechanism of CO2P3S, reproduced in Python: a pattern
template describes the *classes* of the framework it generates; each
class is assembled from *fragments* whose inclusion and text depend on
the template options ("application code underlying each feature can be
included or excluded at code generation time").

Key objects:

* :class:`Fragment` — a block of source with an inclusion guard and the
  list of option keys it depends on.  Substitution parameters appear as
  ``$name`` and are filled from a context dict computed from the options.
* :class:`ClassSpec` — a generated class: existence guard + fragments.
* :class:`ModuleSpec` — a generated module: imports + classes + free code.
* :class:`CodeGenerator` — renders a list of ModuleSpecs to a package on
  disk and returns a :class:`GenerationReport` with per-class metadata
  (the raw material for the Table 2 crosscut matrix).
"""

from __future__ import annotations

import os
import re
import textwrap
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.co2p3s.options import OptionSet

__all__ = [
    "Fragment",
    "ClassSpec",
    "ModuleSpec",
    "GeneratedClass",
    "GenerationReport",
    "CodeGenerator",
    "OMIT",
    "always",
    "when",
]

Guard = Callable[[OptionSet], bool]


def always(_opts: OptionSet) -> bool:
    """The default guard: include unconditionally."""
    return True


def when(predicate: Callable[[OptionSet], bool]) -> Guard:
    """Readability alias: ``when(lambda o: o["O8"])``."""
    return predicate


_SUBST = re.compile(r"\$(\w+)")

#: a substitution value of OMIT deletes the whole line it appears on —
#: how option-disabled instrumentation lines vanish from generated code
OMIT = "\x00omit\x00"


@dataclass
class Fragment:
    """A guarded block of source at class-body (or module) level.

    ``options`` lists the option keys this fragment depends on — through
    its guard or through ``$name`` substitutions.  The dependency record
    is declared, then *verified empirically* by the crosscut analysis
    (generate + diff), so a stale declaration shows up as a test failure
    rather than silent misdocumentation.
    """

    source: str
    guard: Guard = always
    options: Tuple[str, ...] = ()

    def render(self, opts: OptionSet, context: Dict[str, Any]) -> Optional[str]:
        if not self.guard(opts):
            return None
        text = textwrap.dedent(self.source).strip("\n")

        def replace(match: re.Match) -> str:
            name = match.group(1)
            if name not in context:
                raise KeyError(
                    f"fragment parameter ${name} missing from context")
            return str(context[name])

        text = _SUBST.sub(replace, text)
        if OMIT in text:
            text = "\n".join(line for line in text.split("\n")
                             if OMIT not in line)
        return text


@dataclass
class ClassSpec:
    """One class of the generated framework."""

    name: str
    doc: str
    bases: Tuple[str, ...] = ()
    exists: Guard = always
    exists_options: Tuple[str, ...] = ()
    fragments: List[Fragment] = field(default_factory=list)

    def render(self, opts: OptionSet, context: Dict[str, Any]) -> Optional[str]:
        if not self.exists(opts):
            return None
        bases = f"({', '.join(self.bases)})" if self.bases else ""
        lines = [f"class {self.name}{bases}:"]
        doc = self.doc.strip()
        body_parts: List[str] = []
        if doc:
            body_parts.append(f'"""{doc}"""')
        for frag in self.fragments:
            text = frag.render(opts, context)
            if text:
                body_parts.append(text)
        if not body_parts:
            body_parts.append("pass")
        body = "\n\n".join(body_parts)
        lines.append(textwrap.indent(body, "    "))
        return "\n".join(lines)

    def body_options(self) -> Tuple[str, ...]:
        """Option keys that alter this class's generated body."""
        seen: List[str] = []
        for frag in self.fragments:
            for key in frag.options:
                if key not in seen:
                    seen.append(key)
        return tuple(seen)


@dataclass
class ModuleSpec:
    """One module of the generated package."""

    name: str
    doc: str = ""
    imports: List[Fragment] = field(default_factory=list)
    prelude: List[Fragment] = field(default_factory=list)
    classes: List[ClassSpec] = field(default_factory=list)
    epilogue: List[Fragment] = field(default_factory=list)

    def render(self, opts: OptionSet, context: Dict[str, Any]) -> Optional[str]:
        class_texts = [c.render(opts, context) for c in self.classes]
        live_classes = [t for t in class_texts if t]
        prelude = [f.render(opts, context) for f in self.prelude]
        epilogue = [f.render(opts, context) for f in self.epilogue]
        has_code = live_classes or any(prelude) or any(epilogue)
        if not has_code:
            return None
        parts: List[str] = []
        if self.doc:
            parts.append(f'"""{self.doc.strip()}"""')
        imports = [f.render(opts, context) for f in self.imports]
        imports = [t for t in imports if t]
        if imports:
            parts.append("\n".join(imports))
        parts.extend(t for t in prelude if t)
        parts.extend(live_classes)
        parts.extend(t for t in epilogue if t)
        return "\n\n\n".join(parts) + "\n"


@dataclass
class GeneratedClass:
    """Metadata for one class that made it into the output."""

    name: str
    module: str
    source: str
    exists_options: Tuple[str, ...]
    body_options: Tuple[str, ...]


@dataclass
class GenerationReport:
    """What a generation run produced."""

    package: str
    dest: str
    files: Dict[str, str] = field(default_factory=dict)
    classes: List[GeneratedClass] = field(default_factory=list)

    @property
    def total_lines(self) -> int:
        return sum(text.count("\n") for text in self.files.values())

    def class_names(self) -> List[str]:
        return [c.name for c in self.classes]

    def find_class(self, name: str) -> Optional[GeneratedClass]:
        for c in self.classes:
            if c.name == name:
                return c
        return None


class CodeGenerator:
    """Renders ModuleSpecs into a Python package."""

    def __init__(self, modules: Sequence[ModuleSpec],
                 context_builder: Callable[[OptionSet], Dict[str, Any]],
                 init_builder: Optional[Callable[[OptionSet, List[str]], str]] = None,
                 header: str = ""):
        self.modules = list(modules)
        self.context_builder = context_builder
        self.init_builder = init_builder
        self.header = header

    def render(self, opts: OptionSet, package: str) -> GenerationReport:
        """Render in memory (no filesystem)."""
        context = dict(self.context_builder(opts))
        context.setdefault("package", package)
        report = GenerationReport(package=package, dest="")
        module_names: List[str] = []
        for mod in self.modules:
            text = mod.render(opts, context)
            if text is None:
                continue
            if self.header:
                text = self.header.rstrip() + "\n" + text
            report.files[f"{mod.name}.py"] = text
            module_names.append(mod.name)
            for cls in mod.classes:
                if cls.exists(opts):
                    rendered = cls.render(opts, context)
                    report.classes.append(GeneratedClass(
                        name=cls.name,
                        module=mod.name,
                        source=rendered or "",
                        exists_options=cls.exists_options,
                        body_options=cls.body_options(),
                    ))
        init_text = (self.init_builder(opts, module_names)
                     if self.init_builder else
                     "\n".join(f"from {context['package']}.{m} import *  # noqa: F401,F403"
                               for m in module_names) + "\n")
        if self.header:
            init_text = self.header.rstrip() + "\n" + init_text
        report.files["__init__.py"] = init_text
        return report

    def generate(self, opts: OptionSet, dest: str, package: str) -> GenerationReport:
        """Render and write the package under ``dest/package/``."""
        report = self.render(opts, package)
        pkg_dir = os.path.join(dest, package)
        os.makedirs(pkg_dir, exist_ok=True)
        report.dest = pkg_dir
        for filename, text in report.files.items():
            with open(os.path.join(pkg_dir, filename), "w") as fh:
                fh.write(text)
        return report
