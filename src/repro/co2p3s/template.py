"""Pattern templates and the template registry.

CO2P3S presents the programmer with a palette of design pattern
templates; each template is customised by setting options and then
generates framework code.  :class:`PatternTemplate` is the base class;
the registry lets tools enumerate available templates (the CO2P3S GUI
role — here, a programmatic API).
"""

from __future__ import annotations

import importlib
import sys
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Sequence

from repro.co2p3s.codegen import CodeGenerator, GenerationReport
from repro.co2p3s.options import OptionSet, OptionSpec

__all__ = ["PatternTemplate", "register_template", "get_template",
           "available_templates", "load_generated_package"]


class PatternTemplate:
    """A generative design pattern template.

    Subclasses define ``name``, ``description``, ``option_specs()`` and
    ``build_generator()``; users call :meth:`configure` then
    :meth:`generate`.
    """

    name: str = "abstract"
    description: str = ""

    def option_specs(self) -> Sequence[OptionSpec]:
        raise NotImplementedError

    def build_generator(self) -> CodeGenerator:
        raise NotImplementedError

    # -- user-facing API ------------------------------------------------------
    def configure(self, values: Optional[Mapping[str, Any]] = None) -> OptionSet:
        """An :class:`OptionSet` for this template (defaults + overrides)."""
        return OptionSet(self.option_specs(), values)

    def validate(self, opts: OptionSet) -> None:
        """Template-level cross-option constraint checks (override)."""

    def render(self, opts: OptionSet, package: str = "generated") -> GenerationReport:
        self.validate(opts)
        return self.build_generator().render(opts, package)

    def generate(self, opts: OptionSet, dest: str,
                 package: str = "generated") -> GenerationReport:
        """Write the generated framework package under ``dest``."""
        self.validate(opts)
        return self.build_generator().generate(opts, dest, package)


_REGISTRY: Dict[str, PatternTemplate] = {}


def register_template(template: PatternTemplate) -> PatternTemplate:
    _REGISTRY[template.name] = template
    return template


def get_template(name: str) -> PatternTemplate:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(f"no template named {name!r}; "
                       f"available: {sorted(_REGISTRY)}") from None


def available_templates() -> Dict[str, str]:
    return {name: t.description for name, t in _REGISTRY.items()}


def load_generated_package(dest: str, package: str):
    """Import a just-generated package from ``dest``.

    Adds ``dest`` to ``sys.path`` (idempotently) and purges any stale
    modules of the same package so repeated generate/load cycles in one
    process see fresh code.
    """
    if dest not in sys.path:
        sys.path.insert(0, dest)
    for mod_name in list(sys.modules):
        if mod_name == package or mod_name.startswith(package + "."):
            del sys.modules[mod_name]
    importlib.invalidate_caches()
    return importlib.import_module(package)
