"""Option model for design pattern templates.

A template exposes a set of *options* (Table 1).  Each option has a key,
a display name, a domain of legal values, and a default.  An
:class:`OptionSet` is a validated assignment of values; code generation
consumes it, and every fragment of generated code records which option
keys it depends on (that record is what makes the Table 2 crosscut
matrix computable).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Mapping, Optional, Sequence, Tuple

__all__ = ["OptionSpec", "OptionError", "OptionSet"]


class OptionError(ValueError):
    """Illegal option key or value."""


@dataclass(frozen=True)
class OptionSpec:
    """One template option.

    ``values`` is either an explicit tuple of legal values or ``None``
    with a ``validator`` predicate (for open domains like thread
    counts).  ``describe_values`` is the human-readable legal-values
    string printed in the Table 1 reproduction.
    """

    key: str
    name: str
    describe_values: str
    default: Any
    values: Optional[Tuple[Any, ...]] = None
    validator: Optional[Callable[[Any], bool]] = None

    def check(self, value: Any) -> None:
        if self.values is not None and value in self.values:
            return
        if self.validator is not None and self.validator(value):
            return
        raise OptionError(
            f"option {self.key} ({self.name}): illegal value {value!r}; "
            f"legal: {self.describe_values}"
        )


class OptionSet:
    """A validated {key: value} assignment over a list of specs."""

    def __init__(self, specs: Sequence[OptionSpec],
                 values: Optional[Mapping[str, Any]] = None):
        self._specs: Dict[str, OptionSpec] = {s.key: s for s in specs}
        if len(self._specs) != len(specs):
            raise OptionError("duplicate option keys")
        self._values: Dict[str, Any] = {s.key: s.default for s in specs}
        if values:
            for key, value in values.items():
                self.set(key, value)

    # -- access -----------------------------------------------------------
    @property
    def specs(self) -> Tuple[OptionSpec, ...]:
        return tuple(self._specs.values())

    def spec(self, key: str) -> OptionSpec:
        try:
            return self._specs[key]
        except KeyError:
            raise OptionError(f"unknown option {key!r}") from None

    def get(self, key: str) -> Any:
        self.spec(key)
        return self._values[key]

    def __getitem__(self, key: str) -> Any:
        return self.get(key)

    def set(self, key: str, value: Any) -> None:
        self.spec(key).check(value)
        self._values[key] = value

    def replace(self, **changes) -> "OptionSet":
        """A copy with some values changed (validated)."""
        merged = dict(self._values)
        merged.update(changes)
        return OptionSet(list(self._specs.values()), merged)

    def as_dict(self) -> Dict[str, Any]:
        return dict(self._values)

    def __eq__(self, other) -> bool:
        if not isinstance(other, OptionSet):
            return NotImplemented
        return self._values == other._values

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OptionSet({self._values!r})"

    def legal_values(self, key: str) -> Optional[Tuple[Any, ...]]:
        return self.spec(key).values
