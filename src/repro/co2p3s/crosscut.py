"""Crosscut analysis: the Table 2 experiment.

Table 2 of the paper illustrates that the N-Server options crosscut the
generated classes: an ``O`` cell means the option decides whether the
class exists at all; a ``+`` cell means the option changes the class's
generated code.  The paper uses the matrix to argue that a static
framework supporting every option is infeasible.

We compute the matrix **empirically**: generate the framework at a base
option setting, then toggle each option through each of its other legal
values and diff the per-class sources.

* existence changed for some toggle  -> ``O``
* body text changed for some toggle  -> ``+``
* identical under every toggle       -> blank

``declared_matrix`` reads the same information from the template's
fragment metadata; tests assert the two agree, so the declared
dependencies can never drift from what codegen actually does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.co2p3s.options import OptionSet
from repro.co2p3s.template import PatternTemplate

__all__ = ["CrosscutMatrix", "empirical_matrix", "declared_matrix",
           "format_matrix"]


@dataclass
class CrosscutMatrix:
    """cells[class_name][option_key] in {"O", "+", ""}."""

    class_names: List[str]
    option_keys: List[str]
    cells: Dict[str, Dict[str, str]] = field(default_factory=dict)

    def cell(self, class_name: str, option_key: str) -> str:
        return self.cells.get(class_name, {}).get(option_key, "")

    def row(self, class_name: str) -> Dict[str, str]:
        return dict(self.cells.get(class_name, {}))

    def options_for(self, class_name: str) -> Dict[str, str]:
        return {k: v for k, v in self.row(class_name).items() if v}

    def differences(self, other: "CrosscutMatrix") -> List[Tuple[str, str, str, str]]:
        """(class, option, mine, theirs) for every disagreeing cell."""
        diffs = []
        names = sorted(set(self.class_names) | set(other.class_names))
        keys = sorted(set(self.option_keys) | set(other.option_keys))
        for name in names:
            for key in keys:
                a, b = self.cell(name, key), other.cell(name, key)
                if a != b:
                    diffs.append((name, key, a, b))
        return diffs


def _snapshot(template: PatternTemplate, opts: OptionSet,
              canon=None) -> Dict[str, str]:
    """class name -> rendered source at the given options.

    ``canon`` optionally normalises each class source before
    comparison (the generated-code auditor passes an AST dump so the
    diff sees code structure, not text)."""
    report = template.render(opts, package="xcut")
    if canon is None:
        return {c.name: c.source for c in report.classes}
    return {c.name: canon(c.source) for c in report.classes}


def empirical_matrix(template: PatternTemplate,
                     base: Optional[Mapping[str, object]] = None,
                     extra_bases: Tuple[Mapping[str, object], ...] = (),
                     canon=None) -> CrosscutMatrix:
    """Generate-and-diff crosscut analysis.

    ``base`` should enable every optional class (so that existence
    toggles are observable); defaults to the template's defaults.

    Some toggles are unreachable from a single base because template
    constraints tie options together (e.g. with event scheduling on,
    the thread pool cannot be turned off).  ``extra_bases`` supplies
    additional legal starting points; results merge cell-wise with
    ``O`` dominating ``+`` dominating blank.

    ``canon`` normalises class sources before diffing (see
    :func:`_snapshot`).
    """
    matrix = _empirical_from(template, base, canon=canon)
    for extra in extra_bases:
        other = _empirical_from(template, extra, canon=canon)
        for name in other.class_names:
            if name not in matrix.cells:
                continue  # report classes of the primary base only
            for key in matrix.option_keys:
                a = matrix.cells[name].get(key, "")
                b = other.cell(name, key)
                if a != "O" and b in ("O", "+") and (b == "O" or a == ""):
                    matrix.cells[name][key] = b
    return matrix


def _empirical_from(template: PatternTemplate,
                    base: Optional[Mapping[str, object]],
                    canon=None) -> CrosscutMatrix:
    base_opts = template.configure(base)
    base_classes = _snapshot(template, base_opts, canon=canon)
    option_keys = [s.key for s in base_opts.specs]
    matrix = CrosscutMatrix(class_names=list(base_classes),
                            option_keys=option_keys)
    for name in base_classes:
        matrix.cells[name] = {k: "" for k in option_keys}

    for spec in base_opts.specs:
        legal = spec.values or ()
        for value in legal:
            if value == base_opts[spec.key]:
                continue
            try:
                toggled = base_opts.replace(**{spec.key: value})
                template.validate(toggled)
            except Exception:
                continue  # combination rejected by template constraints
            variant = _snapshot(template, toggled, canon=canon)
            for name in base_classes:
                base_src = base_classes[name]
                var_src = variant.get(name)
                if var_src is None:
                    matrix.cells[name][spec.key] = "O"
                elif var_src != base_src and matrix.cells[name][spec.key] != "O":
                    matrix.cells[name][spec.key] = "+"
        # classes that exist only in variants (absent from base) are not
        # reported; choose a base that enables everything.
    return matrix


def declared_matrix(template: PatternTemplate,
                    base: Optional[Mapping[str, object]] = None) -> CrosscutMatrix:
    """The matrix as declared by the template's fragment metadata."""
    base_opts = template.configure(base)
    report = template.render(base_opts, package="xcut")
    option_keys = [s.key for s in base_opts.specs]
    matrix = CrosscutMatrix(class_names=report.class_names(),
                            option_keys=option_keys)
    for cls in report.classes:
        row = {k: "" for k in option_keys}
        for key in cls.body_options:
            row[key] = "+"
        for key in cls.exists_options:
            row[key] = "O"
        matrix.cells[cls.name] = row
    return matrix


def format_matrix(matrix: CrosscutMatrix, title: str = "") -> str:
    """Render the matrix the way Table 2 prints it."""
    keys = matrix.option_keys
    name_width = max(len(n) for n in matrix.class_names) + 1
    lines = []
    if title:
        lines.append(title)
    header = " " * name_width + " ".join(f"{k:>4s}" for k in keys)
    lines.append(header)
    lines.append("-" * len(header))
    for name in matrix.class_names:
        row = matrix.cells.get(name, {})
        cells = " ".join(f"{row.get(k, ''):>4s}" for k in keys)
        lines.append(f"{name:<{name_width}}{cells}")
    return "\n".join(lines)
