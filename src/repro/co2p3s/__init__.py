"""CO2P3S: the generative design pattern engine.

Option model, fragment-based code generation, pattern-template registry,
crosscut analysis (Table 2) and code metrics (Tables 3 and 4).  The
N-Server template lives in :mod:`repro.co2p3s.nserver`.
"""

from repro.co2p3s.codegen import (
    ClassSpec,
    CodeGenerator,
    Fragment,
    GeneratedClass,
    GenerationReport,
    ModuleSpec,
    OMIT,
    always,
    when,
)
from repro.co2p3s.metrics import CodeMetrics, measure_file, measure_paths, measure_source
from repro.co2p3s.options import OptionError, OptionSet, OptionSpec
from repro.co2p3s.template import (
    PatternTemplate,
    available_templates,
    get_template,
    load_generated_package,
    register_template,
)

__all__ = [
    "ClassSpec",
    "CodeGenerator",
    "CodeMetrics",
    "Fragment",
    "GeneratedClass",
    "GenerationReport",
    "ModuleSpec",
    "OMIT",
    "OptionError",
    "OptionSet",
    "OptionSpec",
    "PatternTemplate",
    "always",
    "available_templates",
    "get_template",
    "load_generated_package",
    "measure_file",
    "measure_paths",
    "measure_source",
    "register_template",
    "when",
]
