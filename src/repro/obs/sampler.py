"""Periodic gauge sampling.

Counters and histograms are pushed from the hot path; *state* metrics —
processor queue depth, pool size, open connections, overload trip state,
cache hit rate — have to be pulled.  :class:`PeriodicSampler` holds
(gauge, probe) pairs and copies probe values into gauges on every
:meth:`sample` tick.

Two drive modes, matching the two server assemblies:

* the generated frameworks re-arm a ``obs-sample`` timer through their
  Timer Event Source and call :meth:`sample` from the generated
  ServerEventHandler (so sampling flows through the same event machinery
  as everything else);
* the hand-wired :class:`~repro.runtime.server.ReactorServer` runs
  :meth:`start`'s helper thread.

Probe exceptions are swallowed (a dying probe must not take the server
down) and ``None`` returns skip the tick, so probes may be attached
before their subsystem is live.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, List, Optional, Tuple

__all__ = ["PeriodicSampler"]


class PeriodicSampler:
    """Copies probe callables into registry gauges on a timer tick."""

    def __init__(self, registry, interval: float = 1.0,
                 clock=time.monotonic):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.registry = registry
        self.interval = interval
        self.clock = clock
        self._probes: List[Tuple[object, Callable[[], Optional[float]]]] = []
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.ticks = registry.counter(
            "server_sampler_ticks_total", "Sampler ticks executed")

    def add_probe(self, name: str, probe: Callable[[], Optional[float]],
                  help: str = ""):
        """Register ``probe`` to feed the gauge ``name``; returns the gauge."""
        gauge = self.registry.gauge(name, help)
        with self._lock:
            self._probes.append((gauge, probe))
        return gauge

    def sample(self) -> None:
        """One sampling pass over every probe."""
        with self._lock:
            probes = list(self._probes)
        for gauge, probe in probes:
            try:
                value = probe()
            except Exception:  # noqa: BLE001 - a probe must not kill the server
                continue
            if value is None:
                continue
            gauge.set(float(value))
        self.ticks.inc()

    # -- thread mode (hand-wired ReactorServer) --------------------------
    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="obs-sampler")
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.sample()
