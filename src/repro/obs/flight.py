"""Always-on flight recorder: a bounded ring of binary-packed
lifecycle events, dumped to disk when something goes wrong.

Metrics (:mod:`repro.obs.registry`) aggregate and request spans
(:mod:`repro.obs.spans`) only exist when option O11 selected them; the
flight recorder is the third leg — *always on*, cheap enough that no
option guards it, and holding exactly the evidence a post-mortem needs:
the last few thousand lifecycle events (accept, dispatch, stage
enter/exit, fault injection, overload shed, drain) with their trace
ids.

Cost model: one :func:`time.monotonic`, one :func:`struct.Struct.pack`
and one ``deque.append`` per event.  The ring is a ``deque(maxlen=N)``
of ``bytes`` records — the append is atomic under the GIL, so the hot
path takes **no lock** ("lock-free-ish"); only the category-interning
table, touched once per *new* category name, synchronises through
:func:`repro.lint.locks.make_lock` so the race-detector plane covers
it.

Record layout (little-endian, 20-byte header + capped detail bytes)::

    <dQHH  =  timestamp float64 | trace_id uint64 | category uint16
              | detail-length uint16

Dumps are written as text, one event per line::

    <timestamp.6f> <trace_id:016x> [<category>] <detail>

so a human can read them raw and :func:`parse_dump` can reconstruct
the event stream for tooling (see the fault-storm reconstruction test).
Dumps happen on worker death, event quarantine (both via
:mod:`repro.runtime.resilience`) and ``SIGUSR2``
(:func:`install_signal_dump`); the target directory is the recorder's
``dump_dir``, else ``$REPRO_FLIGHT_DIR``, else the system temp dir.
"""

from __future__ import annotations

import itertools
import os
import signal
import struct
import tempfile
import time
import weakref
from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence

from repro.lint.locks import access, make_lock

__all__ = [
    "DETAIL_LIMIT",
    "FlightEvent",
    "FlightRecorder",
    "GLOBAL",
    "dump_all",
    "install_signal_dump",
    "parse_dump",
    "reconstruct_path",
]

#: per-event detail payload cap — keeps a 4096-event ring under ~2 MiB
#: worst case and forces callers to record facts, not documents
DETAIL_LIMIT = 512

#: binary record header: timestamp, trace id, category code, detail length
_HEADER = struct.Struct("<dQHH")

#: environment variable overriding where snapshots land
_DUMP_DIR_ENV = "REPRO_FLIGHT_DIR"

#: process-wide snapshot sequence number (filename uniqueness)
_snapshot_seq = itertools.count(1)

#: every live recorder, so SIGUSR2 can dump all of them
_recorders: "weakref.WeakSet[FlightRecorder]" = weakref.WeakSet()


@dataclass(frozen=True)
class FlightEvent:
    """One decoded flight-recorder event."""

    timestamp: float
    trace_id: int
    category: str
    detail: str

    def format(self) -> str:
        """The dump-file line for this event (inverse of
        :func:`parse_dump`)."""
        return (f"{self.timestamp:.6f} {self.trace_id:016x} "
                f"[{self.category}] {self.detail}").rstrip()


class FlightRecorder:
    """A bounded, always-on ring of binary-packed lifecycle events.

    ``capacity`` bounds the ring (oldest events fall off); ``name``
    labels dump files (``reactor``, ``shard-2``, ``accept-plane``);
    ``dump_dir`` pins snapshots to a directory (default: the
    ``$REPRO_FLIGHT_DIR``/tempdir resolution described in the module
    docstring).
    """

    def __init__(self, capacity: int = 4096, name: str = "flight",
                 clock: Callable[[], float] = time.monotonic,
                 dump_dir: Optional[str] = None):
        if capacity < 1:
            raise ValueError("flight recorder capacity must be >= 1")
        self.capacity = capacity
        self.name = name
        self.clock = clock
        self.dump_dir = dump_dir
        self.enabled = True
        self._ring: "deque[bytes]" = deque(maxlen=capacity)
        self._codes: dict = {}
        self._categories: List[str] = []
        self._intern_lock = make_lock("flight-intern")
        _recorders.add(self)

    # -- recording (the hot path) -----------------------------------------
    def record(self, category: str, detail: str = "",
               trace_id: int = 0) -> float:
        """Append one event; returns its timestamp.

        No lock: the packed record is built locally and the deque
        append is atomic under the GIL.  Oversize details are truncated
        at :data:`DETAIL_LIMIT` bytes.
        """
        timestamp = self.clock()
        payload = detail.encode("utf-8", "replace")[:DETAIL_LIMIT]
        self._ring.append(_HEADER.pack(
            timestamp, trace_id & 0xFFFFFFFFFFFFFFFF,
            self._code_for(category), len(payload)) + payload)
        return timestamp

    def _code_for(self, category: str) -> int:
        """Intern a category name to its uint16 code.

        Double-checked: the unlocked dict probe serves the steady
        state; a miss takes the intern lock, re-probes, and appends.
        Categories past the uint16 range collapse into ``overflow``
        (a diagnostic ring does not need 65k distinct event kinds).
        """
        code = self._codes.get(category)
        if code is not None:
            return code
        with self._intern_lock:
            access(self, "_codes")
            code = self._codes.get(category)
            if code is None:
                if len(self._categories) >= 0xFFFF:
                    return self._code_for("overflow")
                code = len(self._categories)
                self._categories.append(category)
                self._codes[category] = code
            return code

    # -- reading ----------------------------------------------------------
    def events(self, category: Optional[str] = None,
               trace_id: Optional[int] = None) -> List[FlightEvent]:
        """Decode the ring (oldest first), optionally filtered."""
        out: List[FlightEvent] = []
        categories = self._categories
        for raw in self._freeze():
            ts, tid, code, length = _HEADER.unpack_from(raw)
            name = (categories[code] if code < len(categories)
                    else f"category-{code}")
            if category is not None and name != category:
                continue
            if trace_id is not None and tid != trace_id:
                continue
            out.append(FlightEvent(
                timestamp=ts, trace_id=tid, category=name,
                detail=raw[_HEADER.size:_HEADER.size + length].decode(
                    "utf-8", "replace")))
        return out

    def _freeze(self) -> List[bytes]:
        """A stable copy of the ring.

        ``list(deque)`` can raise if a recording thread appends
        mid-copy; retry a few times, then fall back to a best-effort
        element-at-a-time copy.
        """
        for _ in range(4):
            try:
                return list(self._ring)
            except RuntimeError:
                continue
        return [self._ring[i] for i in range(len(self._ring))]

    def __len__(self) -> int:
        """Events currently held in the ring."""
        return len(self._ring)

    def clear(self) -> None:
        """Drop every buffered event (tests; category table persists)."""
        self._ring.clear()

    # -- dumping ----------------------------------------------------------
    def dump(self, sink) -> int:
        """Write the ring as text lines to ``sink``; returns the count."""
        events = self.events()
        for event in events:
            sink.write(event.format() + "\n")
        flush = getattr(sink, "flush", None)
        if flush is not None:
            flush()
        return len(events)

    def snapshot(self, reason: str, directory: Optional[str] = None) -> str:
        """Dump the ring to a file and return its path.

        The file carries a comment header naming the recorder and the
        trigger, so a directory of dumps from one incident stays
        navigable.  Never raises on I/O problems the caller cannot fix
        mid-crash — a failed dump returns the path it attempted.
        """
        target_dir = (directory or self.dump_dir
                      or os.environ.get(_DUMP_DIR_ENV)
                      or tempfile.gettempdir())
        filename = (f"flight-{self.name}-{reason}-"
                    f"{os.getpid()}-{next(_snapshot_seq):04d}.log")
        path = os.path.join(target_dir, filename)
        try:
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(f"# flight recorder={self.name} reason={reason} "
                         f"events={len(self)}\n")
                self.dump(fh)
        except OSError:
            pass
        return path

    def __repr__(self) -> str:
        """Debugging representation: name plus fill level."""
        return (f"<FlightRecorder {self.name} "
                f"{len(self)}/{self.capacity} events>")


#: the default recorder — always on, shared by everything that was not
#: handed a more specific one (generated frameworks, bare components)
GLOBAL = FlightRecorder(name="global")


def parse_dump(lines: Iterable[str]) -> List[FlightEvent]:
    """Reconstruct events from dump text (string or line iterable).

    The exact inverse of :meth:`FlightEvent.format`; ``#`` comment
    lines and blanks are skipped, so a snapshot file round-trips.
    """
    if isinstance(lines, str):
        lines = lines.splitlines()
    events: List[FlightEvent] = []
    for line in lines:
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        ts_text, tid_text, rest = line.split(" ", 2)
        if not rest.startswith("["):
            raise ValueError(f"malformed flight dump line: {line!r}")
        category, _, detail = rest[1:].partition("]")
        events.append(FlightEvent(
            timestamp=float(ts_text), trace_id=int(tid_text, 16),
            category=category, detail=detail.lstrip()))
    return events


def reconstruct_path(trace_id: int,
                     events: Sequence[FlightEvent]) -> List[FlightEvent]:
    """One request's lifecycle, chronologically, from merged dumps.

    Feed it the concatenated events of every recorder that saw the
    request (accept plane, shard, global) and it returns that trace's
    ordered path — the accept→shard→worker→write story the fault-storm
    test asserts on.
    """
    path = [event for event in events if event.trace_id == trace_id]
    path.sort(key=lambda event: event.timestamp)
    return path


def dump_all(reason: str, directory: Optional[str] = None) -> List[str]:
    """Snapshot every live recorder; returns the written paths."""
    return [recorder.snapshot(reason, directory)
            for recorder in sorted(_recorders, key=lambda r: r.name)]


_signal_installed = False


def install_signal_dump(directory: Optional[str] = None) -> bool:
    """Install the ``SIGUSR2`` → :func:`dump_all` handler, once.

    Returns True when the handler is (already) installed; False on
    platforms without ``SIGUSR2`` or off the main thread, where Python
    refuses signal registration — both are quietly tolerable because
    the explicit dump triggers still work.
    """
    global _signal_installed
    if _signal_installed:
        return True
    if not hasattr(signal, "SIGUSR2"):
        return False

    def _handler(signum, frame):
        dump_all("sigusr2", directory)

    try:
        signal.signal(signal.SIGUSR2, _handler)
    except ValueError:
        return False
    _signal_installed = True
    return True
