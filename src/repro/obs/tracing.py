"""End-to-end request tracing: trace ids, span exporters, reports.

A trace id is allocated when a connection's :class:`SocketHandle` is
created (the accept boundary) and rides the handle through the
Communicator, shard placement, the Event Processor worker and the
write path.  Two consumers see it:

* the **flight recorder** (:mod:`repro.obs.flight`) stamps it on every
  lifecycle event, always;
* the **span layer** (:mod:`repro.obs.spans`) carries it on each
  request span and hands finished spans to an *exporter* — but only in
  O11=Yes builds, where the generator wires an exporter in.

Exporters are deliberately tiny: :class:`RingExporter` keeps the last
N span records in memory (tests, the ``/server-status?trace`` page);
:class:`JsonlExporter` appends one JSON object per line to a file
(experiments, offline analysis).  A span record is a plain dict::

    {"trace_id": int, "parent_id": int, "name": str, "detail": str,
     "start": float, "end": float, "total": float,
     "stages": [{"stage": str, "seconds": float}, ...]}

:func:`render_trace_report` turns a batch of records into the text the
status page serves.
"""

from __future__ import annotations

import itertools
import json
import os
from collections import deque
from typing import Iterable, List, Optional

from repro.lint.locks import make_lock

__all__ = [
    "JsonlExporter",
    "NULL_EXPORTER",
    "NullExporter",
    "RingExporter",
    "format_trace_id",
    "next_trace_id",
    "read_jsonl",
    "render_trace_report",
]

#: process-wide trace-id allocator; ``next()`` on a count is atomic
#: under the GIL, so the accept path takes no lock
_trace_ids = itertools.count(1)

#: low 48 bits carry the per-process sequence; the top 16 carry the
#: PID, so ids from different worker processes of one O16 deployment
#: never collide even though every worker counts from 1
_SEQUENCE_MASK = (1 << 48) - 1


def next_trace_id() -> int:
    """Allocate the next trace id (monotonic within a process, never
    0 — 0 is the "no trace" sentinel in flight events and spans).

    The top 16 bits carry ``os.getpid() & 0xFFFF`` so that ids are
    globally unique across the worker processes of a multi-process
    (O16>1) deployment: each worker is a fresh interpreter whose
    sequence restarts at 1, and the PID component disambiguates them
    in aggregated traces and flight dumps.  The sequence occupies the
    low 48 bits, so the composed id still fits the flight recorder's
    uint64 slot and :func:`format_trace_id`'s 16 hex digits.
    """
    return ((os.getpid() & 0xFFFF) << 48) | (next(_trace_ids)
                                             & _SEQUENCE_MASK)


def format_trace_id(trace_id: int) -> str:
    """The canonical textual form: 16 hex digits, as in flight dumps."""
    return f"{trace_id:016x}"


class RingExporter:
    """Span exporter keeping the most recent ``capacity`` records.

    The in-memory backend: tests read :meth:`records` directly and the
    generated ``trace_report()`` renders them for
    ``/server-status?trace``.
    """

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError("exporter capacity must be >= 1")
        self.capacity = capacity
        self.enabled = True
        self._ring: "deque[dict]" = deque(maxlen=capacity)

    def export(self, record: dict) -> None:
        """Keep one finished-span record (deque append: GIL-atomic)."""
        self._ring.append(dict(record))

    def records(self) -> List[dict]:
        """The buffered records, oldest first (copies)."""
        return [dict(record) for record in list(self._ring)]

    def clear(self) -> None:
        """Drop the buffer (tests)."""
        self._ring.clear()

    def flush(self) -> None:
        """Nothing buffered outside the ring: no-op."""

    def close(self) -> None:
        """The ring stays readable after close: no-op."""


class JsonlExporter:
    """Span exporter appending one JSON object per line to a file.

    The durable backend for experiments: post-process with any
    line-oriented tooling, or :func:`read_jsonl`.  The writer takes a
    lock per export — this exporter is for offline analysis, not the
    hot path's always-on story (that is the flight recorder's job).
    """

    def __init__(self, path: str, append: bool = False):
        self.path = path
        self._fh = open(path, "a" if append else "w", encoding="utf-8")
        self._lock = make_lock("jsonl-exporter")

    def export(self, record: dict) -> None:
        """Serialise and append one record (no-op after close)."""
        line = json.dumps(record, sort_keys=True)
        with self._lock:
            if self._fh is not None:
                self._fh.write(line + "\n")

    def flush(self) -> None:
        """Push buffered lines to the OS."""
        with self._lock:
            if self._fh is not None:
                self._fh.flush()

    def close(self) -> None:
        """Flush and close the file (idempotent)."""
        with self._lock:
            if self._fh is not None:
                self._fh.flush()
                self._fh.close()
                self._fh = None


class NullExporter:
    """The null object: every operation is a no-op."""

    enabled = False

    def export(self, record: dict) -> None:
        """Discard the record."""

    def records(self) -> List[dict]:
        """Always empty."""
        return []

    def clear(self) -> None:
        """Nothing to drop."""

    def flush(self) -> None:
        """Nothing to flush."""

    def close(self) -> None:
        """Nothing to close."""


#: shared inert exporter (the O11=No span layer never exports anyway)
NULL_EXPORTER = NullExporter()


def read_jsonl(path: str) -> List[dict]:
    """Load every record a :class:`JsonlExporter` wrote to ``path``."""
    records: List[dict] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def render_trace_report(records: Iterable[dict],
                        sharded: bool = False) -> str:
    """The ``/server-status?trace`` text: one line per span record.

    Records are merged chronologically (by span start), so a sharded
    server's report interleaves all shards into one timeline::

        Traces: 2
        trace=0000000000000003 request 127.0.0.1:4242 total=0.000210 \
decode=0.000020 handle=0.000150 encode=0.000040
    """
    batch = sorted(records, key=lambda record: record.get("start", 0.0))
    lines = [f"Traces: {len(batch)}"]
    if sharded:
        lines[0] += " (all shards)"
    for record in batch:
        stages = " ".join(
            f"{stage['stage']}={stage['seconds']:.6f}"
            for stage in record.get("stages", ()))
        line = (f"trace={format_trace_id(record.get('trace_id', 0))} "
                f"{record.get('name', '?')} {record.get('detail', '')} "
                f"total={record.get('total', 0.0):.6f} {stages}")
        lines.append(" ".join(line.split()))
    return "\n".join(lines) + "\n"
