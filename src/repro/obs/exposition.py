"""Exposition surfaces: Prometheus text format and a mod_status page.

Two renderers over a :class:`~repro.obs.registry.MetricsRegistry`:

* :func:`render_prometheus` — the Prometheus text exposition format
  (``# HELP`` / ``# TYPE`` / sample lines, histograms as cumulative
  ``_bucket{le=...}`` series).
* :func:`status_fields` + :func:`render_status_auto` /
  :func:`render_status_html` — an Apache ``mod_status``-style report.
  The paper benchmarks COPS-HTTP against Apache 1.3, so the fitting
  inspection surface is Apache's: ``GET /server-status`` renders HTML
  for humans and ``GET /server-status?auto`` the ``Key: value`` lines
  machines scrape.  Well-known server metrics map onto Apache's field
  names (``Total Accesses``, ``Total kBytes``, ``ReqPerSec``, ...);
  everything else is emitted under its registry name, histograms as
  p50/p90/p99 estimates.
"""

from __future__ import annotations

import math
from html import escape
from typing import List, Optional, Tuple

__all__ = [
    "render_prometheus",
    "status_fields",
    "sharded_status_fields",
    "clustered_status_fields",
    "render_status_auto",
    "render_status_html",
]


def _fmt(value: float) -> str:
    """Prometheus-style number formatting."""
    if value is None:
        return "NaN"
    if isinstance(value, float):
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return repr(value)
    return str(value)


def _labels_text(labels: dict, extra: Optional[Tuple[str, str]] = None) -> str:
    items = list(labels.items())
    if extra is not None:
        items.append(extra)
    if not items:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in items)
    return "{" + inner + "}"


def render_prometheus(registry, exemplars=None) -> str:
    """The registry in Prometheus text exposition format.

    ``exemplars`` (optional) maps ``(family_name, sorted label items)``
    to ``(value, trace_id)`` — the shape
    :meth:`repro.obs.spans.SpanRecorder.exemplars` returns.  Each
    exemplar is attached OpenMetrics-style to the first histogram
    bucket that contains its value::

        server_request_seconds_bucket{le="0.01"} 4 # {trace_id="00..2a"} 0.0031

    so a scrape links latency buckets back to concrete traced requests.
    """
    lines: List[str] = []
    for family in registry.collect():
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for labels, metric in family.children():
            if family.kind == "histogram":
                exemplar = None
                if exemplars:
                    exemplar = exemplars.get(
                        (family.name, tuple(sorted(labels.items()))))
                snap = metric.snapshot()
                for bound, cumulative in snap["buckets"]:
                    line = (f"{family.name}_bucket"
                            f"{_labels_text(labels, ('le', _fmt(bound)))}"
                            f" {cumulative}")
                    if exemplar is not None:
                        value, trace_id = exemplar
                        if value is not None and value <= bound:
                            line += (f' # {{trace_id="{trace_id:016x}"}}'
                                     f" {_fmt(value)}")
                            exemplar = None
                    lines.append(line)
                lines.append(
                    f"{family.name}_sum{_labels_text(labels)} "
                    f"{_fmt(snap['sum'])}")
                lines.append(
                    f"{family.name}_count{_labels_text(labels)} "
                    f"{snap['count']}")
            else:
                lines.append(
                    f"{family.name}{_labels_text(labels)} "
                    f"{_fmt(metric.value)}")
    return "\n".join(lines) + "\n"


#: registry name -> Apache mod_status field name
_APACHE_FIELDS = (
    ("server_requests_total", "Total Accesses"),
    ("server_connections_accepted_total", "Total Connections"),
    ("server_open_connections", "BusyWorkers"),
    ("server_cache_hit_rate", "CacheHitRate"),
)


def status_fields(registry, uptime: Optional[float] = None
                  ) -> List[Tuple[str, str]]:
    """Ordered ``(key, value)`` pairs for the status page.

    Apache-compatible derived fields first (so existing mod_status
    scrapers find what they expect), then every scalar metric by
    registry name, then histogram quantiles as ``name{labels}-pNN``.
    """
    scalars: List[Tuple[str, object]] = []
    histograms: List[Tuple[str, dict]] = []
    by_name = {}
    for family in registry.collect():
        for labels, metric in family.children():
            key = family.name + _labels_text(labels)
            if family.kind == "histogram":
                histograms.append((key, metric.snapshot()))
            else:
                scalars.append((key, metric.value))
                if not labels:
                    by_name[family.name] = metric.value

    fields: List[Tuple[str, str]] = []
    if uptime is not None:
        fields.append(("Uptime", f"{uptime:.3f}"))
    for name, apache_key in _APACHE_FIELDS:
        if name in by_name:
            fields.append((apache_key, _fmt(by_name[name])))
    bytes_sent = by_name.get("server_bytes_sent_total")
    if bytes_sent is not None:
        fields.append(("Total kBytes", _fmt(bytes_sent // 1024)))
    requests = by_name.get("server_requests_total")
    if requests is not None and uptime:
        fields.append(("ReqPerSec", f"{requests / uptime:.3f}"))
        if bytes_sent is not None:
            fields.append(("BytesPerSec", f"{bytes_sent / uptime:.1f}"))

    for key, value in scalars:
        fields.append((key, _fmt(value)))
    for key, snap in histograms:
        fields.append((f"{key}-count", str(snap["count"])))
        for q_label in ("p50", "p90", "p99"):
            estimate = snap[q_label]
            shown = f"{estimate:.6f}" if estimate is not None else "NaN"
            fields.append((f"{key}-{q_label}", shown))
    return fields


#: derived field names that only make sense at the aggregate level
_DERIVED_KEYS = frozenset(
    {apache for _, apache in _APACHE_FIELDS}
    | {"Uptime", "Total kBytes", "ReqPerSec", "BytesPerSec"})


def _shard_key(key: str, index: int) -> str:
    """Weave a ``shard="i"`` label into a status-field key."""
    extra = f'shard="{index}"'
    if "{" in key:
        close = key.index("}")
        return key[:close] + "," + extra + key[close:]
    for suffix in ("-count", "-p50", "-p90", "-p99"):
        if key.endswith(suffix):
            return key[:-len(suffix)] + "{" + extra + "}" + suffix
    return key + "{" + extra + "}"


def sharded_status_fields(registries, uptime: Optional[float] = None
                          ) -> List[Tuple[str, str]]:
    """One status report over N per-shard registries.

    The aggregate section first — scalars summed across shards (rates
    averaged), with the Apache-derived fields computed over the sums —
    then a ``Shards`` count, then every shard's own scalar and
    histogram fields re-labelled with ``shard="i"`` so a scraper can
    see the per-shard queue depths and connection gauges behind the
    totals.
    """
    sums: dict = {}
    counts: dict = {}
    order: List[Tuple[str, str, bool]] = []
    for registry in registries:
        for family in registry.collect():
            for labels, metric in family.children():
                if family.kind == "histogram":
                    continue
                key = family.name + _labels_text(labels)
                if key not in sums:
                    sums[key] = 0.0
                    counts[key] = 0
                    order.append((key, family.name, bool(labels)))
                sums[key] += metric.value
                counts[key] += 1

    def aggregate(key: str, name: str) -> float:
        # hit *rates* do not add up across shards; everything else does
        if "rate" in name:
            return sums[key] / max(counts[key], 1)
        return sums[key]

    by_name = {name: aggregate(key, name)
               for key, name, labeled in order if not labeled}

    fields: List[Tuple[str, str]] = []
    if uptime is not None:
        fields.append(("Uptime", f"{uptime:.3f}"))
    for name, apache_key in _APACHE_FIELDS:
        if name in by_name:
            fields.append((apache_key, _fmt(by_name[name])))
    bytes_sent = by_name.get("server_bytes_sent_total")
    if bytes_sent is not None:
        fields.append(("Total kBytes", _fmt(int(bytes_sent) // 1024)))
    requests = by_name.get("server_requests_total")
    if requests is not None and uptime:
        fields.append(("ReqPerSec", f"{requests / uptime:.3f}"))
        if bytes_sent is not None:
            fields.append(("BytesPerSec", f"{bytes_sent / uptime:.1f}"))
    for key, name, _labeled in order:
        fields.append((key, _fmt(aggregate(key, name))))

    fields.append(("Shards", str(len(registries))))
    for index, registry in enumerate(registries):
        for key, value in status_fields(registry):
            if key in _DERIVED_KEYS:
                continue
            fields.append((_shard_key(key, index), value))
    return fields


def _worker_key(key: str, label: object) -> str:
    """Weave a ``worker="pid"`` label into a status-field key.

    Composes with shard labels: a key that already carries
    ``{shard="i"}`` gains the worker label inside the same brace pair.
    """
    extra = f'worker="{label}"'
    if "{" in key:
        close = key.index("}")
        return key[:close] + "," + extra + key[close:]
    for suffix in ("-count", "-p50", "-p90", "-p99"):
        if key.endswith(suffix):
            return key[:-len(suffix)] + "{" + extra + "}" + suffix
    return key + "{" + extra + "}"


def _parse_field(value: str) -> Optional[float]:
    try:
        number = float(value)
    except (TypeError, ValueError):
        return None
    return number if math.isfinite(number) else None


def clustered_status_fields(sections, uptime: Optional[float] = None
                            ) -> List[Tuple[str, str]]:
    """One status report over N per-worker status-field lists.

    The multi-process (O16>1) sibling of :func:`sharded_status_fields`.
    Workers live in other processes, so the inputs are not registries
    but the ``(key, value)`` field lists each worker already rendered —
    the shape that travels over the supervisor's stats channel as JSON.
    ``sections`` is a sequence of ``(label, fields)`` pairs where
    ``label`` is the worker's identity (its PID) and ``fields`` the
    worker's own :func:`status_fields` output.

    Layout mirrors the sharded report: the aggregate section first —
    scalars summed across workers (rates averaged), Apache-derived
    fields recomputed over the sums — then a ``Workers`` count, then
    every worker's own fields re-labelled with ``worker="pid"``.  Each
    worker's fields appear exactly once; quantile estimates are not
    summable so they appear only in the per-worker sections.
    """
    sums: dict = {}
    counts: dict = {}
    order: List[str] = []
    for _label, fields in sections:
        for key, value in fields:
            if key in _DERIVED_KEYS or key[-4:] in ("-p50", "-p90", "-p99"):
                continue
            number = _parse_field(value)
            if number is None:
                continue
            if key not in sums:
                sums[key] = 0.0
                counts[key] = 0
                order.append(key)
            sums[key] += number
            counts[key] += 1

    def aggregate(key: str) -> float:
        # hit *rates* do not add up across workers; everything else does
        if "rate" in key:
            return sums[key] / max(counts[key], 1)
        return sums[key]

    by_name = {key: aggregate(key) for key in order
               if "{" not in key and not key.endswith("-count")}

    fields_out: List[Tuple[str, str]] = []
    if uptime is not None:
        fields_out.append(("Uptime", f"{uptime:.3f}"))
    for name, apache_key in _APACHE_FIELDS:
        if name in by_name:
            fields_out.append((apache_key, _fmt(by_name[name])))
    bytes_sent = by_name.get("server_bytes_sent_total")
    if bytes_sent is not None:
        fields_out.append(("Total kBytes", _fmt(int(bytes_sent) // 1024)))
    requests = by_name.get("server_requests_total")
    if requests is not None and uptime:
        fields_out.append(("ReqPerSec", f"{requests / uptime:.3f}"))
        if bytes_sent is not None:
            fields_out.append(("BytesPerSec", f"{bytes_sent / uptime:.1f}"))
    for key in order:
        fields_out.append((key, _fmt(aggregate(key))))

    fields_out.append(("Workers", str(len(sections))))
    for label, fields in sections:
        for key, value in fields:
            if key in _DERIVED_KEYS:
                continue
            fields_out.append((_worker_key(key, label), value))
    return fields_out


def render_status_auto(fields: List[Tuple[str, str]]) -> str:
    """The ``?auto`` machine-readable mode: one ``Key: value`` per line."""
    return "".join(f"{key}: {value}\n" for key, value in fields)


def render_status_html(fields: List[Tuple[str, str]],
                       title: str = "N-Server Status") -> str:
    """The human mode: a minimal HTML table, Apache-status flavoured."""
    rows = "\n".join(
        f"<tr><td>{escape(key)}</td><td>{escape(value)}</td></tr>"
        for key, value in fields)
    return (
        "<!DOCTYPE html>\n"
        f"<html><head><title>{escape(title)}</title></head>\n"
        f"<body><h1>{escape(title)}</h1>\n"
        "<table border=\"1\">\n"
        "<tr><th>Metric</th><th>Value</th></tr>\n"
        f"{rows}\n"
        "</table></body></html>\n")
