"""Request-lifecycle spans.

A :class:`Span` follows one request through the generated five-step
cycle (Fig 1): the Communicator opens a span when a complete request is
framed, brackets the decode / handle / encode steps as *stages*, and
finishes the span when the reply is queued.  Stage timings land in the
registry's ``server_request_stage_seconds{stage=...}`` histogram and the
end-to-end time in ``server_request_seconds`` — which is what makes the
differentiated-service (Fig 5) and overload (Fig 6) behaviour readable
as latency timeseries.  The read/send socket steps are not per-request
(a recv may carry several pipelined requests), so the Communicator
records them directly via :meth:`SpanRecorder.observe`.

Stages nest: beginning a stage while another is open records the inner
one under a dotted path (``handle.cache``).  Spans are *not* re-entrant
across threads — per-connection replies are FIFO, so a span is only ever
touched by one thread at a time (the pipeline thread, then possibly the
completion thread that delivers a PENDING result).

Every span carries the connection's ``trace_id`` (allocated at accept
by :func:`repro.obs.tracing.next_trace_id` and stamped on the socket
handle), correlating it with the flight-recorder events of the same
request across shards.  Finished spans are handed to the recorder's
*exporter* (:mod:`repro.obs.tracing`) when one is wired in, and the
most recent ``(value, trace_id)`` pair per histogram series is kept as
an *exemplar* for the Prometheus exposition.

When O11=No the call sites either aren't generated at all (generated
frameworks) or hit :data:`NULL_SPANS` / :data:`NULL_SPAN` — no-op
singletons, never an ``if enabled`` branch.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from repro.lint.locks import access, make_lock
from repro.obs.registry import DEFAULT_BUCKETS

__all__ = ["Span", "SpanRecorder", "NullSpan", "NullSpanRecorder",
           "NULL_SPAN", "NULL_SPANS"]


class Span:
    """One request's timing record; created by :class:`SpanRecorder`."""

    __slots__ = ("recorder", "name", "detail", "trace_id", "parent_id",
                 "start_time", "end_time", "stages", "_stack")

    def __init__(self, recorder: "SpanRecorder", name: str, detail: str = "",
                 trace_id: int = 0, parent_id: int = 0):
        self.recorder = recorder
        self.name = name
        self.detail = detail
        #: the connection's trace id (0 = untraced) and, for sub-spans,
        #: the id of the span this one hangs under
        self.trace_id = trace_id
        self.parent_id = parent_id
        self.start_time = recorder.clock()
        self.end_time: Optional[float] = None
        #: completed stages as (dotted_path, start, end)
        self.stages: List[Tuple[str, float, float]] = []
        self._stack: List[Tuple[str, float]] = []

    # -- stage bracketing -----------------------------------------------
    def stage(self, name: str) -> "Span":
        """``with span.stage("decode"): ...`` — begins the stage now;
        the ``with`` exit ends it."""
        self.stage_begin(name)
        return self

    def stage_begin(self, name: str) -> None:
        self._stack.append((name, self.recorder.clock()))

    def stage_end(self) -> None:
        """End the innermost open stage (no-op when none is open)."""
        if not self._stack:
            return
        name, started = self._stack.pop()
        path = ".".join([n for n, _ in self._stack] + [name])
        self.stages.append((path, started, self.recorder.clock()))

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc_info) -> bool:
        self.stage_end()
        return False

    # -- completion -----------------------------------------------------
    @property
    def finished(self) -> bool:
        return self.end_time is not None

    @property
    def duration(self) -> Optional[float]:
        if self.end_time is None:
            return None
        return self.end_time - self.start_time

    def finish(self) -> None:
        """Close any open stages, stamp the end time, and record the
        span into the recorder's histograms (idempotent)."""
        if self.end_time is not None:
            return
        while self._stack:
            self.stage_end()
        self.end_time = self.recorder.clock()
        self.recorder._record(self)


class SpanRecorder:
    """Factory for request spans; owns the latency histograms."""

    enabled = True

    def __init__(self, registry, tracer=None, clock=time.monotonic,
                 buckets=DEFAULT_BUCKETS, exporter=None):
        self.registry = registry
        self.tracer = tracer
        self.clock = clock
        self.exporter = exporter
        self._total = registry.histogram(
            "server_request_seconds",
            "End-to-end request latency (framed request -> reply queued)",
            buckets=buckets)
        self._stages = registry.histogram(
            "server_request_stage_seconds",
            "Per-stage request latency (read/decode/handle/encode/send)",
            labels=("stage",), buckets=buckets)
        #: (metric name, label items) -> (value, trace_id): the most
        #: recent traced observation per histogram series
        self._exemplars: Dict[Tuple[str, Tuple[Tuple[str, str], ...]],
                              Tuple[float, int]] = {}
        self._exemplar_lock = make_lock("span-exemplars")

    def start(self, name: str = "request", detail: str = "",
              trace_id: int = 0, parent_id: int = 0) -> Span:
        return Span(self, name, detail, trace_id=trace_id,
                    parent_id=parent_id)

    def observe(self, stage: str, seconds: float) -> None:
        """Record a stage sample outside any span (read/send socket work,
        which is per-chunk rather than per-request)."""
        self._stages.labels(stage=stage).observe(seconds)

    def stage_quantiles(self, quantiles=(0.50, 0.90, 0.99)) -> dict:
        """{stage: {q: estimate}} for every stage seen so far."""
        family = self.registry.get("server_request_stage_seconds")
        out = {}
        if family is None:
            return out
        for labels, hist in family.children():
            out[labels["stage"]] = {q: hist.quantile(q) for q in quantiles}
        return out

    def exemplars(self) -> Dict[Tuple[str, Tuple[Tuple[str, str], ...]],
                                Tuple[float, int]]:
        """A copy of the exemplar table, for the Prometheus renderer."""
        with self._exemplar_lock:
            access(self, "_exemplars", write=False)
            return dict(self._exemplars)

    def _record(self, span: Span) -> None:
        self._total.observe(span.duration)
        for path, started, ended in span.stages:
            self._stages.labels(stage=path).observe(ended - started)
        if span.trace_id:
            with self._exemplar_lock:
                access(self, "_exemplars")
                self._exemplars["server_request_seconds", ()] = (
                    span.duration, span.trace_id)
                for path, started, ended in span.stages:
                    self._exemplars[
                        "server_request_stage_seconds",
                        (("stage", path),)] = (ended - started, span.trace_id)
        if self.exporter is not None:
            self.exporter.export({
                "trace_id": span.trace_id,
                "parent_id": span.parent_id,
                "name": span.name,
                "detail": span.detail,
                "start": span.start_time,
                "end": span.end_time,
                "total": span.duration,
                "stages": [{"stage": path, "seconds": ended - started}
                           for path, started, ended in span.stages],
            })
        if self.tracer is not None:
            parts = " ".join(f"{path}={ended - started:.6f}"
                             for path, started, ended in span.stages)
            self.tracer.trace(
                "span", f"{span.name} {span.detail} "
                        f"total={span.duration:.6f} {parts}".rstrip())


class NullSpan:
    """The O11=No span: every method is a pass, every context manager a
    no-op.  A singleton — allocation-free on the disabled path."""

    __slots__ = ()
    finished = True
    duration = None
    trace_id = 0
    parent_id = 0
    stages: List[Tuple[str, float, float]] = []

    def stage(self, name: str) -> "NullSpan":
        return self

    def stage_begin(self, name: str) -> None:
        pass

    def stage_end(self) -> None:
        pass

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def finish(self) -> None:
        pass


NULL_SPAN = NullSpan()


class NullSpanRecorder:
    """O11=No recorder: hands out the null span, absorbs observations."""

    enabled = False
    tracer = None
    exporter = None

    def start(self, name: str = "request", detail: str = "",
              trace_id: int = 0, parent_id: int = 0) -> NullSpan:
        return NULL_SPAN

    def observe(self, stage: str, seconds: float) -> None:
        pass

    def stage_quantiles(self, quantiles=(0.50, 0.90, 0.99)) -> dict:
        return {}

    def exemplars(self) -> dict:
        return {}


NULL_SPANS = NullSpanRecorder()
