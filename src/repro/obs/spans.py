"""Request-lifecycle spans.

A :class:`Span` follows one request through the generated five-step
cycle (Fig 1): the Communicator opens a span when a complete request is
framed, brackets the decode / handle / encode steps as *stages*, and
finishes the span when the reply is queued.  Stage timings land in the
registry's ``server_request_stage_seconds{stage=...}`` histogram and the
end-to-end time in ``server_request_seconds`` — which is what makes the
differentiated-service (Fig 5) and overload (Fig 6) behaviour readable
as latency timeseries.  The read/send socket steps are not per-request
(a recv may carry several pipelined requests), so the Communicator
records them directly via :meth:`SpanRecorder.observe`.

Stages nest: beginning a stage while another is open records the inner
one under a dotted path (``handle.cache``).  Spans are *not* re-entrant
across threads — per-connection replies are FIFO, so a span is only ever
touched by one thread at a time (the pipeline thread, then possibly the
completion thread that delivers a PENDING result).

When O11=No the call sites either aren't generated at all (generated
frameworks) or hit :data:`NULL_SPANS` / :data:`NULL_SPAN` — no-op
singletons, never an ``if enabled`` branch.
"""

from __future__ import annotations

import time
from typing import List, Optional, Tuple

from repro.obs.registry import DEFAULT_BUCKETS

__all__ = ["Span", "SpanRecorder", "NullSpan", "NullSpanRecorder",
           "NULL_SPAN", "NULL_SPANS"]


class Span:
    """One request's timing record; created by :class:`SpanRecorder`."""

    __slots__ = ("recorder", "name", "detail", "start_time", "end_time",
                 "stages", "_stack")

    def __init__(self, recorder: "SpanRecorder", name: str, detail: str = ""):
        self.recorder = recorder
        self.name = name
        self.detail = detail
        self.start_time = recorder.clock()
        self.end_time: Optional[float] = None
        #: completed stages as (dotted_path, start, end)
        self.stages: List[Tuple[str, float, float]] = []
        self._stack: List[Tuple[str, float]] = []

    # -- stage bracketing -----------------------------------------------
    def stage(self, name: str) -> "Span":
        """``with span.stage("decode"): ...`` — begins the stage now;
        the ``with`` exit ends it."""
        self.stage_begin(name)
        return self

    def stage_begin(self, name: str) -> None:
        self._stack.append((name, self.recorder.clock()))

    def stage_end(self) -> None:
        """End the innermost open stage (no-op when none is open)."""
        if not self._stack:
            return
        name, started = self._stack.pop()
        path = ".".join([n for n, _ in self._stack] + [name])
        self.stages.append((path, started, self.recorder.clock()))

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc_info) -> bool:
        self.stage_end()
        return False

    # -- completion -----------------------------------------------------
    @property
    def finished(self) -> bool:
        return self.end_time is not None

    @property
    def duration(self) -> Optional[float]:
        if self.end_time is None:
            return None
        return self.end_time - self.start_time

    def finish(self) -> None:
        """Close any open stages, stamp the end time, and record the
        span into the recorder's histograms (idempotent)."""
        if self.end_time is not None:
            return
        while self._stack:
            self.stage_end()
        self.end_time = self.recorder.clock()
        self.recorder._record(self)


class SpanRecorder:
    """Factory for request spans; owns the latency histograms."""

    enabled = True

    def __init__(self, registry, tracer=None, clock=time.monotonic,
                 buckets=DEFAULT_BUCKETS):
        self.registry = registry
        self.tracer = tracer
        self.clock = clock
        self._total = registry.histogram(
            "server_request_seconds",
            "End-to-end request latency (framed request -> reply queued)",
            buckets=buckets)
        self._stages = registry.histogram(
            "server_request_stage_seconds",
            "Per-stage request latency (read/decode/handle/encode/send)",
            labels=("stage",), buckets=buckets)

    def start(self, name: str = "request", detail: str = "") -> Span:
        return Span(self, name, detail)

    def observe(self, stage: str, seconds: float) -> None:
        """Record a stage sample outside any span (read/send socket work,
        which is per-chunk rather than per-request)."""
        self._stages.labels(stage=stage).observe(seconds)

    def stage_quantiles(self, quantiles=(0.50, 0.90, 0.99)) -> dict:
        """{stage: {q: estimate}} for every stage seen so far."""
        family = self.registry.get("server_request_stage_seconds")
        out = {}
        if family is None:
            return out
        for labels, hist in family.children():
            out[labels["stage"]] = {q: hist.quantile(q) for q in quantiles}
        return out

    def _record(self, span: Span) -> None:
        self._total.observe(span.duration)
        for path, started, ended in span.stages:
            self._stages.labels(stage=path).observe(ended - started)
        if self.tracer is not None:
            parts = " ".join(f"{path}={ended - started:.6f}"
                             for path, started, ended in span.stages)
            self.tracer.trace(
                "span", f"{span.name} {span.detail} "
                        f"total={span.duration:.6f} {parts}".rstrip())


class NullSpan:
    """The O11=No span: every method is a pass, every context manager a
    no-op.  A singleton — allocation-free on the disabled path."""

    __slots__ = ()
    finished = True
    duration = None
    stages: List[Tuple[str, float, float]] = []

    def stage(self, name: str) -> "NullSpan":
        return self

    def stage_begin(self, name: str) -> None:
        pass

    def stage_end(self) -> None:
        pass

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def finish(self) -> None:
        pass


NULL_SPAN = NullSpan()


class NullSpanRecorder:
    """O11=No recorder: hands out the null span, absorbs observations."""

    enabled = False
    tracer = None

    def start(self, name: str = "request", detail: str = "") -> NullSpan:
        return NULL_SPAN

    def observe(self, stage: str, seconds: float) -> None:
        pass

    def stage_quantiles(self, quantiles=(0.50, 0.90, 0.99)) -> dict:
        return {}


NULL_SPANS = NullSpanRecorder()
