"""Unified observability layer (option O11 and friends).

Four pieces, composable and individually testable:

* :mod:`repro.obs.registry` — thread-safe metrics registry (counters,
  gauges, bucketed histograms with p50/p90/p99 estimation, labeled
  families) with per-metric locking and null objects for the O11=No
  branch-free path;
* :mod:`repro.obs.spans` — request-lifecycle spans bracketing the
  decode/handle/encode steps of the five-step cycle (Fig 1), recorded
  into per-stage latency histograms and optionally mirrored into the
  debug :class:`~repro.runtime.tracing.EventTracer`;
* :mod:`repro.obs.sampler` — periodic gauge sampling of pull-style state
  (queue depth, pool size, open connections, overload trip state, cache
  hit rate);
* :mod:`repro.obs.exposition` — Prometheus text format (with trace
  exemplars) and the Apache ``mod_status``-style ``/server-status``
  report (HTML + ``?auto`` + ``?trace``);
* :mod:`repro.obs.tracing` — end-to-end trace ids allocated at accept,
  span exporters (in-memory ring, JSONL file) and the trace report;
* :mod:`repro.obs.flight` — the always-on flight recorder: a bounded
  ring of binary-packed lifecycle events, dumped on worker death,
  quarantine or ``SIGUSR2``.

This package deliberately does not import :mod:`repro.runtime` — the
runtime imports *it* (the Profiler is a façade over the registry), and
the generated frameworks' ``Observability`` component wires the rest.
"""

from repro.obs.exposition import (
    clustered_status_fields,
    render_prometheus,
    render_status_auto,
    render_status_html,
    sharded_status_fields,
    status_fields,
)
from repro.obs.flight import (
    FlightEvent,
    FlightRecorder,
    dump_all,
    install_signal_dump,
    parse_dump,
    reconstruct_path,
)
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    NULL_METRIC,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    NullMetric,
    NullRegistry,
)
from repro.obs.sampler import PeriodicSampler
from repro.obs.tracing import (
    NULL_EXPORTER,
    JsonlExporter,
    NullExporter,
    RingExporter,
    format_trace_id,
    next_trace_id,
    read_jsonl,
    render_trace_report,
)
from repro.obs.spans import (
    NULL_SPAN,
    NULL_SPANS,
    NullSpan,
    NullSpanRecorder,
    Span,
    SpanRecorder,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "FlightEvent",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "JsonlExporter",
    "MetricFamily",
    "MetricsRegistry",
    "NULL_EXPORTER",
    "NULL_METRIC",
    "NULL_REGISTRY",
    "NULL_SPAN",
    "NULL_SPANS",
    "NullExporter",
    "NullMetric",
    "NullRegistry",
    "NullSpan",
    "NullSpanRecorder",
    "PeriodicSampler",
    "RingExporter",
    "Span",
    "SpanRecorder",
    "clustered_status_fields",
    "dump_all",
    "format_trace_id",
    "install_signal_dump",
    "next_trace_id",
    "parse_dump",
    "read_jsonl",
    "reconstruct_path",
    "render_prometheus",
    "render_status_auto",
    "render_status_html",
    "render_trace_report",
    "sharded_status_fields",
    "status_fields",
]
