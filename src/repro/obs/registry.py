"""Thread-safe metrics registry: counters, gauges, bucketed histograms.

The unified observability layer behind the paper's option O11
("important statistical information of the server application can be
automatically gathered").  The :class:`~repro.runtime.profiling.Profiler`
is a thin façade over this registry, and the generated frameworks'
``Observability`` component builds directly on it.

Design points:

* **Per-metric locking.**  Every counter/gauge/histogram carries its own
  lock, so two threads updating *different* metrics never contend — the
  fix for the old single-``Profiler``-lock hot path (every byte-count
  update on the read/send path used to serialise on one lock).
* **Labeled families.**  ``registry.counter("x_total", labels=("kind",))``
  returns a family; ``family.labels(kind="read")`` returns (and caches)
  the child metric.  Unlabeled registrations return the metric directly.
* **Null objects.**  :data:`NULL_REGISTRY` / :data:`NULL_METRIC` keep the
  O11=No path branch-free: every recording call is a no-op method on a
  singleton, never an ``if enabled`` check.
* **Race-tracked.**  Metric locks come from
  :func:`repro.lint.locks.make_lock` and the shared fields carry
  :func:`~repro.lint.locks.access` annotations, so the tier-1 suite can
  run under the Eraser-style lockset detector
  (``REPRO_RACE_DETECTOR=1``) and prove the locking discipline holds.
"""

from __future__ import annotations

import bisect
import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.lint.locks import access, make_lock

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "NullMetric",
    "NullRegistry",
    "NULL_METRIC",
    "NULL_REGISTRY",
    "DEFAULT_BUCKETS",
]

#: default latency buckets (seconds): sub-millisecond to multi-second,
#: roughly logarithmic — the range a Python server's request stages span.
DEFAULT_BUCKETS = (0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
                   0.1, 0.25, 0.5, 1.0, 2.5, 5.0)


class Counter:
    """Monotonically increasing counter with its own lock."""

    kind = "counter"
    __slots__ = ("_lock", "_value")

    def __init__(self):
        self._lock = make_lock("Counter")
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            access(self, "_value")
            self._value += amount

    @property
    def value(self):
        with self._lock:
            access(self, "_value", write=False)
            return self._value


class Gauge:
    """Instantaneous value; set by samplers, inc/dec by accounting code."""

    kind = "gauge"
    __slots__ = ("_lock", "_value")

    def __init__(self):
        self._lock = make_lock("Gauge")
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            access(self, "_value")
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            access(self, "_value")
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            access(self, "_value")
            self._value -= amount

    @property
    def value(self):
        with self._lock:
            access(self, "_value", write=False)
            return self._value


class Histogram:
    """Fixed-bucket histogram with p50/p90/p99 quantile estimation.

    Buckets are cumulative-upper-bound style (Prometheus ``le``): an
    observation lands in the first bucket whose bound is >= the value,
    with a final implicit ``+Inf`` bucket.  Quantiles are estimated by
    linear interpolation inside the containing bucket, clamped to the
    observed min/max so estimates never leave the data range.
    """

    kind = "histogram"
    __slots__ = ("_lock", "bounds", "_counts", "_count", "_sum",
                 "_min", "_max")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS):
        bounds = [float(b) for b in buckets]
        if not bounds:
            raise ValueError("need at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("bucket bounds must be strictly increasing")
        if math.isinf(bounds[-1]):
            bounds.pop()
        self._lock = make_lock("Histogram")
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self._counts = [0] * (len(bounds) + 1)   # final slot = +Inf
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    def observe(self, value: float) -> None:
        idx = bisect.bisect_left(self.bounds, value)
        with self._lock:
            access(self, "_counts")
            self._counts[idx] += 1
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            access(self, "_counts", write=False)
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            access(self, "_counts", write=False)
            return self._sum

    def quantile(self, q: float) -> Optional[float]:
        """Estimated q-quantile (0 <= q <= 1); None while empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        with self._lock:
            access(self, "_counts", write=False)
            counts = list(self._counts)
            total = self._count
            lo_seen, hi_seen = self._min, self._max
        if total == 0:
            return None
        rank = q * total
        cumulative = 0
        for idx, bucket_count in enumerate(counts):
            if cumulative + bucket_count >= rank:
                lower = self.bounds[idx - 1] if idx > 0 else 0.0
                upper = (self.bounds[idx] if idx < len(self.bounds)
                         else hi_seen)
                if bucket_count == 0:
                    estimate = lower
                else:
                    frac = (rank - cumulative) / bucket_count
                    estimate = lower + frac * (upper - lower)
                return min(max(estimate, lo_seen), hi_seen)
            cumulative += bucket_count
        return hi_seen

    def snapshot(self) -> dict:
        with self._lock:
            access(self, "_counts", write=False)
            counts = list(self._counts)
            total, total_sum = self._count, self._sum
            lo, hi = self._min, self._max
        cumulative, buckets = 0, []
        for bound, n in zip(self.bounds + (math.inf,), counts):
            cumulative += n
            buckets.append((bound, cumulative))
        return {
            "count": total,
            "sum": total_sum,
            "min": lo,
            "max": hi,
            "buckets": buckets,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }


class MetricFamily:
    """A named set of children distinguished by label values."""

    def __init__(self, name: str, help: str, kind: str,
                 label_names: Tuple[str, ...], factory):
        self.name = name
        self.help = help
        self.kind = kind
        self.label_names = label_names
        self._factory = factory
        self._lock = make_lock("MetricFamily")
        self._children: Dict[Tuple[str, ...], object] = {}

    def labels(self, **labels):
        """The child metric for these label values (created on demand)."""
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.label_names}, "
                f"got {tuple(labels)}")
        key = tuple(str(labels[n]) for n in self.label_names)
        # Lock-free fast path: a dict probe is GIL-atomic and children
        # are never removed, so a stale miss only costs the slow path.
        # Intentional discipline violation — suppressed in the baseline.
        access(self, "_children", write=False)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                access(self, "_children")
                child = self._children.setdefault(key, self._factory())
        return child

    def children(self) -> List[Tuple[Dict[str, str], object]]:
        with self._lock:
            access(self, "_children", write=False)
            items = list(self._children.items())
        return [(dict(zip(self.label_names, key)), metric)
                for key, metric in sorted(items)]


class MetricsRegistry:
    """Registration-ordered collection of metric families."""

    enabled = True

    def __init__(self):
        self._lock = make_lock("MetricsRegistry")
        self._families: Dict[str, MetricFamily] = {}

    def _register(self, name: str, help: str, kind: str,
                  label_names: Tuple[str, ...], factory):
        with self._lock:
            access(self, "_families")
            family = self._families.get(name)
            if family is None:
                family = MetricFamily(name, help, kind, label_names, factory)
                self._families[name] = family
            elif family.kind != kind or family.label_names != label_names:
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind} "
                    f"with labels {family.label_names}")
        if not label_names:
            return family.labels()
        return family

    def counter(self, name: str, help: str = "",
                labels: Sequence[str] = ()):
        return self._register(name, help, "counter", tuple(labels), Counter)

    def gauge(self, name: str, help: str = "",
              labels: Sequence[str] = ()):
        return self._register(name, help, "gauge", tuple(labels), Gauge)

    def histogram(self, name: str, help: str = "",
                  labels: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS):
        return self._register(name, help, "histogram", tuple(labels),
                              lambda: Histogram(buckets))

    def collect(self) -> List[MetricFamily]:
        """Families in registration order (exposition walks this)."""
        with self._lock:
            access(self, "_families", write=False)
            return list(self._families.values())

    def get(self, name: str) -> Optional[MetricFamily]:
        with self._lock:
            access(self, "_families", write=False)
            return self._families.get(name)

    def value(self, name: str, **labels):
        """Convenience scalar lookup (tests, status pages); None if the
        metric or child does not exist."""
        family = self.get(name)
        if family is None:
            return None
        key = tuple(str(labels[n]) for n in family.label_names
                    if n in labels)
        if len(key) != len(family.label_names):
            return None
        with family._lock:
            access(family, "_children", write=False)
            child = family._children.get(key)
        if child is None:
            return None
        return child.value if hasattr(child, "value") else child


class NullMetric:
    """Absorbs every recording call; reads as empty/zero."""

    kind = "null"
    __slots__ = ()

    def inc(self, amount=1) -> None:
        pass

    def dec(self, amount=1) -> None:
        pass

    def set(self, value) -> None:
        pass

    def observe(self, value) -> None:
        pass

    def labels(self, **labels) -> "NullMetric":
        return self

    def quantile(self, q):
        return None

    def snapshot(self) -> dict:
        return {}

    @property
    def value(self):
        return 0

    @property
    def count(self):
        return 0

    @property
    def sum(self):
        return 0.0


NULL_METRIC = NullMetric()


class NullRegistry:
    """O11=No: every registration hands back the inert metric."""

    enabled = False

    def counter(self, name, help="", labels=()):
        return NULL_METRIC

    def gauge(self, name, help="", labels=()):
        return NULL_METRIC

    def histogram(self, name, help="", labels=(), buckets=DEFAULT_BUCKETS):
        return NULL_METRIC

    def collect(self):
        return []

    def get(self, name):
        return None

    def value(self, name, **labels):
        return None


NULL_REGISTRY = NullRegistry()
