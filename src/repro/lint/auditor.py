"""Generated-code auditor: mechanical checks over the emitted frameworks.

The Table 2 toggle-diff verifies that the declared option/class
dependencies match what codegen produces, but it compares *text* and
says nothing about whether the output is a well-formed framework.  The
auditor closes that gap with four invariants, checked per option
configuration:

1. **compiles + imports** — every emitted module byte-compiles, and the
   package as a whole imports against the runtime (a broken import in a
   rarely used corner is exactly the class of bug generators breed);
2. **no dangling references** — no emitted module mentions a class that
   a disabled option removed (the paper's "only option-selected code
   exists", enforced at the identifier level via AST);
3. **no dead branches** — generated code must never test options at
   runtime, so a constant-condition ``if``/``while`` or any reference
   to ``GENERATED_OPTIONS`` outside ``__init__`` means an option guard
   leaked a decidable branch into the output;
4. **declared == AST-derived crosscut** — the Table 2 matrix computed
   by toggling options and diffing *ASTs* (structure, not text) must
   match the template's declared fragment metadata and the checked-in
   :data:`~repro.co2p3s.nserver.table2.EXPECTED_TABLE2`.

:func:`audit_suite` sweeps a configuration set that exercises all 18
options: the shipped presets plus every single-option toggle from the
four crosscut bases.
"""

from __future__ import annotations

import ast
import os
import re
import shutil
import sys
import tempfile
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.co2p3s.crosscut import declared_matrix, empirical_matrix
from repro.co2p3s.nserver import NSERVER
from repro.co2p3s.nserver.options import (
    ALL_FEATURES_ON,
    COPS_FTP_OPTIONS,
    COPS_HTTP_OPTIONS,
    COPS_HTTP_DEGRADATION_OPTIONS,
    COPS_HTTP_RESILIENCE_OPTIONS,
    COPS_HTTP_SHARDED_OPTIONS,
    COPS_HTTP_ZEROCOPY_OPTIONS,
    DEGRADATION_TOGGLE_BASE,
    DEPLOYMENT_TOGGLE_BASE,
    POOL_TOGGLE_BASE,
)
from repro.co2p3s.nserver.table2 import EXPECTED_TABLE2
from repro.co2p3s.template import load_generated_package
from repro.lint.findings import Finding
from repro.lint.spans import stage_misuses

__all__ = [
    "audit_config",
    "audit_report",
    "audit_suite",
    "class_universe",
    "crosscut_findings",
    "suite_configs",
]

_universe_cache: Optional[Set[str]] = None


def class_universe() -> Set[str]:
    """Every class the template can emit (rendered at all-features-on).

    This is the reference set the dangling-reference check subtracts
    the per-configuration emitted classes from.
    """
    global _universe_cache
    if _universe_cache is None:
        opts = NSERVER.configure(ALL_FEATURES_ON)
        report = NSERVER.render(opts, package="universe")
        _universe_cache = set(report.class_names())
    return _universe_cache


def _module_names(tree: ast.AST) -> Set[str]:
    """Every identifier a module mentions (names and attribute names)."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
        elif isinstance(node, ast.alias):
            names.add(node.name.split(".")[-1])
    return names


def _constant_branches(tree: ast.AST) -> List[Tuple[int, str]]:
    """(lineno, description) for every trivially decidable branch."""
    hits: List[Tuple[int, str]] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.If, ast.While)):
            test = node.test
            if isinstance(test, ast.Constant):
                # ``while True:`` is the event-loop idiom, not a
                # decidable branch; everything else constant is dead
                # code one way or the other.
                if isinstance(node, ast.While) and bool(test.value):
                    continue
                hits.append((node.lineno,
                             f"constant condition {test.value!r}"))
            elif (isinstance(test, ast.Compare)
                  and isinstance(test.left, ast.Constant)
                  and all(isinstance(c, ast.Constant)
                          for c in test.comparators)):
                hits.append((node.lineno, "comparison of constants"))
    return hits


#: observability vocabulary that must not survive into an O11=No build:
#: spans, exporters, exemplars, trace ids and flight-recorder hookups all
#: belong to the tracing tentpole, whose generated call sites exist only
#: when option O11 is on.  (``flight`` alone would false-positive on the
#: ordinary phrase "in-flight", hence the targeted forms.)
_O11_FORBIDDEN = re.compile(
    r"trace_id|trace_report|exporter|exemplar|\bspans?\b"
    r"|FlightRecorder|flight_|\.flight\b",
    re.IGNORECASE)

#: degradation vocabulary that must not survive into an O17=No build:
#: the shedding policy, rate limiter, brownout, breaker, retry budget,
#: sojourn queue and adaptive controller all belong to the degradation
#: tentpole, whose generated call sites exist only when O17 is on.
#: (bare ``shed``/``sheds`` would false-positive on the resilience
#: module's prose — "sheds the poisoned event" — hence the targeted
#: forms.)
_O17_FORBIDDEN = re.compile(
    r"degradation|\bshedding\b|\bshed_|ShedDecision|brownout"
    r"|\bbreaker|RetryBudget|retry_budget|sojourn|rate_limit"
    r"|RateLimiter|TokenBucket|rejection_response|retry_after"
    r"|AdaptiveController|\badaptive_|hill_climb",
    re.IGNORECASE)

#: edge-triggered poller vocabulary that must not survive into an
#: O18=select build: the backend factory, the Poller component, batch
#: bounds and listener re-posting all belong to the poller tentpole,
#: whose generated call sites exist only when O18=epoll.  (The plain
#: word "poll" would false-positive on ordinary Reactor prose, hence
#: the targeted forms.)
_O18_FORBIDDEN = re.compile(
    r"\bepoll|EPOLLET|edge.?triggered|make_poller|\bPoller\b"
    r"|repost_accept|force_ready|accept_batch|TimerWheel|timer.?wheel",
    re.IGNORECASE)

#: multi-process deployment vocabulary that must not survive into an
#: O16=1 build: the process supervisor, worker-socket adoption, rolling
#: restarts, the respawn budget and the cross-process stats plane all
#: belong to the deployment tentpole, whose generated call sites exist
#: only when O16>1.  (The bare word "supervisor" would false-positive
#: on O13's in-process WorkerSupervisor prose, and bare "worker" on the
#: Event Processor's worker threads, hence the targeted forms.)
_O16_FORBIDDEN = re.compile(
    r"ProcessSupervisor|generated_worker|worker_listen|rolling_restart"
    r"|cluster_status|adopted_listen|in_worker_process|multi.?process"
    r"|\bprocs\b|worker_ready_timeout|worker_drain_timeout|respawn"
    r"|\bdeployment\b|stats.?socket|REUSEPORT",
    re.IGNORECASE)


def _option_value(options, key: str, default):
    """Exception-safe option lookup: audit callers may pass a full
    OptionSet, a plain dict, or a partial stub."""
    if options is None:
        return default
    try:
        return options[key]
    except Exception:
        return default


def audit_report(report, label: str,
                 options: Optional[Mapping[str, object]] = None
                 ) -> List[Finding]:
    """Static checks over one in-memory :class:`GenerationReport`.

    When the rendering ``options`` are supplied and O11 is off, the
    emitted text is additionally scanned for observability vocabulary —
    the generated-not-configured contract means a disabled option leaves
    *zero* residue, down to the identifier level.
    """
    findings: List[Finding] = []
    emitted = set(report.class_names())
    absent = class_universe() - emitted
    check_o11 = options is not None and not options["O11"]
    check_o16 = (options is not None
                 and int(_option_value(options, "O16", 2)) == 1)
    check_o17 = options is not None and not _option_value(options, "O17", True)
    check_o18 = (options is not None
                 and _option_value(options, "O18", "epoll") == "select")
    for filename, text in sorted(report.files.items()):
        where = f"{label}/{filename}"
        if check_o11 and filename != "__init__.py":
            match = _O11_FORBIDDEN.search(text)
            if match is not None:
                findings.append(Finding(
                    kind="audit",
                    ident=f"audit:o11-purity:{filename}",
                    location=where,
                    message=(f"O11=No build mentions {match.group(0)!r} — "
                             f"disabled observability left residue"),
                ))
        if check_o16 and filename != "__init__.py":
            match = _O16_FORBIDDEN.search(text)
            if match is not None:
                findings.append(Finding(
                    kind="audit",
                    ident=f"audit:o16-purity:{filename}",
                    location=where,
                    message=(f"O16=1 build mentions {match.group(0)!r} — "
                             f"disabled deployment plane left residue"),
                ))
        if check_o17 and filename != "__init__.py":
            match = _O17_FORBIDDEN.search(text)
            if match is not None:
                findings.append(Finding(
                    kind="audit",
                    ident=f"audit:o17-purity:{filename}",
                    location=where,
                    message=(f"O17=No build mentions {match.group(0)!r} — "
                             f"disabled degradation plane left residue"),
                ))
        if check_o18 and filename != "__init__.py":
            match = _O18_FORBIDDEN.search(text)
            if match is not None:
                findings.append(Finding(
                    kind="audit",
                    ident=f"audit:o18-purity:{filename}",
                    location=where,
                    message=(f"O18=select build mentions {match.group(0)!r} "
                             f"— disabled epoll backend left residue"),
                ))
        try:
            tree = ast.parse(text, filename=where)
            compile(text, where, "exec")
        except SyntaxError as exc:
            findings.append(Finding(
                kind="audit",
                ident=f"audit:compile:{filename}",
                location=f"{where}:{exc.lineno}",
                message=f"emitted module does not compile: {exc.msg}",
            ))
            continue
        mentioned = _module_names(tree)
        for name in sorted(mentioned & absent):
            findings.append(Finding(
                kind="audit",
                ident=f"audit:dangling:{filename}:{name}",
                location=where,
                message=(f"references {name}, which the current options "
                         f"do not generate"),
            ))
        if filename != "__init__.py" and "GENERATED_OPTIONS" in mentioned:
            findings.append(Finding(
                kind="audit",
                ident=f"audit:options-at-runtime:{filename}",
                location=where,
                message=("consults GENERATED_OPTIONS at runtime — options "
                         "must be resolved at generation time"),
            ))
        for lineno, description in _constant_branches(tree):
            findings.append(Finding(
                kind="audit",
                ident=f"audit:dead-branch:{filename}:{lineno}",
                location=f"{where}:{lineno}",
                message=f"option guard left a dead branch: {description}",
            ))
        for lineno, call in stage_misuses(tree):
            findings.append(Finding(
                kind="audit",
                ident=f"audit:span-stage:{filename}:{call}",
                location=f"{where}:{lineno}",
                message=(f"{call}(...) called outside a with statement — "
                         f"the stage-exit timestamp is never recorded"),
            ))
    return findings


def audit_config(options: Mapping[str, object], label: str,
                 import_check: bool = True) -> List[Finding]:
    """Render one configuration and run every per-framework invariant.

    With ``import_check`` the framework is also written to a temporary
    directory and actually imported against the runtime — the strongest
    form of "the emitted code is a working package".
    """
    opts = NSERVER.configure(options)
    package = f"audit_{abs(hash(label)) % 10 ** 8:08d}"
    report = NSERVER.render(opts, package=package)
    findings = audit_report(report, label, options=opts)
    if import_check and not findings:
        dest = tempfile.mkdtemp(prefix="repro-lint-audit-")
        try:
            NSERVER.generate(opts, dest, package=package)
            module = load_generated_package(dest, package)
            for required in ("Server", "ServerConfiguration", "ServerHooks"):
                if not hasattr(module, required):
                    findings.append(Finding(
                        kind="audit",
                        ident=f"audit:surface:{required}",
                        location=label,
                        message=f"imported framework lacks {required}",
                    ))
            recorded = getattr(module, "GENERATED_OPTIONS", None)
            if recorded != opts.as_dict():
                findings.append(Finding(
                    kind="audit",
                    ident="audit:options-record",
                    location=label,
                    message=("GENERATED_OPTIONS does not round-trip the "
                             "requested option settings"),
                ))
        except Exception as exc:  # noqa: BLE001 - any import failure is the finding
            findings.append(Finding(
                kind="audit",
                ident=f"audit:import:{label}",
                location=label,
                message=f"generated framework failed to import: {exc!r}",
            ))
        finally:
            for mod_name in list(sys.modules):
                if mod_name == package or mod_name.startswith(package + "."):
                    del sys.modules[mod_name]
            if dest in sys.path:
                sys.path.remove(dest)
            shutil.rmtree(dest, ignore_errors=True)
    return findings


def suite_configs() -> List[Tuple[str, Dict[str, object]]]:
    """(label, options) pairs exercising every one of the 18 options.

    The shipped presets cover the paper's configurations; on top, each
    option is toggled through each of its non-base legal values from
    the four crosscut bases, skipping combinations the template's own
    constraints reject.
    """
    configs: List[Tuple[str, Dict[str, object]]] = [
        ("cops-ftp", dict(COPS_FTP_OPTIONS)),
        ("cops-http", dict(COPS_HTTP_OPTIONS)),
        ("cops-http-resilient", dict(COPS_HTTP_RESILIENCE_OPTIONS)),
        ("cops-http-sharded", dict(COPS_HTTP_SHARDED_OPTIONS)),
        ("cops-http-zerocopy", dict(COPS_HTTP_ZEROCOPY_OPTIONS)),
        ("cops-http-degradation", dict(COPS_HTTP_DEGRADATION_OPTIONS)),
        ("all-features-on", dict(ALL_FEATURES_ON)),
        ("pool-toggle-base", dict(POOL_TOGGLE_BASE)),
        ("degradation-toggle-base", dict(DEGRADATION_TOGGLE_BASE)),
        ("deployment-toggle-base", dict(DEPLOYMENT_TOGGLE_BASE)),
    ]
    seen = {tuple(sorted(c.items())) for _l, c in configs}
    for base_label, base in (("all-on", ALL_FEATURES_ON),
                             ("pool-base", POOL_TOGGLE_BASE),
                             ("degradation-base", DEGRADATION_TOGGLE_BASE),
                             ("deployment-base", DEPLOYMENT_TOGGLE_BASE)):
        base_opts = NSERVER.configure(base)
        for spec in base_opts.specs:
            for value in spec.values or ():
                if value == base_opts[spec.key]:
                    continue
                candidate = dict(base, **{spec.key: value})
                try:
                    NSERVER.validate(NSERVER.configure(candidate))
                except Exception:
                    continue
                key = tuple(sorted(candidate.items()))
                if key in seen:
                    continue
                seen.add(key)
                configs.append(
                    (f"{base_label}-{spec.key}={value}", candidate))
    return configs


def audit_suite(configs: Optional[Sequence[Tuple[str, Mapping[str, object]]]]
                = None, import_check: bool = True) -> List[Finding]:
    """Audit every configuration in the suite (default: full sweep)."""
    findings: List[Finding] = []
    for label, options in (configs if configs is not None
                           else suite_configs()):
        findings.extend(audit_config(options, label,
                                     import_check=import_check))
    return findings


def _ast_canon(source: str) -> str:
    """Class source -> AST dump: diffing structure instead of text."""
    return ast.dump(ast.parse(source))


def crosscut_findings() -> List[Finding]:
    """Declared vs AST-derived vs checked-in Table 2, as findings.

    Three-way agreement: the fragment metadata (declared), the
    toggle-and-diff over ASTs (derived), and the literal table the
    repository documents (:data:`EXPECTED_TABLE2`).
    """
    findings: List[Finding] = []
    derived = empirical_matrix(NSERVER, ALL_FEATURES_ON,
                               extra_bases=(POOL_TOGGLE_BASE,
                                            DEGRADATION_TOGGLE_BASE,
                                            DEPLOYMENT_TOGGLE_BASE),
                               canon=_ast_canon)
    declared = declared_matrix(NSERVER, ALL_FEATURES_ON)
    for name, key, derived_cell, declared_cell in derived.differences(declared):
        findings.append(Finding(
            kind="audit",
            ident=f"audit:crosscut-declared:{name}:{key}",
            location=f"Table2[{name}][{key}]",
            message=(f"AST-derived crosscut {derived_cell or 'blank'!s} "
                     f"!= declared {declared_cell or 'blank'!s}"),
        ))
    for name in derived.class_names:
        expected_row = EXPECTED_TABLE2.get(name, {})
        for key in derived.option_keys:
            got = derived.cell(name, key)
            want = expected_row.get(key, "")
            if got != want:
                findings.append(Finding(
                    kind="audit",
                    ident=f"audit:crosscut-table:{name}:{key}",
                    location=f"Table2[{name}][{key}]",
                    message=(f"AST-derived crosscut {got or 'blank'!s} != "
                             f"checked-in Table 2 {want or 'blank'!s}"),
                ))
    return findings
