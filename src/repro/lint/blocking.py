"""Reactor blocking-call lint: no blocking syscalls on the event loop.

An event-driven server lives or dies by its loop never blocking: one
``time.sleep`` or synchronous ``open``/``connect`` inside a reactor
callback stalls *every* connection on that reactor.  The paper's answer
is structural (file I/O goes through the Proactor emulation, handlers
run on the Event Processor pool); this lint checks the structure holds.

The pass parses ``repro.runtime`` and ``repro.servers`` (or any path
set), builds a name-resolved call graph, and walks reachability from
the *reactor-loop roots* — the functions the dispatcher runs inline:
the acceptor's drain loop, readiness routing, the communicator's
``on_readable``/``on_writable``, and event submission.  Any blocking
primitive reachable from a root is a finding, reported with one sample
call path.

Call edges resolve by simple name (a call to ``x.foo(...)`` links to
every scanned function named ``foo``), which over-approximates: the
lint may report paths the runtime never takes, but it cannot miss a
statically visible one.  False positives that are *by design* — the
acceptor's EMFILE backoff sleep, for instance — live in
``lint-baseline.toml`` with their justification, not in special cases
here.

The sanctioned waits never show up because they are not reachable from
the roots: the Event Source's own ``select``-with-timeout *is* the
reactor's blocking point, and the Proactor's worker threads (which may
block on disk by design) run off-loop.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.findings import Finding

__all__ = [
    "BLOCKING_MODULE_CALLS",
    "DEFAULT_ROOT_NAMES",
    "DEFAULT_ROOT_QUALNAMES",
    "BlockingLint",
    "FunctionInfo",
    "default_paths",
    "lint_paths",
]

#: ``module.attr`` calls that block the calling thread
BLOCKING_MODULE_CALLS: Set[Tuple[str, str]] = {
    ("time", "sleep"),
    ("socket", "create_connection"),
    ("socket", "getaddrinfo"),
    ("socket", "gethostbyname"),
    ("socket", "gethostbyaddr"),
    ("subprocess", "run"),
    ("subprocess", "call"),
    ("subprocess", "check_call"),
    ("subprocess", "check_output"),
    ("os", "system"),
    ("select", "select"),
}

#: bare builtin calls that hit the disk or the terminal
BLOCKING_BUILTIN_CALLS: Set[str] = {"open", "input"}

#: methods that are reactor-loop entry points wherever they appear
#: (matching by simple name lets fixture files and future server shapes
#: participate without registration)
DEFAULT_ROOT_NAMES: Set[str] = {
    "on_readable",
    "on_writable",
    "route_readable",
    "route_writable",
    "dispatch",
    "adopt",
    "_distribute",
    "_process_event",
    "_submit",
    # O18: the edge-triggered accept plane runs these inline on the
    # loop — a batch-bounded drain re-posts its listener through the
    # event source's synthetic-ready queue.
    "force_ready",
    "repost_accept",
    "_repost",
}

#: fully qualified roots that need their class context to be meaningful
#: (``handle`` alone would make every protocol handler a root)
DEFAULT_ROOT_QUALNAMES: Set[str] = {
    "Acceptor.handle",
}


@dataclass
class FunctionInfo:
    """One scanned function: where it is and what it calls."""

    qualname: str
    path: str
    lineno: int
    calls: Set[str] = field(default_factory=set)
    blocking_sites: List[Tuple[str, int]] = field(default_factory=list)


class _ModuleScanner(ast.NodeVisitor):
    """Collects :class:`FunctionInfo` records for one source file."""

    def __init__(self, path: str, rel: str):
        self.path = path
        self.rel = rel
        self.functions: List[FunctionInfo] = []
        self._class_stack: List[str] = []
        self._func_stack: List[FunctionInfo] = []

    # -- structure --------------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        """Track the class-name stack for qualified names."""
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def _visit_function(self, node) -> None:
        """Open a FunctionInfo record and scan the body under it."""
        qual = ".".join(self._class_stack + [node.name]) \
            if self._class_stack else node.name
        info = FunctionInfo(qualname=qual, path=self.rel, lineno=node.lineno)
        self.functions.append(info)
        self._func_stack.append(info)
        self.generic_visit(node)
        self._func_stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    # -- calls ------------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        """Record call edges and blocking sites for the enclosing function."""
        info = self._func_stack[-1] if self._func_stack else None
        func = node.func
        if isinstance(func, ast.Name):
            callee, dotted = func.id, func.id
            if callee in BLOCKING_BUILTIN_CALLS and info is not None:
                info.blocking_sites.append((dotted, node.lineno))
        elif isinstance(func, ast.Attribute):
            callee = func.attr
            base = func.value
            if (isinstance(base, ast.Name)
                    and (base.id, func.attr) in BLOCKING_MODULE_CALLS
                    and info is not None):
                info.blocking_sites.append(
                    (f"{base.id}.{func.attr}", node.lineno))
        else:
            callee = None
        if callee is not None and info is not None:
            info.calls.add(callee)
        self.generic_visit(node)


class BlockingLint:
    """The whole pass: scan files, build the graph, walk from the roots."""

    def __init__(self,
                 root_names: Optional[Set[str]] = None,
                 root_qualnames: Optional[Set[str]] = None):
        self.root_names = (set(root_names) if root_names is not None
                           else set(DEFAULT_ROOT_NAMES))
        self.root_qualnames = (set(root_qualnames)
                               if root_qualnames is not None
                               else set(DEFAULT_ROOT_QUALNAMES))
        self.functions: List[FunctionInfo] = []

    # -- scanning ---------------------------------------------------------
    def scan_file(self, path: str, rel: Optional[str] = None) -> None:
        """Parse one source file into the function table."""
        with open(path, "r", encoding="utf-8") as fh:
            tree = ast.parse(fh.read(), filename=path)
        scanner = _ModuleScanner(path, rel or path)
        scanner.visit(tree)
        self.functions.extend(scanner.functions)

    def scan_paths(self, paths: Iterable[str], base: Optional[str] = None
                   ) -> None:
        """Scan files and (recursively) directories of ``*.py`` files."""
        for path in paths:
            if os.path.isdir(path):
                for dirpath, _dirs, files in os.walk(path):
                    for name in sorted(files):
                        if name.endswith(".py"):
                            full = os.path.join(dirpath, name)
                            self.scan_file(full, self._rel(full, base))
            else:
                self.scan_file(path, self._rel(path, base))

    @staticmethod
    def _rel(path: str, base: Optional[str]) -> str:
        """Reported path for a file, rebased when ``base`` is given."""
        if base is None:
            return path
        return os.path.relpath(path, base)

    # -- analysis ---------------------------------------------------------
    def _is_root(self, info: FunctionInfo) -> bool:
        """True when the function is a reactor-loop entry point."""
        name = info.qualname.rsplit(".", 1)[-1]
        return (name in self.root_names
                or info.qualname in self.root_qualnames)

    def reachable(self) -> Dict[str, List[str]]:
        """qualname -> sample call path from a root, for every function
        reachable from the reactor-loop roots (BFS, name-resolved)."""
        by_name: Dict[str, List[FunctionInfo]] = {}
        for info in self.functions:
            by_name.setdefault(info.qualname.rsplit(".", 1)[-1],
                               []).append(info)
        paths: Dict[str, List[str]] = {}
        queue: List[FunctionInfo] = []
        for info in self.functions:
            if self._is_root(info):
                paths[info.qualname] = [info.qualname]
                queue.append(info)
        while queue:
            current = queue.pop(0)
            base_path = paths[current.qualname]
            for callee in sorted(current.calls):
                for target in by_name.get(callee, ()):
                    if target.qualname in paths:
                        continue
                    paths[target.qualname] = base_path + [target.qualname]
                    queue.append(target)
        return paths

    def findings(self) -> List[Finding]:
        """Blocking sites inside root-reachable functions."""
        paths = self.reachable()
        results: List[Finding] = []
        seen: Set[Tuple[str, int, str]] = set()
        for info in self.functions:
            chain = paths.get(info.qualname)
            if chain is None:
                continue
            for dotted, lineno in info.blocking_sites:
                site = (info.path, lineno, dotted)
                if site in seen:
                    continue
                seen.add(site)
                ident = f"blocking:{info.path}:{info.qualname}:{dotted}"
                results.append(Finding(
                    kind="blocking",
                    ident=ident,
                    location=f"{info.path}:{lineno}",
                    message=(f"{dotted}() can block the reactor loop "
                             f"(reachable from {chain[0]})"),
                    detail="call path: " + " -> ".join(chain),
                ))
        results.sort(key=lambda f: f.ident)
        return results


def default_paths() -> List[str]:
    """The shipped-tree scan set: the runtime and the server apps."""
    src = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    return [os.path.join(src, "runtime"), os.path.join(src, "servers")]


def lint_paths(paths: Optional[Sequence[str]] = None,
               base: Optional[str] = None,
               root_names: Optional[Set[str]] = None,
               root_qualnames: Optional[Set[str]] = None) -> List[Finding]:
    """Run the lint over ``paths`` (default: the shipped tree).

    ``base`` rebases reported file paths (CI passes the repo root so
    baseline ids stay machine-independent)."""
    lint = BlockingLint(root_names=root_names, root_qualnames=root_qualnames)
    scan = list(paths) if paths else default_paths()
    if base is None and not paths:
        # default scan: report paths relative to the package parent so
        # idents look like "repro/runtime/acceptor.py:..."
        base = os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))
    lint.scan_paths(scan, base=base)
    return lint.findings()
