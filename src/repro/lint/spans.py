"""Span-usage lint: ``.stage(...)`` must be a ``with`` context expression.

:meth:`~repro.obs.spans.Span.stage` returns a context manager whose
``__exit__`` stamps the stage-end time — including when the body raises,
``BaseException`` and all.  Calling it *without* ``with`` produces a
context manager nobody enters: the stage never records, and the one
subtle variant (``span.stage("x").__enter__()``) opens a stage that
never closes, skewing every later duration on the span.  The sanctioned
escape hatch for stages that span callbacks (the Handle step parks on
``PENDING`` and finishes from a completion event) is the explicit
:meth:`~repro.obs.spans.Span.stage_begin` / ``stage_end`` pair, which
this lint deliberately ignores.

The check is purely syntactic — any call whose attribute name is
``stage`` must appear as the context expression of a ``with`` item.
That over-approximates (an unrelated object's ``stage()`` method would
be flagged too), which is the right bias for a lint with a baseline
file: a false positive costs one justified suppression, a false
negative costs a silent timing hole.
"""

from __future__ import annotations

import ast
import os
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.lint.findings import Finding

__all__ = ["span_findings", "stage_misuses"]


def stage_misuses(tree: ast.AST) -> List[Tuple[int, str]]:
    """(lineno, call text) for every ``.stage(`` call outside ``with``."""
    as_context = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                as_context.add(id(item.context_expr))
    hits: List[Tuple[int, str]] = []
    for node in ast.walk(tree):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "stage"
                and id(node) not in as_context):
            hits.append((node.lineno, ast.unparse(node.func)))
    return hits


def _default_paths() -> List[str]:
    """The shipped tree: everything under ``src/repro``."""
    return [os.path.dirname(os.path.dirname(os.path.abspath(__file__)))]


def _python_files(paths: Iterable[str]) -> Iterable[str]:
    for path in paths:
        if os.path.isfile(path):
            yield path
            continue
        for dirpath, _dirnames, filenames in os.walk(path):
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    yield os.path.join(dirpath, filename)


def span_findings(paths: Optional[Sequence[str]] = None) -> List[Finding]:
    """Scan ``paths`` (default: the shipped tree) for stage misuses."""
    findings: List[Finding] = []
    root = _default_paths()[0]
    for filename in _python_files(paths or _default_paths()):
        try:
            with open(filename, "r", encoding="utf-8") as fh:
                tree = ast.parse(fh.read(), filename=filename)
        except (OSError, SyntaxError):
            continue
        rel = os.path.relpath(filename, os.path.dirname(root))
        for lineno, call in stage_misuses(tree):
            findings.append(Finding(
                kind="spans",
                ident=f"spans:{rel}:{call}",
                location=f"{filename}:{lineno}",
                message=(f"{call}(...) called outside a with statement — "
                         f"the stage-exit timestamp is never recorded "
                         f"(use stage_begin/stage_end for split stages)"),
            ))
    return findings
