"""The common currency of the correctness plane: findings.

Every analysis (race detector, blocking-call lint, generated-code
auditor, docstring ratchet) reports :class:`Finding` objects.  A
finding carries a *stable identifier* — the key the baseline file
suppresses on — separate from its human-readable location and message,
so a justified suppression survives line-number churn.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Tuple

__all__ = ["Finding", "render_findings", "split_suppressed"]


@dataclass(frozen=True)
class Finding:
    """One reportable defect candidate.

    ``kind`` names the analysis (``race`` / ``blocking`` / ``audit`` /
    ``docstrings``); ``ident`` is the stable suppression key (always
    prefixed with the kind, e.g. ``race:EventProcessor.processed``);
    ``location`` is a clickable ``path:line`` or a descriptive anchor;
    ``detail`` holds multi-line evidence (stacks, call paths).
    """

    kind: str
    ident: str
    location: str
    message: str
    detail: str = ""

    def render(self) -> str:
        """One finding as a report block (header line + indented detail)."""
        head = f"[{self.kind}] {self.location}: {self.message}  ({self.ident})"
        if not self.detail:
            return head
        body = "\n".join("    " + line for line in self.detail.splitlines())
        return f"{head}\n{body}"


def render_findings(findings: Sequence[Finding], title: str = "") -> str:
    """Render a finding list as the report ``python -m repro.lint`` prints."""
    lines: List[str] = []
    if title:
        lines.append(title)
    for finding in findings:
        lines.append(finding.render())
    if not findings:
        lines.append("no findings")
    return "\n".join(lines)


def split_suppressed(findings: Iterable[Finding], baseline
                     ) -> Tuple[List[Finding], List[Finding]]:
    """Partition findings into (live, suppressed) against a baseline.

    ``baseline`` is anything with a ``suppressed(ident) -> bool``
    method (``None`` suppresses nothing).
    """
    live: List[Finding] = []
    quiet: List[Finding] = []
    for finding in findings:
        if baseline is not None and baseline.suppressed(finding.ident):
            quiet.append(finding)
        else:
            live.append(finding)
    return live, quiet
