"""The checked-in suppression file, ``lint-baseline.toml``.

Some findings are *intentional*: the acceptor's backoff sleep sheds
load by design, and a handful of lock-free counter reads are sanctioned
GIL-atomic snapshots.  Rather than weakening the analyses, each such
finding is recorded here with a one-line justification:

.. code-block:: toml

    [[suppression]]
    id = "blocking:repro/runtime/acceptor.py:Acceptor.handle:time.sleep"
    reason = "EMFILE backoff is deliberate load shedding (see docstring)"

``id`` may use ``fnmatch`` wildcards so a suppression survives
line-number and path churn.  Python 3.11+ parses the file with
:mod:`tomllib`; on 3.10 a minimal reader for exactly this shape
(``[[suppression]]`` tables of string keys) takes over, so the plane
has zero dependencies beyond the standard library.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Dict, List, Optional

__all__ = ["Baseline", "Suppression", "find_baseline", "load_baseline"]

#: filename looked up from the repository root
BASELINE_NAME = "lint-baseline.toml"


@dataclass(frozen=True)
class Suppression:
    """One justified, intentionally tolerated finding."""

    ident: str
    reason: str

    def matches(self, ident: str) -> bool:
        """True when this entry covers ``ident`` (fnmatch semantics)."""
        return fnmatchcase(ident, self.ident)


@dataclass
class Baseline:
    """The parsed suppression set; matching is first-entry-wins."""

    suppressions: List[Suppression] = field(default_factory=list)
    path: Optional[str] = None

    def suppressed(self, ident: str) -> bool:
        """True when any checked-in entry covers the finding id."""
        return any(s.matches(ident) for s in self.suppressions)

    def reason_for(self, ident: str) -> Optional[str]:
        """The justification attached to the first covering entry."""
        for s in self.suppressions:
            if s.matches(ident):
                return s.reason
        return None


def _parse_minimal_toml(text: str) -> List[Dict[str, str]]:
    """Parse the ``[[suppression]]`` subset of TOML used by the baseline.

    Supports array-of-tables headers, ``key = "value"`` string pairs,
    comments and blank lines — nothing else, by design: the fallback
    only ever reads the file this module documents.
    """
    tables: List[Dict[str, str]] = []
    current: Optional[Dict[str, str]] = None
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line == "[[suppression]]":
            current = {}
            tables.append(current)
            continue
        if line.startswith("["):
            raise ValueError(f"unsupported baseline section: {line}")
        if "=" not in line:
            raise ValueError(f"unparseable baseline line: {line}")
        if current is None:
            raise ValueError(f"key outside [[suppression]] table: {line}")
        key, _, value = line.partition("=")
        key = key.strip()
        value = value.strip()
        if len(value) < 2 or value[0] not in "\"'" or value[-1] != value[0]:
            raise ValueError(f"baseline values must be quoted strings: {line}")
        current[key] = value[1:-1]
    return tables


def load_baseline(path: str) -> Baseline:
    """Read and validate a baseline file; every entry needs a reason."""
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    try:
        import tomllib
        tables = tomllib.loads(text).get("suppression", [])
    except ModuleNotFoundError:  # Python 3.10: no tomllib in the stdlib
        tables = _parse_minimal_toml(text)
    suppressions = []
    for table in tables:
        ident = str(table.get("id", "")).strip()
        reason = str(table.get("reason", "")).strip()
        if not ident:
            raise ValueError(f"{path}: suppression without an id")
        if not reason:
            raise ValueError(
                f"{path}: suppression {ident!r} has no justification")
        suppressions.append(Suppression(ident=ident, reason=reason))
    return Baseline(suppressions=suppressions, path=path)


def find_baseline(start: Optional[str] = None,
                  name: str = BASELINE_NAME) -> Optional[Baseline]:
    """Locate and load a baseline file (default ``lint-baseline.toml``)
    by walking up from ``start`` (default: this package's repository
    checkout); ``None`` when no file is found — all findings then count
    as live.  Other planes reuse the walk with their own ``name``
    (the conformance checker passes ``conform-baseline.toml``)."""
    here = os.path.abspath(start or os.path.dirname(__file__))
    while True:
        candidate = os.path.join(here, name)
        if os.path.isfile(candidate):
            return load_baseline(candidate)
        parent = os.path.dirname(here)
        if parent == here:
            return None
        here = parent
