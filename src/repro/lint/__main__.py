"""``python -m repro.lint`` — the correctness plane's CLI.

Subcommands:

* *(none)* / ``check`` — the CI gate: blocking-call lint over the
  shipped tree, the generated-code audit sweep (all 18 options), the
  Table 2 crosscut three-way check, and the docstring ratchet.  Exits
  1 when any finding survives the baseline.
* ``blocking [PATH...]`` — the reactor lint alone, optionally over
  explicit paths (the seeded fixtures use this: a path with a known
  blocking call must exit non-zero).
* ``race SCENARIO.py`` — import a scenario file and run its ``run()``
  under an installed :class:`~repro.lint.locks.RaceDetector`; exits 1
  when candidate races survive the baseline.
* ``audit`` — the generated-code audit sweep alone.
* ``spans [PATH...]`` — the span-usage lint alone: every ``.stage(``
  call must be a ``with`` context expression.
* ``docstrings [PATH...]`` — the coverage ratchet alone.

The baseline (``lint-baseline.toml`` at the repository root) applies
everywhere unless ``--no-baseline`` is given; suppressed findings are
listed with their justification under ``--verbose``.
"""

from __future__ import annotations

import argparse
import importlib.util
import os
import sys
from typing import List, Optional

from repro.lint.baseline import Baseline, find_baseline, load_baseline
from repro.lint.blocking import lint_paths
from repro.lint.findings import Finding, render_findings, split_suppressed
from repro.lint.docstrings import coverage_findings
from repro.lint.spans import span_findings

#: the default docstring ratchet; raise when coverage grows
DOCSTRING_RATCHET = 70.0


def _src_root() -> str:
    """The directory containing the ``repro`` package."""
    return os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))


def _docstring_paths() -> List[str]:
    """The gated trees: the correctness plane and the runtime."""
    repro = os.path.join(_src_root(), "repro")
    return [os.path.join(repro, "lint"), os.path.join(repro, "runtime")]


def _resolve_baseline(args) -> Optional[Baseline]:
    """The baseline the flags select: explicit path, discovered, or none."""
    if getattr(args, "no_baseline", False):
        return None
    if getattr(args, "baseline", None):
        return load_baseline(args.baseline)
    return find_baseline()


def _report(findings: List[Finding], baseline: Optional[Baseline],
            verbose: bool, title: str) -> int:
    """Print the split report; the exit code is the live-finding count."""
    live, quiet = split_suppressed(findings, baseline)
    print(render_findings(live, title=title))
    if verbose and quiet:
        print(f"\n{len(quiet)} finding(s) suppressed by "
              f"{baseline.path if baseline else 'baseline'}:")
        for finding in quiet:
            reason = baseline.reason_for(finding.ident) if baseline else ""
            print(f"  {finding.ident}: {reason}")
    return 1 if live else 0


def _run_race_scenario(path: str, entry: str) -> List[Finding]:
    """Import a scenario file and execute ``entry()`` under a detector."""
    from repro.lint.locks import RaceDetector

    spec = importlib.util.spec_from_file_location("repro_lint_scenario", path)
    if spec is None or spec.loader is None:
        raise SystemExit(f"cannot load scenario {path}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    func = getattr(module, entry, None)
    if func is None:
        raise SystemExit(f"scenario {path} has no {entry}() entry point")
    detector = RaceDetector()
    with detector.detecting():
        func()
    return detector.findings()


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--baseline", help="explicit lint-baseline.toml path")
    common.add_argument("--no-baseline", action="store_true",
                        help="report every finding, suppressing nothing")
    common.add_argument("--verbose", "-v", action="store_true",
                        help="also list suppressed findings with reasons")
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        parents=[common],
        description="concurrency correctness plane: race detector, "
                    "reactor lint, generated-code auditor")
    sub = parser.add_subparsers(dest="command")

    sub.add_parser("check", parents=[common],
                   help="every static analysis (the CI gate)")

    p_blocking = sub.add_parser("blocking", parents=[common],
                                help="reactor blocking-call lint")
    p_blocking.add_argument("paths", nargs="*",
                            help="files/dirs to scan (default: shipped tree)")

    p_race = sub.add_parser("race", parents=[common],
                            help="run a scenario under the race detector")
    p_race.add_argument("scenario", help="python file with a run() entry")
    p_race.add_argument("--entry", default="run",
                        help="entry-point function name (default: run)")

    p_audit = sub.add_parser("audit", parents=[common], help="generated-code audit sweep")
    p_audit.add_argument("--no-import", action="store_true",
                         help="skip the import check (render-only, faster)")

    p_spans = sub.add_parser("spans", parents=[common],
                             help="span-usage lint (.stage must be a "
                                  "with context expression)")
    p_spans.add_argument("paths", nargs="*",
                         help="files/dirs to scan (default: shipped tree)")

    p_doc = sub.add_parser("docstrings", parents=[common], help="docstring-coverage ratchet")
    p_doc.add_argument("paths", nargs="*",
                       help="trees to measure (default: lint + runtime)")
    p_doc.add_argument("--fail-under", type=float, default=DOCSTRING_RATCHET,
                       help=f"minimum percent (default {DOCSTRING_RATCHET})")

    args = parser.parse_args(argv)
    baseline = _resolve_baseline(args)
    command = args.command or "check"

    if command == "blocking":
        findings = lint_paths(args.paths or None)
        return _report(findings, baseline, args.verbose,
                       "reactor blocking-call lint")

    if command == "race":
        findings = _run_race_scenario(args.scenario, args.entry)
        return _report(findings, baseline, args.verbose,
                       f"race detector over {args.scenario}")

    if command == "audit":
        from repro.lint.auditor import audit_suite, crosscut_findings
        findings = audit_suite(import_check=not args.no_import)
        findings += crosscut_findings()
        return _report(findings, baseline, args.verbose,
                       "generated-code audit")

    if command == "spans":
        findings = span_findings(args.paths or None)
        return _report(findings, baseline, args.verbose,
                       "span-usage lint")

    if command == "docstrings":
        report, findings = coverage_findings(
            args.paths or _docstring_paths(), args.fail_under)
        print(f"docstring coverage: {report.percent:.1f}% "
              f"({report.documented}/{report.total})")
        return _report(findings, baseline, args.verbose, "docstring ratchet")

    # default: the full gate
    from repro.lint.auditor import audit_suite, crosscut_findings
    failures = 0
    failures += _report(lint_paths(), baseline, args.verbose,
                        "reactor blocking-call lint")
    print()
    failures += _report(span_findings(), baseline, args.verbose,
                        "span-usage lint")
    print()
    failures += _report(audit_suite() + crosscut_findings(), baseline,
                        args.verbose, "generated-code audit")
    print()
    report, doc_findings = coverage_findings(_docstring_paths(),
                                             DOCSTRING_RATCHET)
    print(f"docstring coverage: {report.percent:.1f}% "
          f"({report.documented}/{report.total})")
    failures += _report(doc_findings, baseline, args.verbose,
                        "docstring ratchet")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
