"""Concurrency correctness plane for the N-Server reproduction.

The paper's pitch is that generated servers are *correct by
construction*: only option-selected code exists, so there are no
untested feature interactions.  This package checks the parts of that
claim the Table 2 toggle-diff cannot reach, with three cooperating
analyses:

* :mod:`repro.lint.locks` — an Eraser-style **lockset race detector**.
  A :class:`~repro.lint.locks.TrackedLock` shim plus
  :func:`~repro.lint.locks.shared` / :func:`~repro.lint.locks.access`
  annotations instrument the hot shared structures (metrics registry
  counters, buffer-pool free lists, the Event Processor worker table,
  shard placement state, the event quarantine).  While a
  :class:`~repro.lint.locks.RaceDetector` is installed, every annotated
  field access refines the intersection of locksets held across
  threads; an empty intersection on a shared-modified field is a
  candidate race, reported with both access stacks.

* :mod:`repro.lint.blocking` — a **reactor blocking-call lint**: an AST
  pass over ``repro.runtime`` / ``repro.servers`` that flags blocking
  primitives (``time.sleep``, blocking ``socket.*`` constructors, bare
  ``open``) reachable from reactor-loop callbacks — the event-driven
  analogue of "no syscalls on the hot path".

* :mod:`repro.lint.auditor` — a **generated-code auditor** that renders
  and imports option-matrix corners of the N-Server template and checks
  invariants per emitted framework: every module compiles and imports,
  no module references a class a disabled option removed, no
  option-guard fragment leaves a constant-condition dead branch, and
  the AST-derived Table 2 crosscut matrix equals the declared one.

Intentional findings are recorded in the repository's
``lint-baseline.toml`` with one-line justifications
(:mod:`repro.lint.baseline`).  ``python -m repro.lint`` runs the static
analyses plus a docstring-coverage ratchet and exits non-zero on any
unsuppressed finding; the race detector activates over the tier-1 test
suite via the ``race_detector`` fixture (``REPRO_RACE_DETECTOR=1``).

This ``__init__`` stays import-light on purpose: the runtime imports
:mod:`repro.lint.locks` on its hot paths, and pulling the auditor (and
with it the whole generator) into that import would be a layering
inversion.  Import the analysis modules directly.
"""

from repro.lint.findings import Finding, render_findings
from repro.lint.locks import (
    RaceDetector,
    TrackedLock,
    access,
    active_detector,
    make_lock,
    shared,
)

__all__ = [
    "Finding",
    "RaceDetector",
    "TrackedLock",
    "access",
    "active_detector",
    "make_lock",
    "render_findings",
    "shared",
]
