"""Eraser-style lockset race detection (Savage et al., 1997).

The dynamic half of the correctness plane.  The runtime's hot shared
structures swap ``threading.Lock()`` for :func:`make_lock` (a
:class:`TrackedLock` that also maintains a per-thread held-lockset) and
annotate their shared fields with :func:`access` calls at each read and
write.  With no :class:`RaceDetector` installed both are near-free: one
global ``None`` check per annotation and one ``set`` update per lock
transition.

With a detector installed (tests: the ``race_detector`` fixture under
``REPRO_RACE_DETECTOR=1``), each annotated field runs the classic
Eraser state machine:

* **virgin/exclusive** — accessed by a single thread: no refinement, so
  single-threaded initialisation never reports;
* **shared** — a second thread read it: the candidate lockset becomes
  the locks held at that access and is *intersected* on every later
  access, but read-only sharing never reports;
* **shared-modified** — a write while shared: an *empty* candidate
  lockset here means no single lock consistently protected the field —
  a candidate race, reported once per field with the two conflicting
  access stacks.

The detector deliberately tracks lock *discipline*, not observed
interleavings: under the GIL most of these races cannot tear memory,
but they are exactly the lost-update and torn-invariant bugs
(``counter += 1`` outside the lock) that surface when a structure grows
a second field or the interpreter drops the GIL.
"""

from __future__ import annotations

import sys
import threading
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.lint.findings import Finding

__all__ = [
    "RaceDetector",
    "RaceCandidate",
    "TrackedLock",
    "access",
    "active_detector",
    "make_lock",
    "shared",
]

#: per-thread set of currently held TrackedLocks, maintained whether or
#: not a detector is installed so mid-run installation sees true state
_held = threading.local()

#: the installed detector, or None (the common, near-free case)
_active: Optional["RaceDetector"] = None


def _held_set() -> set:
    """This thread's held-lock set (created on first use)."""
    locks = getattr(_held, "locks", None)
    if locks is None:
        locks = set()
        _held.locks = locks
    return locks


class TrackedLock:
    """A ``threading.Lock`` that records itself in the holder's lockset.

    Drop-in for the subset of the Lock API the runtime uses (context
    manager, ``acquire``/``release``, ``locked``).  ``name`` labels the
    lock in race reports; instances are identity-hashed, so two pools'
    locks sharing a name stay distinct locks.
    """

    __slots__ = ("_lock", "name")

    def __init__(self, name: str = "lock"):
        self._lock = threading.Lock()
        self.name = name

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        """Acquire the lock, recording it in this thread's held-lockset."""
        acquired = self._lock.acquire(blocking, timeout)
        if acquired:
            _held_set().add(self)
        return acquired

    def release(self) -> None:
        """Release the lock and leave the holder's lockset."""
        self._lock.release()
        _held_set().discard(self)

    def locked(self) -> bool:
        """True while any thread holds the lock."""
        return self._lock.locked()

    def __enter__(self) -> bool:
        """Context-manager acquire."""
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        """Context-manager release."""
        self.release()

    def __repr__(self) -> str:
        """Debugging representation: lock name plus held state."""
        state = "locked" if self._lock.locked() else "unlocked"
        return f"<TrackedLock {self.name} {state}>"


def make_lock(name: str = "lock") -> TrackedLock:
    """The runtime's lock constructor for race-tracked structures."""
    return TrackedLock(name)


def shared(owner: object, *fields: str, label: Optional[str] = None) -> None:
    """Declare ``owner.field...`` as intentionally shared state.

    Purely declarative: pre-registers the fields (so the report can
    list covered state even when never contended) and attaches a
    human-readable label.  A no-op unless a detector is installed.
    """
    detector = _active
    if detector is not None:
        detector.register(owner, fields, label)


def access(owner: object, field_name: str, write: bool = True) -> None:
    """Record one access to an annotated shared field.

    Call at the access site, *while holding whatever locks protect the
    field* — the currently held lockset is what the Eraser refinement
    intersects.  A no-op unless a detector is installed.
    """
    detector = _active
    if detector is not None:
        detector.note_access(owner, field_name, write)


def active_detector() -> Optional["RaceDetector"]:
    """The currently installed detector, if any."""
    return _active


def _short_stack(skip: int = 2, limit: int = 8) -> Tuple[str, ...]:
    """A cheap caller chain (``file:line in func``), innermost first.

    Walks raw frames instead of :mod:`traceback` — this runs on every
    annotated access while the detector is live, so formatting cost is
    the difference between a usable and an unusable tier-1 run.
    """
    try:
        frame = sys._getframe(skip)
    except ValueError:  # shallower stack than requested
        return ()
    entries: List[str] = []
    while frame is not None and len(entries) < limit:
        code = frame.f_code
        entries.append(
            f"{code.co_filename}:{frame.f_lineno} in {code.co_name}")
        frame = frame.f_back
    return tuple(entries)


# -- detector state -----------------------------------------------------------

#: Eraser states
_VIRGIN, _EXCLUSIVE, _SHARED, _SHARED_MODIFIED = range(4)


@dataclass
class _Access:
    """The evidence half of a race report: who touched the field, how."""

    thread: str
    write: bool
    locks: Tuple[str, ...]
    stack: Tuple[str, ...]

    def describe(self) -> str:
        """Render this access (kind, thread, locks, stack) for a report."""
        kind = "write" if self.write else "read"
        locks = ", ".join(self.locks) if self.locks else "no locks"
        frames = "\n".join("  " + line for line in self.stack[:6])
        return f"{kind} by {self.thread} holding [{locks}]\n{frames}"


@dataclass
class _VarState:
    """Per-field Eraser bookkeeping."""

    label: str
    state: int = _VIRGIN
    first_thread: Optional[int] = None
    lockset: Optional[FrozenSet[TrackedLock]] = None
    last_other: Dict[int, _Access] = field(default_factory=dict)
    reported: bool = False


@dataclass(frozen=True)
class RaceCandidate:
    """One reported lockset violation, with both conflicting stacks."""

    ident: str
    label: str
    current: _Access
    previous: Optional[_Access]

    def finding(self) -> Finding:
        """This candidate as a baseline-suppressible :class:`Finding`."""
        parts = ["conflicting access:", self.current.describe()]
        if self.previous is not None:
            parts += ["earlier access:", self.previous.describe()]
        return Finding(
            kind="race",
            ident=self.ident,
            location=self.current.stack[0] if self.current.stack else self.label,
            message=(f"lockset for {self.label} is empty — no lock "
                     f"consistently protects it"),
            detail="\n".join(parts),
        )


class RaceDetector:
    """Collects lockset evidence from annotated accesses while installed.

    Use as a context manager (:meth:`detecting`) or install/uninstall
    explicitly.  Only one detector can be installed at a time; the
    annotations consult a single module global so the uninstalled cost
    stays one ``None`` check.
    """

    def __init__(self):
        self._mutex = threading.Lock()  # plain: never itself tracked
        self._vars: Dict[Tuple[int, str, str], _VarState] = {}
        self._labels: Dict[int, str] = {}
        self.candidates: List[RaceCandidate] = []

    # -- installation -----------------------------------------------------
    def install(self) -> None:
        """Make this the globally consulted detector."""
        global _active
        if _active is not None and _active is not self:
            raise RuntimeError("another RaceDetector is already installed")
        _active = self

    def uninstall(self) -> None:
        """Deactivate; annotated accesses return to the no-op path."""
        global _active
        if _active is self:
            _active = None

    def detecting(self) -> "_Detecting":
        """``with detector.detecting(): ...`` — scoped installation."""
        return _Detecting(self)

    # -- annotation entry points ------------------------------------------
    def register(self, owner: object, fields, label: Optional[str]) -> None:
        """Pre-register ``owner``'s fields (from :func:`shared`)."""
        name = label or type(owner).__name__
        with self._mutex:
            self._labels[id(owner)] = name
            for field_name in fields:
                self._key_state(owner, field_name, name)

    def note_access(self, owner: object, field_name: str, write: bool) -> None:
        """Run the Eraser state machine for one field access."""
        held = frozenset(_held_set())
        thread = threading.get_ident()
        candidate: Optional[RaceCandidate] = None
        with self._mutex:
            state = self._key_state(owner, field_name, None)
            if state.reported:
                return
            if state.state == _VIRGIN:
                state.state = _EXCLUSIVE
                state.first_thread = thread
            elif state.state == _EXCLUSIVE and thread == state.first_thread:
                pass  # still single-threaded: no refinement
            else:
                if state.lockset is None:
                    # leaving exclusive: the candidate set starts as the
                    # locks held right now, not the historical union
                    state.lockset = held
                else:
                    state.lockset = state.lockset & held
                if state.state in (_VIRGIN, _EXCLUSIVE):
                    state.state = _SHARED_MODIFIED if write else _SHARED
                elif write:
                    state.state = _SHARED_MODIFIED
                if state.state == _SHARED_MODIFIED and not state.lockset:
                    state.reported = True
                    current = _Access(
                        thread=threading.current_thread().name,
                        write=write,
                        locks=tuple(sorted(l.name for l in held)),
                        stack=_short_stack(skip=3),
                    )
                    previous = next(
                        (acc for tid, acc in state.last_other.items()
                         if tid != thread), None)
                    candidate = RaceCandidate(
                        ident=f"race:{state.label}.{field_name}",
                        label=f"{state.label}.{field_name}",
                        current=current,
                        previous=previous,
                    )
                    self.candidates.append(candidate)
            # remember this access as potential "other side" evidence
            state.last_other[thread] = _Access(
                thread=threading.current_thread().name,
                write=write,
                locks=tuple(sorted(l.name for l in held)),
                stack=_short_stack(skip=3),
            )
            if len(state.last_other) > 8:  # bound per-field memory
                state.last_other.pop(next(iter(state.last_other)))

    def _key_state(self, owner: object, field_name: str,
                   label: Optional[str]) -> _VarState:
        """The per-field state record (created on first sight).

        Keyed by ``(id(owner), type, field)``; the type name guards
        against most id-reuse aliasing after garbage collection.  Must
        be called with ``_mutex`` held.
        """
        key = (id(owner), type(owner).__name__, field_name)
        state = self._vars.get(key)
        if state is None:
            name = (label or self._labels.get(id(owner))
                    or type(owner).__name__)
            state = _VarState(label=name)
            self._vars[key] = state
        return state

    # -- reporting --------------------------------------------------------
    def findings(self, baseline=None) -> List[Finding]:
        """Candidate races as findings, minus baseline suppressions."""
        with self._mutex:
            candidates = list(self.candidates)
        findings = [c.finding() for c in candidates]
        if baseline is None:
            return findings
        return [f for f in findings if not baseline.suppressed(f.ident)]

    def tracked_fields(self) -> List[str]:
        """Labels of every field seen so far (coverage introspection)."""
        with self._mutex:
            return sorted({f"{s.label}.{key[2]}"
                           for key, s in self._vars.items()})


class _Detecting:
    """Context manager installing/uninstalling a detector."""

    def __init__(self, detector: RaceDetector):
        self.detector = detector

    def __enter__(self) -> RaceDetector:
        """Install the detector for the with-block."""
        self.detector.install()
        return self.detector

    def __exit__(self, *exc_info) -> None:
        """Uninstall the detector on scope exit."""
        self.detector.uninstall()
