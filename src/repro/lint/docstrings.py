"""Docstring-coverage ratchet (a dependency-free ``interrogate``).

Correctness tooling is only as good as its explanations: the CI gate
requires that at least a ratcheted fraction of the public surface under
``src/repro/lint/`` and ``src/repro/runtime/`` carries a docstring.
Counted objects are modules, classes, and functions/methods; nested
functions and synthesised lambdas are skipped, as is ``__init__`` when
its class is already documented (the class docstring is the
constructor's contract).

The floor only ever goes up: raise it when coverage grows, never lower
it to admit an under-documented change.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple

from repro.lint.findings import Finding

__all__ = ["CoverageReport", "measure", "coverage_findings"]


@dataclass
class CoverageReport:
    """Counts plus the list of undocumented definitions."""

    total: int = 0
    documented: int = 0
    missing: List[str] = field(default_factory=list)

    @property
    def percent(self) -> float:
        """Documented fraction as a percentage (100.0 when empty)."""
        return 100.0 * self.documented / self.total if self.total else 100.0


def _count_node(report: CoverageReport, node, where: str,
                class_documented: bool) -> None:
    """Tally one definition, honouring the documented-``__init__`` exemption."""
    has_doc = ast.get_docstring(node) is not None
    if (isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node.name == "__init__" and class_documented and not has_doc):
        return  # the class docstring covers its constructor
    report.total += 1
    if has_doc:
        report.documented += 1
    else:
        report.missing.append(where)


def _walk_definitions(report: CoverageReport, body, prefix: str,
                      class_documented: bool = False) -> None:
    """Recursively tally classes and functions/methods in ``body``."""
    for node in body:
        if isinstance(node, ast.ClassDef):
            where = f"{prefix}.{node.name}"
            _count_node(report, node, where, False)
            _walk_definitions(report, node.body, where,
                              ast.get_docstring(node) is not None)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _count_node(report, node, f"{prefix}.{node.name}",
                        class_documented)
            # nested defs are implementation detail: not counted


def measure(paths: Iterable[str]) -> CoverageReport:
    """Docstring coverage over files and directories of ``*.py``."""
    report = CoverageReport()
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, _dirs, names in os.walk(path):
                files.extend(os.path.join(dirpath, n)
                             for n in sorted(names) if n.endswith(".py"))
        else:
            files.append(path)
    for path in files:
        with open(path, "r", encoding="utf-8") as fh:
            tree = ast.parse(fh.read(), filename=path)
        module_label = os.path.basename(path)
        _count_node(report, tree, module_label, False)
        _walk_definitions(report, tree.body, module_label)
    return report


def coverage_findings(paths: Iterable[str], fail_under: float
                      ) -> Tuple[CoverageReport, List[Finding]]:
    """The gate: one finding when coverage falls below the ratchet."""
    report = measure(paths)
    findings: List[Finding] = []
    if report.percent < fail_under:
        worst = "\n".join(report.missing[:20])
        findings.append(Finding(
            kind="docstrings",
            ident="docstrings:ratchet",
            location=", ".join(str(p) for p in paths),
            message=(f"docstring coverage {report.percent:.1f}% is below "
                     f"the {fail_under:.0f}% ratchet "
                     f"({report.documented}/{report.total} documented)"),
            detail=f"first undocumented definitions:\n{worst}",
        ))
    return report, findings
