"""HTTP request model."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional
from urllib.parse import unquote

from repro.http.headers import Headers

__all__ = ["HttpRequest", "BadRequest"]

SUPPORTED_METHODS = ("GET", "HEAD", "POST", "PUT", "DELETE", "OPTIONS", "TRACE")


class BadRequest(ValueError):
    """Malformed request; carries the HTTP status code to answer with."""

    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.status = status


@dataclass
class HttpRequest:
    """A parsed request line + headers + body."""

    method: str
    target: str
    version: str
    headers: Headers = field(default_factory=Headers)
    body: bytes = b""

    @property
    def path(self) -> str:
        """Decoded path component of the request target (no query)."""
        raw = self.target.split("?", 1)[0]
        return unquote(raw)

    @property
    def query(self) -> str:
        parts = self.target.split("?", 1)
        return parts[1] if len(parts) == 2 else ""

    @property
    def keep_alive(self) -> bool:
        """HTTP/1.1 defaults to persistent connections; HTTP/1.0 requires
        an explicit ``Connection: keep-alive``."""
        conn = (self.headers.get("Connection") or "").lower()
        if self.version == "HTTP/1.1":
            return conn != "close"
        return conn == "keep-alive"

    def validate(self) -> None:
        """Raise :class:`BadRequest` on protocol violations."""
        if self.method not in SUPPORTED_METHODS:
            raise BadRequest(f"method {self.method!r}", status=501)
        if self.version not in ("HTTP/1.0", "HTTP/1.1"):
            raise BadRequest(f"version {self.version!r}", status=505)
        if self.version == "HTTP/1.1" and "Host" not in self.headers:
            raise BadRequest("HTTP/1.1 requires Host header", status=400)
        if not self.target.startswith("/") and self.target != "*":
            raise BadRequest(f"target {self.target!r}", status=400)
