"""HTTP response builder."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from email.utils import formatdate
from typing import Optional

from repro.http.headers import Headers
from repro.http.status import reason_phrase

__all__ = ["HttpResponse", "error_response"]

SERVER_TOKEN = "COPS-HTTP/1.0 (repro)"


@dataclass
class HttpResponse:
    """A response ready for serialisation.

    ``encode`` fills in Content-Length, Server and Date when absent, so
    hook code can stay minimal.
    """

    status: int = 200
    headers: Headers = field(default_factory=Headers)
    body: bytes = b""
    version: str = "HTTP/1.1"
    #: suppress the body on the wire (HEAD requests keep Content-Length)
    head_only: bool = False

    def encode(self, date: Optional[str] = None) -> bytes:
        headers = Headers(list(self.headers))
        if "Content-Length" not in headers:
            headers.set("Content-Length", str(len(self.body)))
        if "Server" not in headers:
            headers.set("Server", SERVER_TOKEN)
        if "Date" not in headers:
            headers.set("Date", date if date is not None
                        else formatdate(time.time(), usegmt=True))
        status_line = (f"{self.version} {self.status} "
                       f"{reason_phrase(self.status)}\r\n").encode("latin-1")
        wire = status_line + headers.encode() + b"\r\n"
        if not self.head_only:
            wire += self.body
        return wire


def error_response(status: int, version: str = "HTTP/1.1",
                   close: bool = False) -> HttpResponse:
    """A minimal HTML error page for ``status``."""
    reason = reason_phrase(status)
    body = (f"<html><head><title>{status} {reason}</title></head>"
            f"<body><h1>{status} {reason}</h1></body></html>").encode()
    headers = Headers([("Content-Type", "text/html")])
    if close:
        headers.set("Connection", "close")
    return HttpResponse(status=status, headers=headers, body=body,
                        version=version)
