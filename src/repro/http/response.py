"""HTTP response builder."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from email.utils import formatdate
from typing import Optional

from repro.http.headers import Headers
from repro.http.status import reason_phrase

__all__ = ["HttpResponse", "error_response"]

SERVER_TOKEN = "COPS-HTTP/1.0 (repro)"


@dataclass
class HttpResponse:
    """A response ready for serialisation.

    ``encode`` fills in Content-Length, Server and Date when absent, so
    hook code can stay minimal.
    """

    status: int = 200
    headers: Headers = field(default_factory=Headers)
    body: bytes = b""
    version: str = "HTTP/1.1"
    #: suppress the body on the wire (HEAD requests keep Content-Length)
    head_only: bool = False

    def _wire_headers(self, date: Optional[str]) -> Headers:
        """The headers as they go on the wire: defaults filled in
        set-if-absent, and a handler-set ``Content-Length`` never
        duplicated (RFC 7230 forbids multiple occurrences — a split
        response is a request-smuggling hazard)."""
        headers = Headers(list(self.headers))
        if "Content-Length" not in headers:
            headers.set("Content-Length", str(len(self.body)))
        elif len(headers.get_all("Content-Length")) > 1:
            headers.set("Content-Length", headers.get("Content-Length"))
        if "Server" not in headers:
            headers.set("Server", SERVER_TOKEN)
        if "Date" not in headers:
            headers.set("Date", date if date is not None
                        else formatdate(time.time(), usegmt=True))
        return headers

    def encode_head(self, date: Optional[str] = None) -> bytes:
        """Status line + headers + blank line (everything but the body)."""
        status_line = (f"{self.version} {self.status} "
                       f"{reason_phrase(self.status)}\r\n").encode("latin-1")
        return status_line + self._wire_headers(date).encode() + b"\r\n"

    def encode(self, date: Optional[str] = None) -> bytes:
        wire = self.encode_head(date)
        if not self.head_only:
            wire += self.body
        return wire

    def encode_segments(self, date: Optional[str] = None, pool=None):
        """Zero-copy serialisation: the wire bytes as a list of segments
        whose concatenation equals :meth:`encode` byte-for-byte.

        The head is rendered once — into a pooled buffer when ``pool``
        (a :class:`~repro.runtime.buffers.BufferPool`) is given — and
        the body is referenced as a ``memoryview``, never copied.  The
        segments are meant for ``Communicator.send_bytes``, which
        queues them on a segmented out-buffer and releases the pooled
        head once it drains.
        """
        head = self.encode_head(date)
        if pool is not None:
            head = pool.acquire(len(head)).write(head)
        segments = [head]
        if not self.head_only and self.body:
            segments.append(memoryview(self.body))
        return segments


def error_response(status: int, version: str = "HTTP/1.1",
                   close: bool = False,
                   head_only: bool = False) -> HttpResponse:
    """A minimal HTML error page for ``status``.  ``head_only`` keeps
    the page's Content-Length but suppresses the body on the wire — an
    error answering a HEAD request must not carry one."""
    reason = reason_phrase(status)
    body = (f"<html><head><title>{status} {reason}</title></head>"
            f"<body><h1>{status} {reason}</h1></body></html>").encode()
    headers = Headers([("Content-Type", "text/html")])
    if close:
        headers.set("Connection", "close")
    return HttpResponse(status=status, headers=headers, body=body,
                        version=version, head_only=head_only)
