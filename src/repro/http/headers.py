"""Case-insensitive HTTP header collection preserving insertion order."""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Tuple

__all__ = ["Headers"]


class Headers:
    """Ordered, case-insensitive multimap of header fields.

    Lookups fold case per RFC 2616; the original spelling is preserved
    for serialisation.
    """

    def __init__(self, items: Optional[Iterable[Tuple[str, str]]] = None):
        self._items: List[Tuple[str, str]] = []
        if items:
            for name, value in items:
                self.add(name, value)

    def add(self, name: str, value: str) -> None:
        self._items.append((str(name), str(value)))

    def set(self, name: str, value: str) -> None:
        """Replace all occurrences of ``name`` with a single value."""
        self.remove(name)
        self.add(name, value)

    def remove(self, name: str) -> None:
        folded = name.lower()
        self._items = [(n, v) for n, v in self._items if n.lower() != folded]

    def get(self, name: str, default: Optional[str] = None) -> Optional[str]:
        folded = name.lower()
        for n, v in self._items:
            if n.lower() == folded:
                return v
        return default

    def get_all(self, name: str) -> List[str]:
        folded = name.lower()
        return [v for n, v in self._items if n.lower() == folded]

    def __contains__(self, name: str) -> bool:
        return self.get(name) is not None

    def __iter__(self) -> Iterator[Tuple[str, str]]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Headers):
            return NotImplemented
        mine = [(n.lower(), v) for n, v in self._items]
        theirs = [(n.lower(), v) for n, v in other._items]
        return mine == theirs

    def encode(self) -> bytes:
        """Wire form: one ``Name: value`` CRLF line per field."""
        return b"".join(f"{n}: {v}\r\n".encode("latin-1")
                        for n, v in self._items)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Headers({self._items!r})"
