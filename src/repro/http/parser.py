"""Incremental HTTP request parsing.

Two layers:

* :func:`split_request` — the framing predicate the N-Server's generic
  Read-Request step needs: given a byte buffer, split one complete
  request (head + Content-Length body) off the front, or report that
  more bytes are required.
* :func:`parse_request` — the Decode-Request step: bytes of exactly one
  request -> :class:`~repro.http.request.HttpRequest`.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.http.headers import Headers
from repro.http.request import BadRequest, HttpRequest

__all__ = ["split_request", "parse_request", "MAX_HEAD_BYTES", "MAX_BODY_BYTES"]

#: guard rails against buffer-exhaustion from garbage input
MAX_HEAD_BYTES = 64 * 1024
MAX_BODY_BYTES = 16 * 1024 * 1024


def split_request(data: bytes) -> Optional[Tuple[bytes, bytes]]:
    """Split one complete request off ``data``.

    Returns ``(request_bytes, remainder)`` or ``None`` when incomplete.
    Raises :class:`BadRequest` when the head or body exceeds the guard
    limits (the caller answers 400/413 and closes).
    """
    end = data.find(b"\r\n\r\n")
    if end == -1:
        # Tolerate bare-LF clients the way Apache does.
        end_lf = data.find(b"\n\n")
        if end_lf == -1:
            if len(data) > MAX_HEAD_BYTES:
                raise BadRequest("request head too large", status=414)
            return None
        head_end = end_lf + 2
    else:
        head_end = end + 4
    head = data[:head_end]
    length = _content_length(head)
    if length > MAX_BODY_BYTES:
        raise BadRequest("request body too large", status=413)
    total = head_end + length
    if len(data) < total:
        return None
    return bytes(data[:total]), bytes(data[total:])


def _content_length(head: bytes) -> int:
    """Strict per RFC 7230 §3.3.2: the value is 1*DIGIT only, and
    duplicate Content-Length headers must agree.  Tolerating ``+5``,
    ``12abc`` or conflicting duplicates (first-wins) is a request
    smuggling vector whenever a proxy in front frames differently."""
    length = None
    for line in head.split(b"\n")[1:]:
        name, _, value = line.partition(b":")
        if name.strip().lower() == b"content-length":
            value = value.strip()
            if not value.isdigit():
                raise BadRequest("malformed Content-Length")
            n = int(value)
            if length is not None and n != length:
                raise BadRequest("conflicting Content-Length")
            length = n
    return 0 if length is None else length


def parse_request(raw: bytes) -> HttpRequest:
    """Parse exactly one request's bytes into an :class:`HttpRequest`.

    Raises :class:`BadRequest` on malformed input.  The request is *not*
    validated against protocol rules here — call
    :meth:`HttpRequest.validate` for that, so servers can choose their
    strictness.
    """
    sep = b"\r\n\r\n" if b"\r\n\r\n" in raw else b"\n\n"
    head, _, body = raw.partition(sep)
    # Framing normally rejects malformed Content-Length before this
    # point; re-checking here keeps the 400 even when a framing layer
    # swallowed the error and passed the raw buffer through.
    _content_length(head)
    lines = head.replace(b"\r\n", b"\n").split(b"\n")
    if not lines or not lines[0].strip():
        raise BadRequest("empty request line")
    parts = lines[0].split()
    if len(parts) != 3:
        raise BadRequest(f"malformed request line {lines[0][:80]!r}")
    try:
        method = parts[0].decode("ascii")
        target = parts[1].decode("ascii")
        version = parts[2].decode("ascii")
    except UnicodeDecodeError:
        raise BadRequest("non-ASCII request line") from None
    headers = Headers()
    for line in lines[1:]:
        if not line.strip():
            continue
        name, colon, value = line.partition(b":")
        if not colon or not name.strip():
            raise BadRequest(f"malformed header line {line[:80]!r}")
        try:
            headers.add(name.strip().decode("latin-1"),
                        value.strip().decode("latin-1"))
        except UnicodeDecodeError:  # pragma: no cover - latin-1 total
            raise BadRequest("undecodable header") from None
    return HttpRequest(method=method.upper(), target=target,
                       version=version.upper(), headers=headers, body=body)
