"""HTTP status codes and reason phrases (the subset a static-content
server needs, per RFC 2616 — the HTTP/1.1 revision current when the
paper was written)."""

from __future__ import annotations

__all__ = ["REASONS", "reason_phrase"]

REASONS = {
    100: "Continue",
    200: "OK",
    201: "Created",
    204: "No Content",
    206: "Partial Content",
    301: "Moved Permanently",
    302: "Found",
    304: "Not Modified",
    400: "Bad Request",
    401: "Unauthorized",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    411: "Length Required",
    413: "Request Entity Too Large",
    414: "Request-URI Too Long",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
    505: "HTTP Version Not Supported",
}


def reason_phrase(code: int) -> str:
    """Reason phrase for ``code`` (generic fallback for unknown codes)."""
    return REASONS.get(code, "Unknown")
