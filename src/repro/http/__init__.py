"""HTTP protocol library.

Plays the role of COPS-HTTP's hand-written "HTTP protocol code"
(Table 4: 10 classes, 449 NCSS): request/response models, an
incremental parser providing the framing hook the generated
Read-Request step needs, status codes and MIME types.
"""

from repro.http.headers import Headers
from repro.http.mime import DEFAULT_TYPE, MIME_TYPES, guess_type
from repro.http.parser import (
    MAX_BODY_BYTES,
    MAX_HEAD_BYTES,
    parse_request,
    split_request,
)
from repro.http.request import BadRequest, HttpRequest
from repro.http.response import HttpResponse, error_response
from repro.http.status import REASONS, reason_phrase

__all__ = [
    "BadRequest",
    "DEFAULT_TYPE",
    "Headers",
    "HttpRequest",
    "HttpResponse",
    "MAX_BODY_BYTES",
    "MAX_HEAD_BYTES",
    "MIME_TYPES",
    "REASONS",
    "error_response",
    "guess_type",
    "parse_request",
    "reason_phrase",
    "split_request",
]
