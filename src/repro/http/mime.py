"""Extension -> MIME type mapping for static content serving."""

from __future__ import annotations

import os

__all__ = ["MIME_TYPES", "DEFAULT_TYPE", "guess_type"]

DEFAULT_TYPE = "application/octet-stream"

MIME_TYPES = {
    ".html": "text/html",
    ".htm": "text/html",
    ".txt": "text/plain",
    ".css": "text/css",
    ".js": "application/javascript",
    ".json": "application/json",
    ".xml": "text/xml",
    ".gif": "image/gif",
    ".jpg": "image/jpeg",
    ".jpeg": "image/jpeg",
    ".png": "image/png",
    ".ico": "image/x-icon",
    ".svg": "image/svg+xml",
    ".pdf": "application/pdf",
    ".zip": "application/zip",
    ".gz": "application/gzip",
    ".tar": "application/x-tar",
    ".mp3": "audio/mpeg",
    ".wav": "audio/x-wav",
    ".mp4": "video/mp4",
    ".class": "application/java-vm",
}


def guess_type(path: str) -> str:
    """MIME type for ``path`` by extension (case-insensitive)."""
    _, ext = os.path.splitext(path)
    return MIME_TYPES.get(ext.lower(), DEFAULT_TYPE)
