"""Service fairness: the Jain fairness index (Fig 4).

The paper uses Jain, Chiu & Hawe's index over per-client response
counts:

    f(x) = (sum x_i)^2 / (N * sum x_i^2)

1.0 when all clients receive equal service; k/N when k clients receive
equal service and the rest none.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = ["jain_index"]


def jain_index(values: Iterable[float]) -> float:
    """Jain fairness index of ``values`` (non-negative allocations)."""
    x = np.asarray(list(values), dtype=float)
    if x.size == 0:
        return 1.0
    if np.any(x < 0):
        raise ValueError("allocations must be non-negative")
    denom = x.size * float(np.sum(x * x))
    if denom == 0.0:
        return 1.0  # everyone equally got nothing
    return float(np.sum(x)) ** 2 / denom
