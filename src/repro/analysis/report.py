"""Plain-text table/series rendering for the benchmark harness.

The benches print the same rows/series the paper's tables and figures
report; these helpers keep that output consistent.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["render_table", "render_series"]


def render_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: str = "") -> str:
    """Fixed-width table with a header rule."""
    rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    head = "  ".join(f"{h:<{w}}" for h, w in zip(headers, widths))
    lines.append(head)
    lines.append("-" * len(head))
    for row in rows:
        lines.append("  ".join(f"{c:<{w}}" for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(x_label: str, xs: Sequence, series: dict,
                  title: str = "", fmt: str = "{:.1f}") -> str:
    """A figure as text: one column per named series."""
    headers = [x_label] + list(series)
    rows: List[List[str]] = []
    for i, x in enumerate(xs):
        row = [str(x)]
        for name in series:
            value = series[name][i]
            row.append(fmt.format(value) if value is not None else "-")
        rows.append(row)
    return render_table(headers, rows, title=title)
