"""Summary statistics helpers for the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

__all__ = ["Summary", "summarize"]


@dataclass
class Summary:
    count: int
    mean: float
    median: float
    p90: float
    p99: float
    minimum: float
    maximum: float

    def __str__(self) -> str:  # pragma: no cover - formatting aid
        return (f"n={self.count} mean={self.mean:.4f} med={self.median:.4f} "
                f"p90={self.p90:.4f} p99={self.p99:.4f}")


def summarize(values: Iterable[float]) -> Optional[Summary]:
    """Summary of ``values``; None when empty."""
    x = np.asarray(list(values), dtype=float)
    if x.size == 0:
        return None
    return Summary(
        count=int(x.size),
        mean=float(np.mean(x)),
        median=float(np.median(x)),
        p90=float(np.percentile(x, 90)),
        p99=float(np.percentile(x, 99)),
        minimum=float(np.min(x)),
        maximum=float(np.max(x)),
    )
