"""Result analysis: Jain fairness (Fig 4), summary statistics and table
rendering for the benchmark harness."""

from repro.analysis.fairness import jain_index
from repro.analysis.report import render_series, render_table
from repro.analysis.stats import Summary, summarize

__all__ = ["Summary", "jain_index", "render_series", "render_table",
           "summarize"]
