"""Core cache model: entries, statistics, and the policy interface.

The N-Server template's O6 option ("File cache") selects one of five
replacement policies — LRU, LFU, LRU-MIN, LRU-Threshold, Hyper-G — or a
user-supplied *custom* policy hook (section IV of the paper).  The cache
itself is policy-agnostic: a byte-budgeted map from keys to payloads
that consults a :class:`ReplacementPolicy` for admission and eviction.

Payloads are opaque.  The real-socket servers store file bytes; the
simulation testbed stores size-only placeholders so a 200 MB SpecWeb99
file set costs no real memory.
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Optional

__all__ = ["CacheEntry", "CacheStats", "ReplacementPolicy", "Cache"]


@dataclass
class CacheEntry:
    """One cached object plus the bookkeeping every policy may need."""

    key: Any
    size: int
    payload: Any = None
    #: logical timestamp of the most recent access (monotone counter)
    last_access: int = 0
    #: logical timestamp of insertion
    inserted_at: int = 0
    #: number of hits since insertion (insertion itself counts as 1)
    frequency: int = 1


@dataclass
class CacheStats:
    """Hit/miss/eviction counters; ``hit_rate`` is the paper's profiling stat."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    rejections: int = 0
    bytes_evicted: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "rejections": self.rejections,
            "hit_rate": self.hit_rate,
        }


class ReplacementPolicy(ABC):
    """Strategy consulted by :class:`Cache` for admission and eviction."""

    #: human-readable policy name (matches Table 1's O6 legal values)
    name: str = "abstract"

    def admits(self, entry: CacheEntry, cache: "Cache") -> bool:
        """May ``entry`` be cached at all?  (LRU-Threshold says no to
        documents above its size threshold.)  Default: anything that fits
        in an empty cache."""
        return entry.size <= cache.capacity

    @abstractmethod
    def select_victims(self, cache: "Cache", needed: int) -> Iterable[Any]:
        """Yield keys to evict, in order, until ``needed`` bytes could be
        freed.  The cache stops consuming once enough space is free, so
        policies may over-yield."""

    def on_access(self, entry: CacheEntry, cache: "Cache") -> None:
        """Hook called on every hit (after bookkeeping is updated)."""

    def on_insert(self, entry: CacheEntry, cache: "Cache") -> None:
        """Hook called after an entry is inserted."""

    def on_evict(self, entry: CacheEntry, cache: "Cache") -> None:
        """Hook called after an entry is evicted."""


class Cache:
    """Byte-budgeted object cache with pluggable replacement.

    >>> from repro.cache import Cache, LRUPolicy
    >>> c = Cache(capacity=100, policy=LRUPolicy())
    >>> c.put("/index.html", 60, b"...")
    True
    >>> c.get("/index.html") is not None
    True
    """

    def __init__(self, capacity: int, policy: ReplacementPolicy):
        if capacity <= 0:
            raise ValueError("cache capacity must be positive")
        self.capacity = int(capacity)
        self.policy = policy
        self.stats = CacheStats()
        self._entries: Dict[Any, CacheEntry] = {}
        self._used = 0
        self._clock = itertools.count(1)

    # -- introspection ---------------------------------------------------
    @property
    def used(self) -> int:
        """Bytes currently cached."""
        return self._used

    @property
    def free(self) -> int:
        return self.capacity - self._used

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Any) -> bool:
        return key in self._entries

    def entries(self) -> Iterable[CacheEntry]:
        """Live view of all entries (policies iterate this to pick victims)."""
        return self._entries.values()

    def peek(self, key: Any) -> Optional[CacheEntry]:
        """Look up without touching recency/frequency bookkeeping."""
        return self._entries.get(key)

    # -- operations --------------------------------------------------------
    def get(self, key: Any) -> Optional[CacheEntry]:
        """Return the entry for ``key`` (updating bookkeeping) or ``None``."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        entry.last_access = next(self._clock)
        entry.frequency += 1
        self.policy.on_access(entry, self)
        return entry

    def put(self, key: Any, size: int, payload: Any = None) -> bool:
        """Insert (or replace) ``key``.  Returns False when the policy
        refuses admission or the object cannot fit even after evictions."""
        if size < 0:
            raise ValueError("negative size")
        if key in self._entries:
            self.invalidate(key)
        now = next(self._clock)
        entry = CacheEntry(key=key, size=size, payload=payload,
                           last_access=now, inserted_at=now)
        if not self.policy.admits(entry, self):
            self.stats.rejections += 1
            return False
        if not self._make_room(size):
            self.stats.rejections += 1
            return False
        self._entries[key] = entry
        self._used += size
        self.stats.insertions += 1
        self.policy.on_insert(entry, self)
        return True

    def invalidate(self, key: Any) -> bool:
        """Drop ``key`` without counting it as an eviction (e.g. file
        modified on disk).  Returns True when the key was present."""
        entry = self._entries.pop(key, None)
        if entry is None:
            return False
        self._used -= entry.size
        return True

    def clear(self) -> None:
        self._entries.clear()
        self._used = 0

    # -- internals ---------------------------------------------------------
    def _make_room(self, needed: int) -> bool:
        if needed > self.capacity:
            return False
        if self.free >= needed:
            return True
        for key in list(self.policy.select_victims(self, needed - self.free)):
            entry = self._entries.pop(key, None)
            if entry is None:
                continue
            self._used -= entry.size
            self.stats.evictions += 1
            self.stats.bytes_evicted += entry.size
            self.policy.on_evict(entry, self)
            if self.free >= needed:
                return True
        return self.free >= needed
