"""File caching subsystem (N-Server option O6).

Provides the byte-budgeted :class:`Cache` with the paper's five
replacement policies (LRU, LFU, LRU-MIN, LRU-Threshold, Hyper-G) plus
the custom-policy hook, and the read-through :class:`FileCache` used by
generated servers.
"""

from repro.cache.base import Cache, CacheEntry, CacheStats, ReplacementPolicy
from repro.cache.file_cache import CachedFile, FileCache, FileNotCacheable
from repro.cache.policies import (
    POLICIES,
    CustomPolicy,
    HyperGPolicy,
    LFUPolicy,
    LRUMinPolicy,
    LRUPolicy,
    LRUThresholdPolicy,
    make_policy,
)

__all__ = [
    "Cache",
    "CacheEntry",
    "CacheStats",
    "CachedFile",
    "CustomPolicy",
    "FileCache",
    "FileNotCacheable",
    "HyperGPolicy",
    "LFUPolicy",
    "LRUMinPolicy",
    "LRUPolicy",
    "LRUThresholdPolicy",
    "POLICIES",
    "ReplacementPolicy",
    "make_policy",
]
