"""File cache: the cache front-end generated servers actually call.

Wraps :class:`repro.cache.base.Cache` with a *loader* so a miss fetches
the file through whatever backing store the deployment uses:

* real servers pass a loader that reads from disk;
* the simulation testbed passes a loader that consults the simulated
  disk model (returning sizes only).

This mirrors the paper's transparent caching: "programmers have no extra
development effort" — the generated Read-file path goes through
``get_file`` and the cache is invisible to hook code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.cache.base import Cache, ReplacementPolicy
from repro.cache.policies import make_policy

__all__ = ["FileCache", "FileNotCacheable", "CachedFile"]


class FileNotCacheable(Exception):
    """Raised by loaders to signal a file exists but must not be cached."""


@dataclass
class CachedFile:
    """What ``get_file`` returns: payload plus where it came from."""

    path: str
    size: int
    payload: Any
    from_cache: bool


class FileCache:
    """Transparent read-through file cache.

    ``loader(path)`` must return ``(size, payload)`` or raise
    ``FileNotFoundError`` / :class:`FileNotCacheable`.
    """

    def __init__(
        self,
        capacity: int,
        policy: ReplacementPolicy | str = "LRU",
        loader: Optional[Callable[[str], tuple]] = None,
        **policy_kwargs,
    ):
        if isinstance(policy, str):
            policy = make_policy(policy, **policy_kwargs)
        self.cache = Cache(capacity=capacity, policy=policy)
        self.loader = loader

    @property
    def stats(self):
        return self.cache.stats

    @property
    def policy_name(self) -> str:
        return self.cache.policy.name

    def get_file(self, path: str) -> CachedFile:
        """Return the file at ``path``, from cache when possible.

        Raises ``FileNotFoundError`` when the loader does.
        """
        entry = self.cache.get(path)
        if entry is not None:
            return CachedFile(path=path, size=entry.size,
                              payload=entry.payload, from_cache=True)
        if self.loader is None:
            raise FileNotFoundError(path)
        try:
            size, payload = self.loader(path)
        except FileNotCacheable as exc:
            size, payload = exc.args if len(exc.args) == 2 else (0, None)
            return CachedFile(path=path, size=size, payload=payload,
                              from_cache=False)
        self.cache.put(path, size, payload)
        return CachedFile(path=path, size=size, payload=payload,
                          from_cache=False)

    def contains(self, path: str) -> bool:
        return path in self.cache

    def invalidate(self, path: str) -> bool:
        """Drop a (possibly stale) file from the cache."""
        return self.cache.invalidate(path)

    @classmethod
    def for_directory(cls, root: str, capacity: int,
                      policy: ReplacementPolicy | str = "LRU",
                      **policy_kwargs) -> "FileCache":
        """Convenience: a cache that reads real files under ``root``.

        Paths are interpreted relative to ``root``; ``..`` traversal is
        rejected (same check the generated HTTP servers apply).
        """
        import os

        root = os.path.abspath(root)

        def loader(path: str):
            full = os.path.abspath(os.path.join(root, path.lstrip("/")))
            if not full.startswith(root + os.sep) and full != root:
                raise FileNotFoundError(path)
            with open(full, "rb") as fh:
                data = fh.read()
            return len(data), data

        return cls(capacity=capacity, policy=policy, loader=loader,
                   **policy_kwargs)
