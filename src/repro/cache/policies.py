"""The five replacement policies of the N-Server's O6 option, plus the
custom-policy hook.

References (as cited by the paper):

* LRU-MIN and LRU-Threshold — Abrams, Standridge, Abdulla, Williams, Fox,
  *Caching Proxies: Limitation and Potentials* (Virginia Tech TR-95-12).
* Hyper-G — Williams et al., *Removal Policies in Network Caches for
  World Wide Web Documents* (SIGCOMM CCR 26(4), 1996): evict by lowest
  frequency, break ties by least recent use, then by largest size.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator

from repro.cache.base import Cache, CacheEntry, ReplacementPolicy

__all__ = [
    "LRUPolicy",
    "LFUPolicy",
    "LRUMinPolicy",
    "LRUThresholdPolicy",
    "HyperGPolicy",
    "CustomPolicy",
    "POLICIES",
    "make_policy",
]


class LRUPolicy(ReplacementPolicy):
    """Evict the least recently used entry first."""

    name = "LRU"

    def select_victims(self, cache: Cache, needed: int) -> Iterator[Any]:
        for entry in sorted(cache.entries(), key=lambda e: e.last_access):
            yield entry.key


class LFUPolicy(ReplacementPolicy):
    """Evict the least frequently used entry first; ties broken by LRU."""

    name = "LFU"

    def select_victims(self, cache: Cache, needed: int) -> Iterator[Any]:
        for entry in sorted(cache.entries(),
                            key=lambda e: (e.frequency, e.last_access)):
            yield entry.key


class LRUMinPolicy(ReplacementPolicy):
    """LRU-MIN: prefer evicting documents at least as large as the space
    being requested, falling back to successively halved size classes.

    The intent (Abrams et al.) is to minimise the *number* of documents
    evicted: evicting one big file beats evicting many small ones.
    """

    name = "LRU-MIN"

    def select_victims(self, cache: Cache, needed: int) -> Iterator[Any]:
        remaining = needed
        threshold = max(needed, 1)
        yielded: set = set()
        while remaining > 0 and len(yielded) < len(cache):
            bucket = [e for e in cache.entries()
                      if e.size >= threshold and e.key not in yielded]
            bucket.sort(key=lambda e: e.last_access)
            for entry in bucket:
                yielded.add(entry.key)
                remaining -= entry.size
                yield entry.key
                if remaining <= 0:
                    return
            if threshold <= 1:
                break
            threshold //= 2
        # Final fallback: plain LRU over anything left.
        for entry in sorted(cache.entries(), key=lambda e: e.last_access):
            if entry.key not in yielded:
                yield entry.key


class LRUThresholdPolicy(ReplacementPolicy):
    """LRU with an admission threshold: documents larger than
    ``threshold`` bytes are never cached (they would push out too many
    small popular documents)."""

    name = "LRU-Threshold"

    def __init__(self, threshold: int):
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.threshold = int(threshold)

    def admits(self, entry: CacheEntry, cache: Cache) -> bool:
        return entry.size <= self.threshold and super().admits(entry, cache)

    def select_victims(self, cache: Cache, needed: int) -> Iterator[Any]:
        for entry in sorted(cache.entries(), key=lambda e: e.last_access):
            yield entry.key


class HyperGPolicy(ReplacementPolicy):
    """Hyper-G: evict lowest frequency first, then least recently used,
    then largest — a refinement of LFU from the Hyper-G server."""

    name = "Hyper-G"

    def select_victims(self, cache: Cache, needed: int) -> Iterator[Any]:
        for entry in sorted(cache.entries(),
                            key=lambda e: (e.frequency, e.last_access, -e.size)):
            yield entry.key


class CustomPolicy(ReplacementPolicy):
    """The paper's hook mechanism: "a programmer can implement a different
    cache replacement policy by simply adding code to a hook method".

    ``victim_hook(entries, needed)`` receives a list of live
    :class:`CacheEntry` objects and must return an iterable of keys to
    evict, in order.  ``admit_hook`` may veto caching an entry.
    """

    name = "Custom"

    def __init__(
        self,
        victim_hook: Callable[[list, int], Iterable[Any]],
        admit_hook: Callable[[CacheEntry], bool] | None = None,
    ):
        self.victim_hook = victim_hook
        self.admit_hook = admit_hook

    def admits(self, entry: CacheEntry, cache: Cache) -> bool:
        if not super().admits(entry, cache):
            return False
        return self.admit_hook(entry) if self.admit_hook else True

    def select_victims(self, cache: Cache, needed: int) -> Iterable[Any]:
        return self.victim_hook(list(cache.entries()), needed)


#: Table 1, option O6 legal values -> policy factory.  ``LRU-Threshold``
#: needs a threshold; the default matches a SpecWeb99-scale 512 KB cap.
POLICIES = {
    "LRU": LRUPolicy,
    "LFU": LFUPolicy,
    "LRU-MIN": LRUMinPolicy,
    "LRU-Threshold": lambda threshold=512 * 1024: LRUThresholdPolicy(threshold),
    "Hyper-G": HyperGPolicy,
}


def make_policy(name: str, **kwargs) -> ReplacementPolicy:
    """Instantiate a policy by its Table-1 name (case-sensitive)."""
    try:
        factory = POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown cache policy {name!r}; legal values: {sorted(POLICIES)}"
        ) from None
    return factory(**kwargs)
