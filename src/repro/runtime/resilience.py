"""Resilience runtime (N-Server option O13, "Fault tolerance").

Three cooperating mechanisms that make a generated server degrade
gracefully instead of wedging under hostile conditions:

* :class:`DeadlineMonitor` — per-stage deadlines on every connection.
  A peer that trickles a request byte-by-byte (slowloris), a handler
  that never completes, or a receiver that stops reading its reply all
  hold resources forever; the monitor closes the connection and records
  *which* stage blew the deadline (``header`` / ``request`` / ``write``).
* :class:`WorkerSupervisor` — watches an Event Processor pool for dead
  worker threads (a ``BaseException`` escaping the handler kills one)
  and replaces them, so the pool never silently shrinks to zero.
* :class:`EventQuarantine` — an ``error_hook`` that retries a failing
  event a bounded number of times and then quarantines it, so a poison
  event cannot re-kill fresh workers forever.

Plus :func:`is_transient_accept_error`, the classification the hardened
Acceptor uses to decide between retrying ``accept()`` immediately
(``ECONNABORTED``, ``EINTR``) and backing off to shed load (``EMFILE``
and friends — descriptor/buffer exhaustion does not clear by retrying).

Everything here follows the option-guarded style of the rest of the
runtime: null-object metrics/log defaults, zero references from any code
path that did not opt in.
"""

from __future__ import annotations

import errno
import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro.lint.locks import access, make_lock
from repro.obs.flight import GLOBAL as GLOBAL_FLIGHT
from repro.obs.registry import NULL_METRIC
from repro.runtime.tracing import NULL_LOG

__all__ = [
    "DeadlinePolicy",
    "DeadlineMonitor",
    "WorkerSupervisor",
    "EventQuarantine",
    "is_transient_accept_error",
]


# -- accept-loop error classification ----------------------------------------

#: transient per-connection failures: the aborted connection is consumed
#: from the backlog (or the call was merely interrupted), so retrying the
#: accept loop immediately is correct and cannot spin.
_TRANSIENT_ACCEPT_ERRNOS = frozenset(
    e for e in (
        getattr(errno, "ECONNABORTED", None),
        getattr(errno, "EINTR", None),
        getattr(errno, "EPROTO", None),
    ) if e is not None)


def is_transient_accept_error(exc: OSError) -> bool:
    """True when the accept loop should just try again; False for
    resource exhaustion (``EMFILE``/``ENFILE``/``ENOBUFS``/``ENOMEM``)
    and anything unrecognised, where the right move is to back off and
    shed — the kernel backlog keeps the connections queued meanwhile."""
    return getattr(exc, "errno", None) in _TRANSIENT_ACCEPT_ERRNOS


# -- per-stage connection deadlines -------------------------------------------


@dataclass
class DeadlinePolicy:
    """Per-stage timeouts in seconds; ``None`` disables a stage.

    * ``header`` — a partial request has been buffered (first byte seen,
      no complete request framed yet) for too long: slow-peer trickle.
    * ``request`` — the oldest in-flight request (accepted by the
      pipeline, reply not yet produced) is overdue: a stuck handler or a
      lost asynchronous completion.
    * ``write`` — reply bytes are buffered with no send progress: the
      peer stopped reading.
    """

    header: Optional[float] = 5.0
    request: Optional[float] = 30.0
    write: Optional[float] = 30.0


class DeadlineMonitor:
    """Closes connections that blew a per-stage deadline.

    Two operating modes share one violation check:

    * **watched** — the owning server calls :meth:`watch` per accepted
      connection and :meth:`unwatch` at teardown.  Each watched
      connection carries one lazily re-armed timer on a hashed
      :class:`~repro.runtime.timerwheel.TimerWheel`; the background
      thread's :meth:`tick` inspects only fired entries (O(fired) per
      pass, O(1) re-arm/cancel), re-arming at the earliest active
      stage deadline, or at a parked recheck period while the
      connection is idle.
    * **legacy scan** — callers that never ``watch`` (the simulator,
      manual tests with an injected clock) still get the periodic
      full :meth:`scan` over ``connections``.

    ``connections`` is a zero-argument callable returning the current
    connection list (:meth:`Container.connections` fits).  Violations
    are tallied per stage in :attr:`reasons` and on ``counter``.
    """

    def __init__(
        self,
        connections: Callable[[], list],
        policy: DeadlinePolicy,
        clock=time.monotonic,
        interval: float = 0.1,
        counter=NULL_METRIC,
        log=NULL_LOG,
        wheel=None,
    ):
        self.connections = connections
        self.policy = policy
        self.clock = clock
        self.interval = interval
        self.counter = counter
        self.log = log
        self.reasons = {"header": 0, "request": 0, "write": 0}
        self.timed_out = 0
        if wheel is None:
            from repro.runtime.timerwheel import TimerWheel
            wheel = TimerWheel(tick=max(interval / 2.0, 0.01), slots=512,
                               clock=clock)
        self.wheel = wheel
        #: while no stage is active the per-connection timer parks at
        #: this recheck period; a stage starting right after a parked
        #: check is still caught within deadline + one period
        enabled = [t for t in (policy.header, policy.request, policy.write)
                   if t is not None]
        self.park_interval = max(interval,
                                 min(enabled) / 4.0 if enabled else interval)
        self._watch_lock = threading.Lock()
        self._watched: dict = {}   # id(conn) -> conn
        self._tokens: dict = {}    # id(conn) -> wheel token
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- scanning -----------------------------------------------------------
    def _violation(self, conn, now: float) -> Optional[str]:
        """The stage ``conn`` has blown, or None within deadlines."""
        p = self.policy
        if p.header is not None:
            started = getattr(conn, "read_started", None)
            if started is not None and now - started > p.header:
                return "header"
        if p.request is not None:
            oldest = conn.oldest_pending_started()
            if oldest is not None and now - oldest > p.request:
                return "request"
        if p.write is not None:
            blocked = getattr(conn, "write_blocked_since", None)
            if blocked is not None and now - blocked > p.write:
                return "write"
        return None

    def _next_check(self, conn, now: float) -> float:
        """Seconds until ``conn`` next needs a look: the earliest active
        stage deadline, or the parked recheck period while idle."""
        p = self.policy
        soonest = None
        for limit, started in (
            (p.header, getattr(conn, "read_started", None)),
            (p.request, conn.oldest_pending_started()),
            (p.write, getattr(conn, "write_blocked_since", None)),
        ):
            if limit is None or started is None:
                continue
            due = started + limit - now
            if soonest is None or due < soonest:
                soonest = due
        if soonest is None:
            return self.park_interval
        # Exact arming is safe: stage stamps only ever move later, so a
        # timer armed for the current stamp can never overshoot a future
        # one — it fires, finds the newer stamp, and re-arms for it.
        return max(soonest, self.wheel.tick)

    # -- per-connection timers ----------------------------------------------
    def watch(self, conn) -> None:
        """Start monitoring one connection (O(1))."""
        with self._watch_lock:
            key = id(conn)
            self._watched[key] = conn
            old = self._tokens.pop(key, None)
            if old is not None:
                self.wheel.cancel(old)
            self._tokens[key] = self.wheel.schedule(
                self._next_check(conn, self.clock()), key)

    def unwatch(self, conn) -> None:
        """Stop monitoring (O(1), idempotent)."""
        with self._watch_lock:
            key = id(conn)
            self._watched.pop(key, None)
            token = self._tokens.pop(key, None)
            if token is not None:
                self.wheel.cancel(token)

    @property
    def watched_count(self) -> int:
        with self._watch_lock:
            return len(self._watched)

    def tick(self) -> int:
        """Check fired timers only; returns how many connections were
        closed.  Healthy connections whose timer fired are re-armed at
        their next interesting moment."""
        fired = self.wheel.advance()
        if not fired:
            return 0
        now = self.clock()
        victims = []
        with self._watch_lock:
            for _deadline, token, key in fired:
                if self._tokens.get(key) != token:
                    continue  # re-armed or unwatched since firing
                conn = self._watched.get(key)
                if conn is None or conn.closed:
                    self._watched.pop(key, None)
                    self._tokens.pop(key, None)
                    continue
                reason = self._violation(conn, now)
                if reason is not None:
                    self._watched.pop(key, None)
                    self._tokens.pop(key, None)
                    victims.append((conn, reason))
                else:
                    self._tokens[key] = self.wheel.schedule(
                        self._next_check(conn, now), key)
        for conn, reason in victims:
            self.reasons[reason] += 1
            self.timed_out += 1
            self.counter.inc()
            self.log.info(
                f"deadline ({reason}) exceeded on {conn.handle.name}; closing")
            conn.close()
        return len(victims)

    def scan(self) -> int:
        """One full pass over ``connections``; returns how many were
        closed.  The legacy path for drivers that never :meth:`watch`."""
        now = self.clock()
        closed = 0
        for conn in self.connections():
            if conn.closed:
                continue
            reason = self._violation(conn, now)
            if reason is None:
                continue
            self.reasons[reason] += 1
            self.timed_out += 1
            self.counter.inc()
            self.log.info(
                f"deadline ({reason}) exceeded on {conn.handle.name}; closing")
            conn.close()
            closed += 1
        return closed

    # -- background thread ----------------------------------------------------
    def start(self) -> None:
        """Start the scanning thread (idempotent)."""
        if self._thread is not None:
            return
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="deadline-monitor")
        self._thread.start()

    def stop(self) -> None:
        """Stop and join the scanning thread."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    def _run(self) -> None:
        """Monitor loop: wheel :meth:`tick` per interval, falling back
        to the legacy full :meth:`scan` while nothing is watched (a
        driver that never wired :meth:`watch` still gets coverage; with
        watchers, the scan is skipped and each pass is O(fired))."""
        while not self._stop.wait(self.interval):
            self.tick()
            with self._watch_lock:
                unwired = not self._tokens
            if unwired:
                self.scan()


# -- worker supervision -------------------------------------------------------


class WorkerSupervisor:
    """Detects dead Event Processor workers and replaces them.

    A handler that raises an ``Exception`` is survived in place; only a
    ``BaseException`` kills a worker thread.  The supervisor prunes dead
    threads from the pool and spawns replacements so the pool holds its
    configured size.
    """

    def __init__(self, processor, interval: float = 0.05,
                 counter=NULL_METRIC, log=NULL_LOG, flight=None):
        self.processor = processor
        self.interval = interval
        self.counter = counter
        self.log = log
        #: flight recorder receiving worker-death events (and the dump
        #: trigger — a dead worker is exactly a post-mortem moment)
        self.flight = flight if flight is not None else GLOBAL_FLIGHT
        self.restarts = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def check(self) -> int:
        """One supervision pass; returns how many workers were replaced."""
        dead = self.processor.prune_dead()
        if dead:
            self.flight.record(
                "worker-death",
                f"{self.processor.name} dead={dead} "
                f"last={self.processor.last_death!r}")
            dump = self.flight.snapshot("worker-death")
            self.log.error(f"flight recorder dumped to {dump}")
        for _ in range(dead):
            try:
                self.processor.add_thread()
            except RuntimeError:  # pool already stopped; nothing to restore
                return 0
            self.restarts += 1
            self.counter.inc()
            self.log.error(
                f"{self.processor.name} worker died "
                f"({self.processor.last_death!r}); replaced")
        return dead

    def start(self) -> None:
        """Start the supervision thread (idempotent)."""
        if self._thread is not None:
            return
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="worker-supervisor")
        self._thread.start()

    def stop(self) -> None:
        """Stop and join the supervision thread."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    def _run(self) -> None:
        """Supervision loop: one :meth:`check` per interval."""
        while not self._stop.wait(self.interval):
            self.check()


# -- poison-event quarantine ---------------------------------------------------


class EventQuarantine:
    """Retry-then-quarantine ``error_hook`` for an Event Processor.

    Each failing event is resubmitted up to ``max_retries`` times; after
    that it lands in :attr:`quarantined` instead of being retried — a
    poison event must not keep re-killing the pool.  Attempts are keyed
    by ``event_id`` because :class:`~repro.runtime.events.Event` uses
    ``__slots__``; the key table is pruned so it cannot grow unbounded.

    Use :meth:`attach` to install on a processor: it chains any existing
    ``error_hook`` (e.g. the O10=Debug ``trace_error``) as ``fallback``.
    """

    _MAX_TRACKED = 1024

    def __init__(self, max_retries: int = 2,
                 resubmit: Optional[Callable] = None,
                 counter=NULL_METRIC, log=NULL_LOG,
                 fallback: Optional[Callable] = None, flight=None):
        self.max_retries = max_retries
        self.resubmit = resubmit
        self.counter = counter
        self.log = log
        self.fallback = fallback
        #: flight recorder receiving quarantine events and the dump
        self.flight = flight if flight is not None else GLOBAL_FLIGHT
        self.quarantined: list = []
        self.retries = 0
        self._attempts: dict = {}
        self._lock = make_lock("EventQuarantine")

    @classmethod
    def attach(cls, processor, max_retries: int = 2,
               counter=NULL_METRIC, log=NULL_LOG,
               flight=None) -> "EventQuarantine":
        """Install on ``processor``, chaining its prior ``error_hook``."""
        quarantine = cls(max_retries=max_retries, resubmit=processor.submit,
                         counter=counter, log=log,
                         fallback=processor.error_hook, flight=flight)
        processor.error_hook = quarantine
        return quarantine

    def __call__(self, event, exc: BaseException) -> None:
        """Handle one failure: retry within budget, else quarantine."""
        if self.fallback is not None:
            self.fallback(event, exc)
        key = getattr(event, "event_id", id(event))
        # ``retries`` and ``quarantined`` are read by status pages and
        # written by every worker thread whose handler fails; the
        # accounting lives inside the critical section (it used to run
        # after it, racing other failing workers).  The resubmit itself
        # stays outside — it takes the processor's queue lock.
        with self._lock:
            access(self, "_attempts")
            attempts = self._attempts.get(key, 0)
            if attempts < self.max_retries and self.resubmit is not None:
                if len(self._attempts) >= self._MAX_TRACKED:
                    self._attempts.pop(next(iter(self._attempts)))
                self._attempts[key] = attempts + 1
                access(self, "retries")
                self.retries += 1
                retry = True
            else:
                self._attempts.pop(key, None)
                access(self, "quarantined")
                self.quarantined.append((event, exc))
                retry = False
        if retry:
            self.resubmit(event)
            return
        self.counter.inc()
        self.log.error(
            f"event {key} quarantined after "
            f"{self.max_retries} retries: {exc!r}")
        self.flight.record(
            "quarantine", f"event {key}: {exc!r}",
            getattr(getattr(event, "handle", None), "trace_id", 0))
        dump = self.flight.snapshot("quarantine")
        self.log.error(f"flight recorder dumped to {dump}")
