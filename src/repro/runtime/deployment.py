"""Multi-process deployment (option O16): prefork workers on one socket.

Thread-based shards (O14) scale until the GIL; the deployment plane
scales past it the way Apache's prefork MPM and nginx do — N worker
*processes*, each running its own (possibly O14-sharded) reactor, all
accepting from one shared listening socket:

* the :class:`ProcessSupervisor` binds a single ``SO_REUSEPORT`` listen
  socket in the parent and **never closes it** while the deployment is
  up — the accept queue survives any individual worker's death or
  restart, which is what makes rolling restarts drop nothing;
* each worker is a **fresh interpreter** (``python -m
  repro.runtime.deployment --worker``), not a fork: no inherited
  threads, no duplicated locks, no shared flight rings.  The listen
  socket's fd travels to the worker over a Unix-domain control socket
  via ``socket.send_fds`` along with a JSON spec naming a *factory*
  (``"module:callable"``) that builds the worker's server;
* the control socket then carries newline-delimited JSON both ways:
  ``status`` / ``drain`` / ``stop`` requests from the supervisor,
  ``ready`` and id-correlated replies from the worker.  The worker's
  **main thread is its control loop** — request handling runs on the
  reactor's own threads, so a status query is never stuck behind a
  slow request;
* crashes are detected by a monitor thread and respawned within a
  bounded budget (``respawn_limit`` exits per ``respawn_window``
  seconds), so a crash *storm* degrades to fewer workers instead of a
  fork bomb;
* ``SIGHUP`` (or :meth:`ProcessSupervisor.rolling_restart`) replaces
  workers one at a time: spawn the successor, wait until it is
  accepting, then drain the predecessor — at every instant at least
  ``procs`` workers are accepting, so no connection is refused and no
  in-flight request is cut;
* cross-process observability: the supervisor serves an aggregation
  endpoint on a Unix *stats socket* (path exported to workers as
  ``$REPRO_STATS_SOCKET``); a worker answering ``/server-status``
  calls :func:`cluster_status_fields`, which asks the supervisor,
  which polls every worker's O11 registry over the control channels
  and merges them with
  :func:`repro.obs.exposition.clustered_status_fields`.  Flight dumps
  are already namespaced per PID, and trace ids carry a PID component
  (:func:`repro.obs.tracing.next_trace_id`), so evidence from
  different workers never collides.

The generated frameworks reach this module through two factories:
:func:`generated_worker` rebuilds a generated package's ``Worker``
inside the child process from the :func:`generated_worker_args` spec,
and :func:`reactor_worker` does the same for the hand-wired
:class:`~repro.runtime.server.ReactorServer` (the codegen-free path
tests use).
"""

from __future__ import annotations

import importlib
import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lint.locks import access, make_lock, shared
from repro.obs.exposition import clustered_status_fields, status_fields

__all__ = [
    "STATS_SOCKET_ENV",
    "ProcessSupervisor",
    "adopted_listen_socket",
    "cluster_status_fields",
    "generated_worker",
    "generated_worker_args",
    "in_worker_process",
    "reactor_worker",
    "worker_listen_handle",
]

#: environment variable carrying the supervisor's stats-socket path
#: into worker processes (unset = not running under a supervisor)
STATS_SOCKET_ENV = "REPRO_STATS_SOCKET"

#: the listening socket this process adopted from its supervisor;
#: module-level *runtime state*, set once by ``worker_main`` before any
#: server is constructed and read by :func:`worker_listen_handle`
_ADOPTED_LISTEN: Optional[socket.socket] = None


# -- worker-process runtime state ---------------------------------------------


def in_worker_process() -> bool:
    """True when this process is an O16 worker (it adopted a socket)."""
    return _ADOPTED_LISTEN is not None


def adopted_listen_socket() -> Optional[socket.socket]:
    """The shared listening socket this worker received, or None."""
    return _ADOPTED_LISTEN


def worker_listen_handle(configuration, handle_cls: Optional[type] = None):
    """The listen handle for a server component inside an O16 worker.

    Adopts the supervisor-passed socket when one was received; outside
    a supervisor (a worker build instantiated directly, e.g. by the
    conformance harness) it binds its own ``SO_REUSEPORT`` socket so
    the build still serves.  ``configuration`` supplies host, port and
    backlog exactly as the single-process listen expression does.
    """
    from repro.runtime.handles import ListenHandle
    backlog = getattr(configuration, "backlog", 128)
    adopted = adopted_listen_socket()
    if adopted is not None:
        return ListenHandle(configuration.host, configuration.port,
                            backlog, handle_cls=handle_cls, sock=adopted)
    return ListenHandle(configuration.host, configuration.port,
                        backlog, handle_cls=handle_cls, reuse_port=True)


def _resolve(path: str):
    """Resolve a ``"module:attribute"`` dotted path to the object."""
    module_name, _, attr = path.partition(":")
    if not module_name or not attr:
        raise ValueError(f"factory path must be 'module:attr', not {path!r}")
    target = importlib.import_module(module_name)
    for part in attr.split("."):
        target = getattr(target, part)
    return target


# -- the control protocol -----------------------------------------------------


def _send_json(sock: socket.socket, message: dict) -> None:
    """One newline-terminated JSON message onto a control socket."""
    sock.sendall(json.dumps(message).encode("utf-8") + b"\n")


def _read_line(sock: socket.socket, buf: bytearray) -> Optional[bytes]:
    """Blocking read of one newline-terminated record; None on EOF."""
    while b"\n" not in buf:
        try:
            chunk = sock.recv(65536)
        except OSError:
            return None
        if not chunk:
            return None
        buf += chunk
    line, _, rest = bytes(buf).partition(b"\n")
    del buf[:]
    buf += rest
    return line


# -- the supervisor -----------------------------------------------------------


class _Worker:
    """Supervisor-side record of one worker process.

    Owns the parent end of the control socket, the reader thread that
    drains it, and the id-correlated pending-request table.
    """

    def __init__(self, proc: subprocess.Popen, control: socket.socket,
                 generation: int):
        self.proc = proc
        self.control = control
        self.generation = generation
        self.pid = proc.pid
        #: bound port reported in the worker's ready message
        self.port: Optional[int] = None
        self.ready = threading.Event()
        #: set during rolling restart / shutdown so the monitor does
        #: not respawn a worker we deliberately drained
        self.retiring = False
        self._send_lock = threading.Lock()
        self._next_id = 1
        self._pending: Dict[int, dict] = {}
        self._pending_lock = threading.Lock()
        self._reader = threading.Thread(
            target=self._read_loop, name=f"deploy-reader-{self.pid}",
            daemon=True)
        self._reader.start()

    def _read_loop(self) -> None:
        """Drain control messages: readiness and request replies."""
        buf = bytearray()
        while True:
            line = _read_line(self.control, buf)
            if line is None:
                break  # worker exited (or crashed); the monitor reacts
            try:
                message = json.loads(line)
            except ValueError:
                continue
            kind = message.get("type")
            if kind == "ready":
                self.port = message.get("port")
                self.ready.set()
            elif kind == "reply":
                with self._pending_lock:
                    slot = self._pending.pop(message.get("id"), None)
                if slot is not None:
                    slot["reply"] = message
                    slot["event"].set()
        # wake every waiter: no reply is ever coming
        with self._pending_lock:
            pending, self._pending = dict(self._pending), {}
        for slot in pending.values():
            slot["event"].set()

    def send(self, message: dict) -> bool:
        """Fire-and-forget control message; False if the pipe is dead."""
        try:
            with self._send_lock:
                _send_json(self.control, message)
            return True
        except OSError:
            return False

    def request(self, message: dict, timeout: float) -> Optional[dict]:
        """Send a control request and wait for its correlated reply."""
        slot = {"event": threading.Event(), "reply": None}
        with self._pending_lock:
            request_id = self._next_id
            self._next_id += 1
            self._pending[request_id] = slot
        message = dict(message, id=request_id)
        if not self.send(message):
            with self._pending_lock:
                self._pending.pop(request_id, None)
            return None
        slot["event"].wait(timeout)
        with self._pending_lock:
            self._pending.pop(request_id, None)
        return slot["reply"]

    def close(self) -> None:
        """Close the control socket (unblocks the reader thread)."""
        try:
            self.control.close()
        except OSError:  # pragma: no cover - already closed
            pass


class ProcessSupervisor:
    """Prefork supervisor: N worker processes on one listen socket.

    ``factory`` is a ``"module:callable"`` dotted path resolved *in the
    worker process* and called as ``factory(args, listen_sock)``; it
    must return an object with ``start()`` and ``stop()`` and may offer
    ``drain(timeout)`` and ``status_fields()``.  ``args`` must be
    JSON-serializable — it is the only state that travels to the fresh
    worker interpreter.

    The supervisor itself runs no reactor: it binds the shared socket,
    spawns and watches workers, answers stats queries, and orchestrates
    rolling restarts.  Per-server planes — Acceptor, fault plane,
    worker supervision — are constructed *per process*, inside each
    worker's own server.
    """

    def __init__(self, factory: str, args: dict, procs: int,
                 host: str = "127.0.0.1", port: int = 0,
                 backlog: int = 128,
                 ready_timeout: float = 15.0,
                 drain_timeout: float = 5.0,
                 respawn_limit: int = 5,
                 respawn_window: float = 30.0):
        if procs < 1:
            raise ValueError(f"procs must be >= 1, not {procs}")
        self.factory = factory
        self.args = args
        self.procs = procs
        self.host = host
        self._requested_port = port
        self.backlog = backlog
        self.ready_timeout = ready_timeout
        self.drain_timeout = drain_timeout
        self.respawn_limit = respawn_limit
        self.respawn_window = respawn_window

        self._listen_sock: Optional[socket.socket] = None
        self._stats_dir: Optional[str] = None
        self._stats_path: Optional[str] = None
        self._stats_sock: Optional[socket.socket] = None
        self._stats_thread: Optional[threading.Thread] = None
        self._monitor_thread: Optional[threading.Thread] = None
        self._stop_event = threading.Event()
        self._started = False
        self._started_at = 0.0

        self._lock = make_lock("process-supervisor")
        #: serialises rolling restarts against each other and shutdown
        self._restart_lock = threading.Lock()
        self._workers: List[_Worker] = []
        self._respawn_times: List[float] = []
        #: workers replaced after an unexpected exit
        self.restarts_total = 0
        #: completed rolling restarts (the deployment's generation)
        self.generation = 0
        #: True once the respawn budget ran dry (the storm breaker)
        self.respawn_exhausted = False
        shared(self, "_workers", "_respawn_times", "restarts_total",
               "generation", "respawn_exhausted", "_started",
               label="supervisor worker table (monitor vs restart vs "
                     "stats threads)")

    # -- lifecycle ------------------------------------------------------

    @property
    def port(self) -> int:
        """The shared listen socket's bound port."""
        if self._listen_sock is None:
            raise RuntimeError("supervisor not started")
        return self._listen_sock.getsockname()[1]

    def start(self) -> None:
        """Bind the shared socket, start stats + monitor, spawn workers.

        Blocks until every worker reported ready (listening) or raises
        after ``ready_timeout``, tearing the half-started deployment
        down first.
        """
        with self._lock:
            if self._started:
                return
            access(self, "_started")
            self._started = True
        self._started_at = time.monotonic()
        self._stop_event.clear()
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        if hasattr(socket, "SO_REUSEPORT"):
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((self.host, self._requested_port))
        sock.listen(self.backlog)
        self._listen_sock = sock
        self._open_stats_socket()
        try:
            workers = [self._spawn_worker() for _ in range(self.procs)]
            self._await_ready(workers)
        except Exception:
            self._shutdown()
            raise
        self._monitor_thread = threading.Thread(
            target=self._monitor_loop, name="deploy-monitor", daemon=True)
        self._monitor_thread.start()

    def _await_ready(self, workers: Sequence[_Worker]) -> None:
        """Wait until every given worker reported ready, or raise."""
        deadline = time.monotonic() + self.ready_timeout
        for worker in workers:
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not worker.ready.wait(remaining):
                raise RuntimeError(
                    f"worker pid={worker.pid} not ready within "
                    f"{self.ready_timeout}s")

    def _spawn_worker(self) -> _Worker:
        """Launch one fresh worker interpreter and hand it the socket."""
        parent, child = socket.socketpair()
        # -c, not -m: runpy would execute this module a second time as
        # __main__ (and warn — repro.runtime already imported it), with
        # the adopted-socket global in the wrong module instance.
        command = [sys.executable, "-c",
                   "import sys; from repro.runtime.deployment import main; "
                   "sys.exit(main(sys.argv[1:]))",
                   "--worker", "--control-fd", str(child.fileno())]
        env = dict(os.environ)
        env[STATS_SOCKET_ENV] = self._stats_path or ""
        # The fresh interpreter must find the repro package wherever
        # the supervisor found it, with or without an installed dist.
        import repro
        src = os.path.dirname(os.path.dirname(os.path.abspath(
            repro.__file__)))
        extra = env.get("PYTHONPATH", "")
        if src not in extra.split(os.pathsep):
            env["PYTHONPATH"] = (src + os.pathsep + extra) if extra else src
        proc = subprocess.Popen(command, env=env,
                                pass_fds=(child.fileno(),))
        child.close()
        spec = json.dumps({"factory": self.factory,
                           "args": self.args}).encode("utf-8") + b"\n"
        socket.send_fds(parent, [spec], [self._listen_sock.fileno()])
        worker = _Worker(proc, parent, self.generation)
        with self._lock:
            access(self, "_workers")
            self._workers.append(worker)
        return worker

    def _live_workers(self) -> List[_Worker]:
        """Snapshot of the current worker table."""
        with self._lock:
            access(self, "_workers", write=False)
            return list(self._workers)

    def _forget(self, worker: _Worker) -> None:
        with self._lock:
            access(self, "_workers")
            if worker in self._workers:
                self._workers.remove(worker)
        worker.close()

    # -- crash detection ------------------------------------------------

    def _monitor_loop(self) -> None:
        """Watch for unexpected worker exits and respawn within budget."""
        while not self._stop_event.wait(0.05):
            for worker in self._live_workers():
                if worker.proc.poll() is None or worker.retiring:
                    continue
                self._forget(worker)
                if self._stop_event.is_set():
                    continue
                if self._respawn_allowed():
                    with self._lock:
                        access(self, "restarts_total")
                        self.restarts_total += 1
                    replacement = self._spawn_worker()
                    replacement.ready.wait(self.ready_timeout)
                else:
                    with self._lock:
                        access(self, "respawn_exhausted")
                        self.respawn_exhausted = True

    def _respawn_allowed(self) -> bool:
        """Charge the bounded respawn budget; False when exhausted."""
        now = time.monotonic()
        with self._lock:
            access(self, "_respawn_times")
            self._respawn_times = [
                t for t in self._respawn_times
                if now - t < self.respawn_window]
            if len(self._respawn_times) >= self.respawn_limit:
                return False
            self._respawn_times.append(now)
            return True

    # -- rolling restart ------------------------------------------------

    def rolling_restart(self, drain_timeout: Optional[float] = None
                        ) -> None:
        """Replace every worker with a fresh one, zero downtime.

        One worker at a time: spawn the successor, wait until it is
        accepting on the shared socket, then ask the predecessor to
        drain (in-flight requests finish) and wait for it to exit.  At
        least ``procs`` workers are accepting at every instant, and
        the listen socket never closes, so established connections
        survive and new ones are never refused.  Wired to ``SIGHUP``
        by :meth:`install_signals`.
        """
        timeout = (drain_timeout if drain_timeout is not None
                   else self.drain_timeout)
        with self._restart_lock:
            for worker in self._live_workers():
                if worker.retiring:
                    continue
                replacement = self._spawn_worker()
                if not replacement.ready.wait(self.ready_timeout):
                    # Do not degrade capacity on a broken successor:
                    # keep the old worker, kill the stillborn one.
                    replacement.retiring = True
                    replacement.proc.kill()
                    replacement.proc.wait()
                    self._forget(replacement)
                    raise RuntimeError(
                        "rolling restart aborted: replacement worker "
                        f"pid={replacement.pid} never became ready")
                worker.retiring = True
                worker.send({"type": "drain", "timeout": timeout})
                self._reap(worker, timeout + self.ready_timeout)
                self._forget(worker)
            with self._lock:
                access(self, "generation")
                self.generation += 1

    def _reap(self, worker: _Worker, timeout: float) -> None:
        """Wait for a retiring worker; escalate to SIGKILL at the end."""
        try:
            worker.proc.wait(timeout)
            return
        except subprocess.TimeoutExpired:
            pass
        worker.proc.terminate()
        try:
            worker.proc.wait(2.0)
        except subprocess.TimeoutExpired:  # pragma: no cover - stuck child
            worker.proc.kill()
            worker.proc.wait()

    # -- graceful shutdown ----------------------------------------------

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Drain every worker (in-flight work finishes), then stop.

        Returns True when every worker exited voluntarily before its
        deadline.
        """
        timeout = timeout if timeout is not None else self.drain_timeout
        workers = self._live_workers()
        for worker in workers:
            worker.retiring = True
            worker.send({"type": "drain", "timeout": timeout})
        drained = True
        deadline = time.monotonic() + timeout + self.ready_timeout
        for worker in workers:
            try:
                worker.proc.wait(max(deadline - time.monotonic(), 0.1))
            except subprocess.TimeoutExpired:
                drained = False
        self._shutdown()
        return drained

    def stop(self) -> None:
        """Stop every worker and release sockets (idempotent)."""
        self._shutdown()

    def _shutdown(self) -> None:
        # Named apart from stop() so the blocking lint's name-resolved
        # call graph cannot route an on-loop ``.start()`` edge through
        # the supervisor into EventProcessor.stop's drain sleep.
        with self._lock:
            if not self._started:
                return
            access(self, "_started")
            self._started = False
        self._stop_event.set()
        if self._monitor_thread is not None:
            self._monitor_thread.join(timeout=5.0)
            self._monitor_thread = None
        for worker in self._live_workers():
            worker.retiring = True
            worker.send({"type": "stop"})
        for worker in self._live_workers():
            self._reap(worker, 5.0)
            self._forget(worker)
        self._close_stats_socket()
        if self._listen_sock is not None:
            try:
                self._listen_sock.close()
            except OSError:  # pragma: no cover
                pass
            self._listen_sock = None

    def __enter__(self) -> "ProcessSupervisor":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- signals ---------------------------------------------------------

    def install_signals(self) -> None:
        """Operator signal plane (only call from a CLI main thread):
        ``SIGHUP`` → rolling restart, ``SIGTERM`` → drain and stop,
        ``SIGUSR2`` → forwarded to every worker (flight-ring dumps).
        """
        def _hup(*_args):
            threading.Thread(target=self.rolling_restart,
                             name="deploy-sighup", daemon=True).start()

        def _term(*_args):
            threading.Thread(target=self.drain,
                             name="deploy-sigterm", daemon=True).start()

        def _usr2(*_args):
            for worker in self._live_workers():
                try:
                    worker.proc.send_signal(signal.SIGUSR2)
                except OSError:  # pragma: no cover - racing an exit
                    pass

        if hasattr(signal, "SIGHUP"):
            signal.signal(signal.SIGHUP, _hup)
        signal.signal(signal.SIGTERM, _term)
        if hasattr(signal, "SIGUSR2"):
            signal.signal(signal.SIGUSR2, _usr2)

    # -- cross-process observability -------------------------------------

    def status(self) -> dict:
        """Supervisor-level summary (no worker round-trips)."""
        workers = self._live_workers()
        with self._lock:
            access(self, "restarts_total", write=False)
            access(self, "generation", write=False)
            access(self, "respawn_exhausted", write=False)
            return {
                "procs": self.procs,
                "workers": [worker.pid for worker in workers],
                "generation": self.generation,
                "restarts_total": self.restarts_total,
                "respawn_exhausted": self.respawn_exhausted,
            }

    @property
    def running(self) -> bool:
        """True between :meth:`start` and :meth:`drain`/:meth:`stop` —
        a CLI foreground loop polls this to exit once a ``SIGTERM``
        drain (which runs on its own thread) has completed."""
        with self._lock:
            access(self, "_started", write=False)
            return self._started

    def collect_status_fields(self, timeout: float = 2.0
                              ) -> List[Tuple[int, list]]:
        """Every live worker's O11 status fields, via control channels.

        Requests go out to all workers first, then replies are gathered
        under one shared deadline; workers that miss it (or died) are
        skipped rather than stalling the page.
        """
        workers = [w for w in self._live_workers()
                   if w.ready.is_set() and not w.retiring]
        sections: List[Tuple[int, list]] = []
        threads = []
        results: Dict[int, Optional[dict]] = {}

        def _ask(index: int, worker: _Worker) -> None:
            results[index] = worker.request({"type": "status"}, timeout)

        for index, worker in enumerate(workers):
            thread = threading.Thread(target=_ask, args=(index, worker),
                                      daemon=True)
            thread.start()
            threads.append(thread)
        deadline = time.monotonic() + timeout + 0.5
        for thread in threads:
            thread.join(max(deadline - time.monotonic(), 0.05))
        for index, worker in enumerate(workers):
            reply = results.get(index)
            if reply is None:
                continue
            sections.append((reply.get("pid", worker.pid),
                             reply.get("fields") or []))
        return sections

    def aggregated_status_fields(self) -> list:
        """One merged status-field list over every worker's registry."""
        uptime = time.monotonic() - self._started_at
        return clustered_status_fields(self.collect_status_fields(),
                                       uptime=uptime)

    def _open_stats_socket(self) -> None:
        """Bind the Unix stats socket workers aggregate through."""
        self._stats_dir = tempfile.mkdtemp(prefix="repro-deploy-")
        self._stats_path = os.path.join(self._stats_dir, "stats.sock")
        stats = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        stats.bind(self._stats_path)
        stats.listen(8)
        stats.settimeout(0.2)
        self._stats_sock = stats
        self._stats_thread = threading.Thread(
            target=self._stats_loop, name="deploy-stats", daemon=True)
        self._stats_thread.start()

    def _close_stats_socket(self) -> None:
        if self._stats_sock is not None:
            try:
                self._stats_sock.close()
            except OSError:  # pragma: no cover
                pass
            self._stats_sock = None
        if self._stats_thread is not None:
            self._stats_thread.join(timeout=2.0)
            self._stats_thread = None
        if self._stats_path is not None:
            try:
                os.unlink(self._stats_path)
            except OSError:
                pass
            self._stats_path = None
        if self._stats_dir is not None:
            try:
                os.rmdir(self._stats_dir)
            except OSError:
                pass
            self._stats_dir = None

    def _stats_loop(self) -> None:
        """Accept stats queries; each served on its own thread."""
        while not self._stop_event.is_set():
            sock = self._stats_sock
            if sock is None:
                return
            try:
                conn, _addr = sock.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            threading.Thread(target=self._serve_stats, args=(conn,),
                             daemon=True).start()

    def _serve_stats(self, conn: socket.socket) -> None:
        """Answer one stats query with the per-worker field sections."""
        try:
            conn.settimeout(5.0)
            buf = bytearray()
            _read_line(conn, buf)  # the request line; content ignored
            sections = self.collect_status_fields()
            payload = {
                "uptime": time.monotonic() - self._started_at,
                "workers": [[pid, fields] for pid, fields in sections],
            }
            conn.sendall(json.dumps(payload).encode("utf-8") + b"\n")
        except OSError:  # pragma: no cover - client went away
            pass
        finally:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass


# -- worker-side client for the stats socket ----------------------------------


def cluster_status_fields(timeout: float = 5.0) -> Optional[list]:
    """Aggregated status fields for the whole deployment, or None.

    Called by a worker's generated ``Observability`` when it serves
    ``/server-status``: connects to the supervisor's stats socket
    (``$REPRO_STATS_SOCKET``), which polls every worker and returns the
    per-worker sections this function merges.  Returns None when not
    running under a supervisor or the supervisor cannot answer — the
    caller falls back to its own process-local registry.  No deadlock:
    the querying worker's control loop runs on its main thread, free to
    answer the supervisor's poll while a processor thread waits here.
    """
    path = os.environ.get(STATS_SOCKET_ENV)
    if not path:
        return None
    try:
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
            sock.settimeout(timeout)
            sock.connect(path)
            sock.sendall(b"status\n")
            buf = bytearray()
            line = _read_line(sock, buf)
    except OSError:
        return None
    if line is None:
        return None
    try:
        payload = json.loads(line)
    except ValueError:
        return None
    sections = [(entry[0], [tuple(field) for field in entry[1]])
                for entry in payload.get("workers", [])
                if isinstance(entry, list) and len(entry) == 2]
    if not sections:
        return None
    return clustered_status_fields(sections, uptime=payload.get("uptime"))


# -- worker factories ---------------------------------------------------------


class _ReactorWorker:
    """Adapter giving a :class:`ReactorServer` the worker surface
    (``status_fields`` over its registry, pass-through lifecycle)."""

    def __init__(self, server):
        self.server = server

    @property
    def port(self) -> int:
        """The adopted (shared) socket's port."""
        return self.server.port

    def start(self) -> None:
        """Start the wrapped reactor."""
        self.server.start()

    def stop(self) -> None:
        """Stop the wrapped reactor."""
        self.server.stop()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Graceful drain of the wrapped reactor."""
        return self.server.drain(timeout)

    def status_fields(self) -> list:
        """This worker's O11 registry as status-field pairs."""
        if self.server.sampler is not None:
            self.server.sampler.sample()
        return status_fields(self.server.registry)


def reactor_worker(args: dict, listen_sock) -> _ReactorWorker:
    """Worker factory over the hand-wired ReactorServer (no codegen).

    ``args``: ``hooks`` (a ``"module:attr"`` path to a no-argument
    hooks callable), optional ``config`` (RuntimeConfig field dict),
    optional ``host``/``port``.
    """
    from repro.runtime.server import ReactorServer, RuntimeConfig
    hooks = _resolve(args["hooks"])()
    config = RuntimeConfig(**(args.get("config") or {}))
    server = ReactorServer(hooks, config,
                           host=args.get("host", "127.0.0.1"),
                           port=int(args.get("port") or 0),
                           listen_sock=listen_sock)
    return _ReactorWorker(server)


def generated_worker(args: dict, listen_sock):
    """Worker factory rebuilding a generated framework's ``Worker``.

    ``args`` is the :func:`generated_worker_args` spec: the generated
    package's location, a dotted path re-creating the hooks, and the
    JSON-safe configuration overrides.  The adopted ``listen_sock`` is
    already registered process-globally, so the generated server
    component's ``rt.worker_listen_handle`` call finds it.
    """
    from repro.co2p3s.template import load_generated_package
    fw = load_generated_package(args["dest"], args["package"])
    module = importlib.import_module(args["package"] + ".deployment")
    hooks = _resolve(args["hooks_factory"])()
    configuration = fw.ServerConfiguration(**(args.get("config") or {}))
    return module.Worker(hooks, configuration)


def generated_worker_args(module_name: str, module_file: str,
                          configuration, hooks) -> dict:
    """The JSON spec a generated ``Deployment`` ships to its workers.

    Captures the generated package (name + parent directory, so the
    fresh interpreter can re-import it), a ``"module:attr"`` path that
    re-creates the hooks with no arguments, and every JSON-serializable
    configuration override.  Hooks must therefore be an importable
    zero-argument callable — anything defined in ``__main__`` or a
    local scope cannot cross the process boundary, and is rejected
    here (at build time, in the supervisor) rather than in a worker
    that dies mid-spawn.
    """
    package = module_name.rsplit(".", 1)[0]
    dest = os.path.dirname(os.path.dirname(os.path.abspath(module_file)))
    hooks_cls = type(hooks)
    module = hooks_cls.__module__
    if module == "__main__":
        # ``python -m pkg.mod`` executes the module under the name
        # __main__, so classes it defines carry that as __module__ —
        # unresolvable in a worker, whose __main__ is the spawn stub.
        # runpy records the real import path in the spec; recover it.
        # (A plain-script __main__ has no dotted spec and stays
        # rejected below.)
        spec = getattr(sys.modules.get("__main__"), "__spec__", None)
        module = getattr(spec, "name", None) or "__main__"
    factory = f"{module}:{hooks_cls.__qualname__}"
    try:
        resolved = _resolve(factory)
    except Exception:
        resolved = None
    importable = resolved is hooks_cls
    if not importable and module != hooks_cls.__module__:
        # The remapped module is a fresh execution of the same source,
        # so the class object differs; same qualified name is the
        # strongest identity available across that boundary.
        importable = (isinstance(resolved, type)
                      and resolved.__qualname__ == hooks_cls.__qualname__)
    if not importable:
        raise ValueError(
            f"multi-process deployment needs importable hooks: "
            f"{factory!r} does not resolve back to {hooks_cls!r} "
            f"(hooks defined in __main__ or a local scope cannot "
            f"cross the process boundary)")
    config = {}
    for key, value in vars(configuration).items():
        try:
            json.dumps(value)
        except (TypeError, ValueError):
            continue
        config[key] = value
    return {"package": package, "dest": dest,
            "hooks_factory": factory, "config": config}


# -- the worker process entry -------------------------------------------------


def worker_main(control_fd: int) -> int:
    """Run one worker: adopt the socket, build the server, serve.

    The first control message carries the JSON spec and, as ancillary
    data, the shared listening socket's fd.  After ``start()`` the
    main thread settles into the control loop — ``status`` replies,
    ``drain``/``stop`` shutdown, plus a test-only ``crash`` fault
    injection — and exits when the supervisor's end closes.
    """
    global _ADOPTED_LISTEN
    control = socket.socket(fileno=control_fd)
    buf = bytearray()
    fds: List[int] = []
    while b"\n" not in buf:
        data, new_fds, _flags, _addr = socket.recv_fds(control, 65536, 4)
        if not data and not new_fds:
            return 1
        fds.extend(new_fds)
        buf += data
    line, _, rest = bytes(buf).partition(b"\n")
    spec = json.loads(line)
    if fds:
        _ADOPTED_LISTEN = socket.socket(fileno=fds[0])
        for extra_fd in fds[1:]:  # pragma: no cover - defensive
            os.close(extra_fd)
    factory = _resolve(spec["factory"])
    server = factory(spec.get("args") or {}, _ADOPTED_LISTEN)
    server.start()
    _send_json(control, {"type": "ready", "pid": os.getpid(),
                         "port": getattr(server, "port", None)})
    buf = bytearray(rest)
    while True:
        message_line = _read_line(control, buf)
        if message_line is None:
            break  # supervisor died: shut down with it
        try:
            message = json.loads(message_line)
        except ValueError:
            continue
        kind = message.get("type")
        if kind == "status":
            getter = getattr(server, "status_fields", None)
            fields = [[key, value] for key, value in getter()] \
                if getter is not None else []
            _send_json(control, {"type": "reply", "id": message.get("id"),
                                 "pid": os.getpid(), "fields": fields})
        elif kind == "drain":
            drainer = getattr(server, "drain", None)
            if drainer is not None:
                drainer(message.get("timeout"))
            else:
                server.stop()
            return 0
        elif kind == "stop":
            server.stop()
            return 0
        elif kind == "crash":
            # Test-only fault injection: die the way a segfault would,
            # skipping every finally block and atexit hook.
            os._exit(int(message.get("code", 2)))
    server.stop()
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro.runtime.deployment --worker --control-fd N``.

    The only supported invocation is the worker entry the supervisor
    spawns; everything operator-facing goes through the generated
    servers' CLIs (e.g. ``python -m repro.servers.cops_http --procs``).
    """
    import argparse
    parser = argparse.ArgumentParser(prog="repro.runtime.deployment")
    parser.add_argument("--worker", action="store_true",
                        help="run as a supervised worker process")
    parser.add_argument("--control-fd", type=int, default=None,
                        help="inherited control-socket file descriptor")
    options = parser.parse_args(argv)
    if not options.worker or options.control_fd is None:
        parser.error("only the supervisor-spawned worker mode is "
                     "supported: --worker --control-fd N")
    return worker_main(options.control_fd)


if __name__ == "__main__":  # pragma: no cover - subprocess entry
    # Re-enter through the canonical module so the adopted-socket
    # global lives where ``repro.runtime`` re-exports read it (under
    # ``-m`` this file executes as ``__main__``, a *second* module
    # instance).
    from repro.runtime.deployment import main as _canonical_main
    sys.exit(_canonical_main())
