"""Termination of long-idle connections (N-Server option O7).

"Long-idle connections may consume unnecessary resources and degrade the
performance of network server applications.  The N-Server generates code
that is able to automatically terminate these connections."

The reaper periodically scans registered connections and closes any
whose ``last_activity`` is older than the idle limit, invoking the
framework's close callback so the Communicator is torn down properly.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

from repro.runtime.handles import SocketHandle

__all__ = ["IdleConnectionReaper"]


class IdleConnectionReaper:
    """Scan-and-close reaper for idle connections.

    Works on any object exposing ``last_activity`` and ``closed`` —
    real :class:`SocketHandle` instances or the simulator's connection
    records alike.
    """

    def __init__(self, idle_limit: float,
                 on_idle: Callable[[object], None],
                 clock=time.monotonic,
                 scan_interval: Optional[float] = None):
        if idle_limit <= 0:
            raise ValueError("idle_limit must be positive")
        self.idle_limit = idle_limit
        self.on_idle = on_idle
        self.clock = clock
        self.scan_interval = scan_interval if scan_interval is not None \
            else max(idle_limit / 4.0, 0.01)
        self._lock = threading.Lock()
        self._watched: Dict[int, object] = {}
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.reaped = 0

    # -- registration -------------------------------------------------------
    def watch(self, handle) -> None:
        with self._lock:
            self._watched[id(handle)] = handle

    def unwatch(self, handle) -> None:
        with self._lock:
            self._watched.pop(id(handle), None)

    @property
    def watched_count(self) -> int:
        with self._lock:
            return len(self._watched)

    # -- scanning -----------------------------------------------------------
    def scan(self) -> int:
        """One pass; returns how many connections were reaped.

        The registry is snapshotted under the lock and examined outside
        it: ``watch``/``unwatch`` from connection threads can then never
        race the scan into a dictionary-changed-during-iteration error,
        and the lock is held for a copy rather than the whole pass.
        """
        now = self.clock()
        with self._lock:
            snapshot = list(self._watched.items())
        victims = [h for _key, h in snapshot
                   if not getattr(h, "closed", False)
                   and now - h.last_activity > self.idle_limit]
        # Also forget handles closed by other paths.
        stale = [key for key, h in snapshot if getattr(h, "closed", False)]
        with self._lock:
            for h in victims:
                self._watched.pop(id(h), None)
            for key in stale:
                self._watched.pop(key, None)
        for h in victims:
            self.reaped += 1
            self.on_idle(h)
        return len(victims)

    # -- background thread (real-socket deployments) -------------------------
    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="idle-reaper")
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.scan_interval):
            self.scan()
