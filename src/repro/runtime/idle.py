"""Termination of long-idle connections (N-Server option O7).

"Long-idle connections may consume unnecessary resources and degrade the
performance of network server applications.  The N-Server generates code
that is able to automatically terminate these connections."

Watched connections carry one lazily re-armed timer on a hashed
:class:`~repro.runtime.timerwheel.TimerWheel`: ``watch``/``unwatch``
are O(1), and a background :meth:`tick` touches only the handles whose
timer fired — a fired-but-not-idle handle (activity since arming) is
simply re-armed at ``last_activity + idle_limit``.  The legacy
:meth:`scan` full pass is kept for callers that drive the reaper
manually against an injected clock (tests, the simulator).
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

from repro.runtime.handles import SocketHandle
from repro.runtime.timerwheel import TimerWheel

__all__ = ["IdleConnectionReaper"]


class IdleConnectionReaper:
    """Timer-wheel reaper for idle connections.

    Works on any object exposing ``last_activity`` and ``closed`` —
    real :class:`SocketHandle` instances or the simulator's connection
    records alike.
    """

    def __init__(self, idle_limit: float,
                 on_idle: Callable[[object], None],
                 clock=time.monotonic,
                 scan_interval: Optional[float] = None,
                 wheel: Optional[TimerWheel] = None):
        if idle_limit <= 0:
            raise ValueError("idle_limit must be positive")
        self.idle_limit = idle_limit
        self.on_idle = on_idle
        self.clock = clock
        self.scan_interval = scan_interval if scan_interval is not None \
            else max(idle_limit / 4.0, 0.01)
        self.wheel = wheel if wheel is not None else TimerWheel(
            tick=max(min(self.scan_interval, idle_limit / 8.0), 0.005),
            slots=512, clock=clock)
        self._lock = threading.Lock()
        self._watched: Dict[int, object] = {}
        self._tokens: Dict[int, int] = {}  # id(handle) -> wheel token
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.reaped = 0

    # -- registration -------------------------------------------------------
    def watch(self, handle) -> None:
        with self._lock:
            key = id(handle)
            self._watched[key] = handle
            old = self._tokens.pop(key, None)
            if old is not None:
                self.wheel.cancel(old)
            self._tokens[key] = self.wheel.schedule(self.idle_limit, key)

    def unwatch(self, handle) -> None:
        with self._lock:
            key = id(handle)
            self._watched.pop(key, None)
            token = self._tokens.pop(key, None)
            if token is not None:
                self.wheel.cancel(token)

    @property
    def watched_count(self) -> int:
        with self._lock:
            return len(self._watched)

    # -- wheel-driven pass --------------------------------------------------
    def tick(self) -> int:
        """Process fired idle timers; returns how many connections were
        reaped.  O(fired), not O(watched): a quiet pass over thousands
        of healthy connections does no per-connection work at all."""
        fired = self.wheel.advance()
        if not fired:
            return 0
        now = self.clock()
        victims = []
        with self._lock:
            for _deadline, token, key in fired:
                if self._tokens.get(key) != token:
                    continue  # re-armed or unwatched since firing
                handle = self._watched.get(key)
                if handle is None or getattr(handle, "closed", False):
                    self._watched.pop(key, None)
                    self._tokens.pop(key, None)
                    continue
                idle = now - handle.last_activity
                if idle > self.idle_limit:
                    self._watched.pop(key, None)
                    self._tokens.pop(key, None)
                    victims.append(handle)
                else:
                    # Activity since arming: re-arm for the remainder.
                    self._tokens[key] = self.wheel.schedule(
                        max(self.idle_limit - idle, 0.0), key)
        for handle in victims:
            self.reaped += 1
            self.on_idle(handle)
        return len(victims)

    # -- legacy full scan ---------------------------------------------------
    def scan(self) -> int:
        """One full pass; returns how many connections were reaped.

        The registry is snapshotted under the lock and examined outside
        it: ``watch``/``unwatch`` from connection threads can then never
        race the scan into a dictionary-changed-during-iteration error,
        and the lock is held for a copy rather than the whole pass.
        """
        now = self.clock()
        with self._lock:
            snapshot = list(self._watched.items())
        victims = [h for _key, h in snapshot
                   if not getattr(h, "closed", False)
                   and now - h.last_activity > self.idle_limit]
        # Also forget handles closed by other paths.
        stale = [key for key, h in snapshot if getattr(h, "closed", False)]
        with self._lock:
            for h in victims:
                self._watched.pop(id(h), None)
                token = self._tokens.pop(id(h), None)
                if token is not None:
                    self.wheel.cancel(token)
            for key in stale:
                self._watched.pop(key, None)
                token = self._tokens.pop(key, None)
                if token is not None:
                    self.wheel.cancel(token)
        for h in victims:
            self.reaped += 1
            self.on_idle(h)
        return len(victims)

    # -- background thread (real-socket deployments) -------------------------
    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="idle-reaper")
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    def _run(self) -> None:
        # Fixed cadence: the wheel makes each pass O(fired), so waking
        # at the old scan rate costs almost nothing when nothing fired.
        while not self._stop.wait(min(self.scan_interval,
                                      self.wheel.tick * 4)):
            self.tick()
