"""Zero-copy write path: pooled header buffers and segmented output.

The copying write path serialises every response into one fresh
``bytes`` (header + body concatenated) and then re-copies the *entire*
remaining output on every partial send (``bytes(out_buffer)`` before
``socket.send``).  For large cached bodies that is the dominant
per-request cost.  This module provides the two pieces the O15
"zerocopy" write path replaces it with:

* :class:`BufferPool` — a size-classed pool of reusable header
  buffers.  Response heads are small and short-lived; pooling them
  avoids a bytearray allocation per response.  Hit/miss statistics
  surface through the O11 observability sampler.
* :class:`OutBuffer` — a deque of ``memoryview`` segments standing in
  for the per-connection ``bytearray`` out-buffer.  Cached file bodies
  are referenced as views of the immutable cached ``bytes`` (no copy;
  the view's refcount keeps the payload alive even past cache
  eviction), and a partial send *advances an offset* instead of
  re-slicing.  :meth:`OutBuffer.iov` exposes the segments for a
  writev-style scatter-gather ``socket.sendmsg``.

``OutBuffer`` implements the small ``bytearray`` surface the rest of
the runtime touches (``bool``/``len``/``bytes``/``extend``/
``buf[:n]``/``del buf[:n]``), so every existing consumer — including
the fault-injection handles — works unchanged against either buffer.
"""

from __future__ import annotations

from collections import deque
from itertools import islice
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.lint.locks import access, make_lock

__all__ = ["BufferPool", "BufferPoolStats", "OutBuffer", "PooledBuffer",
           "segment_bytes", "DEFAULT_SIZE_CLASSES"]

#: header buffers are small; the largest class comfortably holds any
#: response head plus a pooled small-body tail
DEFAULT_SIZE_CLASSES = (1024, 4096, 16384, 65536)


class BufferPoolStats:
    """Acquire/release accounting; ``hit_rate`` is the sampler gauge.

    Counter updates happen inside the owning pool's critical sections,
    so the stats object *shares* the pool's lock — readers
    (``hit_rate``, ``snapshot``, the O11 sampler) take it too, instead
    of the old torn-read-prone unlocked reads.
    """

    __slots__ = ("_lock", "hits", "misses", "releases", "discards")

    def __init__(self, lock=None):
        self._lock = lock if lock is not None else make_lock("BufferPoolStats")
        self.hits = 0
        self.misses = 0
        self.releases = 0
        self.discards = 0

    @property
    def acquires(self) -> int:
        """Total acquires (hits + misses)."""
        with self._lock:
            access(self, "hits", write=False)
            return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        with self._lock:
            access(self, "hits", write=False)
            hits, total = self.hits, self.hits + self.misses
        return hits / total if total else 0.0

    def snapshot(self) -> dict:
        with self._lock:
            access(self, "hits", write=False)
            snap = {
                "hits": self.hits,
                "misses": self.misses,
                "releases": self.releases,
                "discards": self.discards,
            }
        total = snap["hits"] + snap["misses"]
        snap["hit_rate"] = snap["hits"] / total if total else 0.0
        return snap


class PooledBuffer:
    """One reusable buffer checked out of a :class:`BufferPool`.

    Render into it with :meth:`write`; hand :meth:`view` (or the buffer
    itself) to an :class:`OutBuffer`, which releases it back to the
    pool once the segment is fully drained.  The backing storage must
    not be reused while a view of it is still queued — the pool
    guarantees that by only re-issuing buffers after ``release``.
    """

    __slots__ = ("pool", "data", "used", "in_use")

    def __init__(self, pool: Optional["BufferPool"], capacity: int):
        self.pool = pool
        self.data = bytearray(capacity)
        self.used = 0
        self.in_use = True

    @property
    def capacity(self) -> int:
        """The backing storage size in bytes."""
        return len(self.data)

    def write(self, payload) -> "PooledBuffer":
        """Append ``payload``; raises when it would overflow the buffer."""
        end = self.used + len(payload)
        if end > len(self.data):
            raise ValueError(
                f"write of {len(payload)}B overflows {self.capacity}B buffer")
        self.data[self.used:end] = payload
        self.used = end
        return self

    def view(self) -> memoryview:
        """A memoryview over the written prefix (no copy)."""
        return memoryview(self.data)[:self.used]

    def release(self) -> None:
        """Hand the buffer back to its pool, if it came from one."""
        if self.pool is not None:
            self.pool.release(self)


class BufferPool:
    """Size-classed pool of :class:`PooledBuffer` objects.

    ``acquire(size)`` returns a buffer whose capacity is the smallest
    size class >= ``size`` (an exact-size one-shot buffer for oversize
    requests).  Only *released* buffers sit in the free lists, so the
    pool can never hand out storage that is still referenced.  At most
    ``per_class`` buffers are retained per class; extra releases are
    discarded to bound memory.
    """

    def __init__(self, classes: Sequence[int] = DEFAULT_SIZE_CLASSES,
                 per_class: int = 64):
        if not classes:
            raise ValueError("at least one size class required")
        self.classes: Tuple[int, ...] = tuple(sorted(int(c) for c in classes))
        if self.classes[0] <= 0:
            raise ValueError("size classes must be positive")
        self.per_class = int(per_class)
        self._free = {c: [] for c in self.classes}
        self._lock = make_lock("BufferPool")
        self.stats = BufferPoolStats(self._lock)

    def size_class(self, size: int) -> Optional[int]:
        """The smallest size class >= ``size``; None when oversize."""
        for c in self.classes:
            if size <= c:
                return c
        return None

    def acquire(self, size: int) -> PooledBuffer:
        """Check out a buffer with room for ``size`` bytes."""
        cls = self.size_class(size)
        if cls is not None:
            with self._lock:
                access(self, "_free")
                access(self.stats, "hits")
                free = self._free[cls]
                if free:
                    self.stats.hits += 1
                    buf = free.pop()
                    buf.used = 0
                    buf.in_use = True
                    return buf
                self.stats.misses += 1
            return PooledBuffer(self, cls)
        with self._lock:
            access(self.stats, "hits")
            self.stats.misses += 1
        return PooledBuffer(self, size)

    def release(self, buf: PooledBuffer) -> None:
        """Return a buffer to its free list (discarded over ``per_class``)."""
        if buf.pool is not self:
            raise ValueError("buffer belongs to a different pool")
        with self._lock:
            access(self, "_free")
            access(self.stats, "hits")
            if not buf.in_use:
                raise ValueError("double release of pooled buffer")
            buf.in_use = False
            self.stats.releases += 1
            free = self._free.get(len(buf.data))
            if free is not None and len(free) < self.per_class:
                free.append(buf)
            else:
                self.stats.discards += 1

    def free_count(self) -> int:
        """Buffers currently sitting in the free lists."""
        with self._lock:
            access(self, "_free", write=False)
            return sum(len(free) for free in self._free.values())


def segment_bytes(segment) -> bytes:
    """Copy out one segment's payload (the legacy-path fallback)."""
    if isinstance(segment, PooledBuffer):
        return bytes(segment.view())
    return bytes(segment)


class OutBuffer:
    """Segmented per-connection output buffer (zero-copy write path).

    Holds ``(memoryview, owner)`` pairs; ``owner`` is the
    :class:`PooledBuffer` to release once its segment fully drains
    (``None`` for segments over caller-owned immutable bytes).  A
    partial send calls :meth:`advance`, which moves the head offset —
    no slicing, no re-copying of the remainder.
    """

    __slots__ = ("_segments", "_length")

    def __init__(self):
        self._segments: deque = deque()
        self._length = 0

    # -- zero-copy API ---------------------------------------------------
    def append_segment(self, segment, owner=None) -> None:
        """Queue one segment.  Accepts a :class:`PooledBuffer` (released
        on drain), a ``memoryview``/``bytes`` (referenced, not copied),
        or any other bytes-like (snapshotted — mutable data must not
        alias queued output)."""
        if isinstance(segment, PooledBuffer):
            owner = segment
            view = segment.view()
        elif isinstance(segment, memoryview):
            view = segment
        elif isinstance(segment, bytes):
            view = memoryview(segment)
        else:
            view = memoryview(bytes(segment))
        if len(view):
            self._segments.append((view, owner))
            self._length += len(view)
        elif owner is not None:
            owner.release()

    def iov(self, max_vecs: int = 64) -> List[memoryview]:
        """The leading segments, for scatter-gather ``sendmsg`` (capped
        well under IOV_MAX)."""
        return [view for view, _owner in islice(self._segments, max_vecs)]

    def advance(self, n: int) -> None:
        """Consume ``n`` sent bytes from the front, releasing pooled
        owners whose segments fully drained."""
        while n > 0 and self._segments:
            view, owner = self._segments[0]
            size = len(view)
            if n < size:
                self._segments[0] = (view[n:], owner)
                self._length -= n
                return
            self._segments.popleft()
            self._length -= size
            n -= size
            if owner is not None:
                owner.release()

    # -- bytearray-compatible surface ------------------------------------
    def extend(self, data) -> None:
        """bytearray-compatible append (snapshots mutable data)."""
        self.append_segment(data)

    def clear(self) -> None:
        """Drop every segment, releasing any pooled owners."""
        while self._segments:
            _view, owner = self._segments.popleft()
            if owner is not None:
                owner.release()
        self._length = 0

    def __len__(self) -> int:
        """Unsent bytes across all segments."""
        return self._length

    def __bool__(self) -> bool:
        """True while any output remains queued."""
        return self._length > 0

    def __bytes__(self) -> bytes:
        """Copy out the whole remaining output (legacy consumers)."""
        return b"".join(bytes(view) for view, _owner in self._segments)

    def __getitem__(self, index):
        """Slice access over a copied snapshot (``buf[:n]``)."""
        if isinstance(index, slice):
            return bytes(self)[index]
        raise TypeError("OutBuffer supports slice access only")

    def __delitem__(self, index) -> None:
        """``del buf[:n]``: consume ``n`` leading bytes, as after a send."""
        if not isinstance(index, slice) or index.step not in (None, 1) \
                or index.start not in (None, 0):
            raise TypeError("OutBuffer supports only del buf[:n]")
        if index.stop is None:
            self.clear()
        elif index.stop >= 0:
            self.advance(min(index.stop, self._length))
        else:
            raise TypeError("OutBuffer does not support negative slices")
