"""Hashed timer wheel: O(1) schedule / cancel / re-arm per timer.

The scan-based timer paths (``IdleConnectionReaper.scan``,
``DeadlineMonitor.scan``, the heap inside ``TimerEventSource``) cost
O(n) per tick in the number of watched connections, which is the wrong
shape for thousands of mostly-idle connections.  The wheel hashes each
timer into one of ``slots`` buckets by its absolute tick index;
advancing the cursor visits at most ``min(elapsed_ticks, slots)``
buckets and touches only the entries that are actually due.

Guarantees (pinned by the hypothesis suite in
``tests/runtime/test_timerwheel.py`` against a sorted-list model):

* **never early** — an entry fires only once ``now >= deadline``;
* **never lost** — every live entry whose deadline has passed by a full
  tick is fired by the next :meth:`advance`;
* **bounded late** — lateness is under one tick plus clock skew;
* **cancel is O(1) and idempotent**, including cancel-after-fire.

Entries due in the same :meth:`advance` fire in ``(deadline, token)``
order, so replays are deterministic.  All methods are thread-safe.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Any, List, Optional, Tuple

__all__ = ["TimerWheel"]


class _Entry:
    __slots__ = ("token", "deadline", "tick", "payload")

    def __init__(self, token: int, deadline: float, tick: int, payload: Any):
        self.token = token
        self.deadline = deadline
        self.tick = tick
        self.payload = payload


class TimerWheel:
    """One-shot timers hashed over a fixed ring of slots.

    ``tick`` is the granularity (seconds per slot); ``slots`` the ring
    size.  Timers further out than ``tick * slots`` simply stay in
    their slot across cursor rotations — the per-entry target tick
    disambiguates, at the cost of re-inspecting long timers once per
    rotation.
    """

    def __init__(self, tick: float = 0.01, slots: int = 256,
                 clock=time.monotonic):
        if tick <= 0:
            raise ValueError("tick must be positive")
        if slots < 2:
            raise ValueError("need at least two slots")
        self.tick = float(tick)
        self.slots = int(slots)
        self.clock = clock
        self._epoch = clock()
        self._cursor = 0  # last tick index processed by advance()
        self._ring: List[dict] = [dict() for _ in range(self.slots)]
        self._where: dict = {}  # token -> slot index (O(1) cancel)
        self._seq = itertools.count()
        self._lock = threading.Lock()

    # -- scheduling ---------------------------------------------------------
    def _tick_for(self, deadline: float) -> int:
        """Absolute tick index whose boundary is >= ``deadline``.

        Ceil placement (with a relative epsilon for float noise) keeps
        the no-early-fire guarantee: tick ``t`` is only processed once
        ``now >= epoch + t*tick >= deadline``.
        """
        ticks = (deadline - self._epoch) / self.tick
        t = int(ticks)
        if ticks - t > 1e-9:
            t += 1
        return max(t, self._cursor + 1)

    def schedule(self, delay: float, payload: Any = None) -> int:
        """Arm a one-shot timer ``delay`` seconds from now; returns its
        cancellation token."""
        if delay < 0:
            raise ValueError("negative timer delay")
        return self.schedule_at(self.clock() + delay, payload)

    def schedule_at(self, deadline: float, payload: Any = None) -> int:
        """Arm a one-shot timer at an absolute ``clock()`` deadline."""
        with self._lock:
            token = next(self._seq)
            self._place(_Entry(token, deadline, self._tick_for(deadline),
                               payload))
            return token

    def _place(self, entry: _Entry) -> None:
        slot = entry.tick % self.slots
        self._ring[slot][entry.token] = entry
        self._where[entry.token] = slot

    def cancel(self, token: int) -> bool:
        """Disarm; True when the timer was still pending.  Cancelling a
        fired or already-cancelled token is a harmless no-op."""
        with self._lock:
            slot = self._where.pop(token, None)
            if slot is None:
                return False
            del self._ring[slot][token]
            return True

    # -- firing -------------------------------------------------------------
    def advance(self, now: Optional[float] = None
                ) -> List[Tuple[float, int, Any]]:
        """Fire everything due by ``now``; returns ``(deadline, token,
        payload)`` triples sorted by ``(deadline, token)``.  Callers run
        their callbacks outside the wheel (nothing fires under the
        lock)."""
        if now is None:
            now = self.clock()
        fired: List[Tuple[float, int, Any]] = []
        with self._lock:
            target = int((now - self._epoch) / self.tick + 1e-9)
            if target <= self._cursor:
                return fired
            # One pass over each bucket suffices even when the cursor
            # jumped more than a full rotation.
            first = self._cursor + 1
            for offset in range(min(target - self._cursor, self.slots)):
                bucket = self._ring[(first + offset) % self.slots]
                if not bucket:
                    continue
                for token, entry in list(bucket.items()):
                    if entry.tick > target:
                        continue  # a later rotation owns this entry
                    del bucket[token]
                    del self._where[token]
                    if entry.deadline > now:
                        # float-noise guard: the tick boundary passed a
                        # hair before the deadline itself — push the
                        # entry to the next tick rather than fire early.
                        entry.tick = target + 1
                        self._place(entry)
                        continue
                    fired.append((entry.deadline, token, entry.payload))
            self._cursor = target
        fired.sort()
        return fired

    # -- introspection ------------------------------------------------------
    def next_deadline(self) -> Optional[float]:
        """When the earliest pending timer will *fire* — its wheel-tick
        boundary, at or after its deadline — or None when the wheel is
        empty.  Poll loops clamp their wait to this so a due timer never
        oversleeps and a not-yet-due one never busy-spins.  O(live
        entries): fine for the handful of timers an event source holds;
        the fixed-cadence consumers (reaper, deadline monitor) do not
        call it per tick."""
        with self._lock:
            soonest: Optional[float] = None
            for bucket in self._ring:
                for entry in bucket.values():
                    boundary = self._epoch + entry.tick * self.tick
                    if soonest is None or boundary < soonest:
                        soonest = boundary
            return soonest

    def __len__(self) -> int:
        with self._lock:
            return len(self._where)
