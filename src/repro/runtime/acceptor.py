"""Acceptor-Connector (Schmidt): separates connection establishment from
data communication.

The Acceptor owns the listening socket, consumes
:class:`~repro.runtime.events.AcceptEvent`, asks the overload controller
for permission (O9), wraps each accepted socket in a *Communicator* via
the factory callback, and registers it with the Event Source.  The
Connector establishes outbound connections (used by COPS-FTP for active
data connections).
"""

from __future__ import annotations

import socket
import time
from typing import Callable, Optional

from repro.obs.flight import GLOBAL as GLOBAL_FLIGHT
from repro.runtime.degradation import reject_handle
from repro.runtime.event_source import SocketEventSource
from repro.runtime.events import AcceptEvent
from repro.runtime.handles import ListenHandle, SocketHandle
from repro.runtime.overload import OverloadController
from repro.runtime.profiling import NULL_PROFILER
from repro.runtime.resilience import is_transient_accept_error

__all__ = ["Acceptor", "Connector"]


class Acceptor:
    """Accept-side half of the Acceptor-Connector pattern.

    ``on_connection(handle)`` is the generated framework's hook: it
    builds the Communicator for the new connection.  The Acceptor keeps
    accepting in a loop per AcceptEvent (a single readiness notification
    may cover several queued connections).
    """

    def __init__(
        self,
        listen: ListenHandle,
        source: SocketEventSource,
        on_connection: Callable[[SocketHandle], None],
        overload: Optional[OverloadController] = None,
        profiler=NULL_PROFILER,
        clock=time.monotonic,
        backoff: float = 0.05,
        register_accepted: bool = True,
        flight=None,
        shedding=None,
        accept_batch: Optional[int] = None,
    ):
        self.listen = listen
        self.source = source
        self.on_connection = on_connection
        self.overload = overload
        #: O17 :class:`~repro.runtime.degradation.SheddingPolicy` — when
        #: set, overload produces explicit decisions (cheap 503 + close)
        #: and every accepted peer passes the per-client rate limit;
        #: when None the paper's silent-postpone behaviour is unchanged.
        self.shedding = shedding
        self.profiler = profiler
        #: lifecycle-event ring; always on (defaults to the process-wide
        #: recorder when the owning server did not pass its own).  The
        #: listen handle records the accept events itself (so generated
        #: accept loops get them too) — point it at the same ring.
        self.flight = flight if flight is not None else GLOBAL_FLIGHT
        listen.flight = self.flight
        self.clock = clock
        self.backoff = backoff
        #: when False the ``on_connection`` callback owns registration —
        #: a sharded accept plane hands the handle to a shard's own
        #: Event Source instead of the acceptor's.
        self.register_accepted = register_accepted
        #: bound on accepts per AcceptEvent (None = drain to EAGAIN).
        #: Hitting the bound re-posts the listen handle via the event
        #: source's ``force_ready`` so the rest of the backlog is picked
        #: up next tick — required under edge-triggered backends, where
        #: an un-drained backlog produces no further notifications.
        self.accept_batch = accept_batch
        self.accepted = 0
        self.postponed = 0
        self.rebatched = 0
        self.rejected = 0
        self.accept_errors = 0

    def open(self) -> None:
        """Register the listen handle so AcceptEvents start flowing."""
        self.source.register(self.listen)

    def handle(self, event: AcceptEvent) -> None:
        """Drain the kernel accept queue (subject to overload control),
        taking at most :attr:`accept_batch` connections per event."""
        taken = 0
        while True:
            if self.accept_batch is not None and taken >= self.accept_batch:
                self.rebatched += 1
                self._repost()
                return
            decision = None
            if self.shedding is not None:
                decision = self.shedding.admit_accept()
                if decision.action == "postpone":
                    # Explicitly chosen postpone (on_overload="postpone"):
                    # the policy already recorded the reason.
                    self.postponed += 1
                    self._repost()
                    return
            elif self.overload is not None and not self.overload.accepting():
                # Postpone: leave remaining connections in the kernel
                # backlog; they will surface as another AcceptEvent —
                # level-triggered backends re-report them per poll,
                # edge-triggered ones need the explicit re-post.
                self.postponed += 1
                self.flight.record("shed", "accept postponed: overloaded")
                self._repost()
                return
            try:
                handle = self.listen.try_accept()
            except OSError as exc:
                # accept() must never crash the dispatcher.  A connection
                # aborted in the backlog (or an interrupted call) is
                # consumed — retry at once.  Descriptor/buffer exhaustion
                # (EMFILE & co.) will not clear by retrying: back off
                # briefly and shed; the level-triggered source re-raises
                # the AcceptEvent while the backlog is non-empty.
                self.accept_errors += 1
                self.profiler.accept_error()
                if is_transient_accept_error(exc):
                    continue
                time.sleep(self.backoff)
                self._repost()
                return
            if handle is None:
                return
            if decision is not None and not decision.admitted:
                # Overload reject: keep draining the backlog, answering
                # each waiting client with the cheap canned payload
                # instead of stranding it (the policy's whole point).
                self._reject(handle, decision)
                continue
            if self.shedding is not None:
                client = handle.name.rsplit(":", 1)[0]
                limited = self.shedding.admit_client(
                    client, getattr(handle, "trace_id", 0))
                if not limited.admitted:
                    # admit_client recorded the shed already
                    self._reject(handle, limited, record=False)
                    continue
            handle.last_activity = self.clock()
            taken += 1
            self.accepted += 1
            self.profiler.connection_accepted()
            if self.overload is not None:
                self.overload.connection_opened()
            self.on_connection(handle)
            if self.register_accepted:
                self.source.register(handle)

    def _repost(self) -> None:
        """Re-post the listen handle when leaving backlog behind on an
        edge-triggered source (level-triggered ones re-report it free)."""
        if getattr(self.source, "edge_triggered", False):
            self.source.force_ready(self.listen)

    def _reject(self, handle: SocketHandle, decision, record: bool = True) -> None:
        """Cheap write-path rejection: canned payload, flush, close.

        No Communicator is built, no handler runs, nothing touches disk —
        the accepted socket only ever sees the preformatted bytes (empty
        payload means reject-by-close for payload-less protocols).
        """
        self.rejected += 1
        if record:
            self.shedding.record_rejection(
                decision, f"client={handle.name}",
                getattr(handle, "trace_id", 0))
        reject_handle(handle, self.shedding.reject_payload)

    def close(self) -> None:
        """Deregister and close the listen handle (idempotent)."""
        if self.listen.closed:  # drain() closes first; stop() closes again
            return
        self.source.deregister(self.listen)
        self.listen.close()


class Connector:
    """Connect-side half: synchronous establishment of outbound
    connections, returning a non-blocking :class:`SocketHandle`.

    The paper's generated servers use this from Event Processor threads
    (where blocking briefly is acceptable); a fully asynchronous connect
    would surface as a :class:`~repro.runtime.events.ConnectEvent`.
    """

    def __init__(self, timeout: float = 5.0, handle_cls: type = SocketHandle):
        self.timeout = timeout
        self.handle_cls = handle_cls
        self.connected = 0

    def connect(self, host: str, port: int) -> SocketHandle:
        """Establish one outbound connection; returns its non-blocking handle."""
        sock = socket.create_connection((host, port), timeout=self.timeout)
        self.connected += 1
        return self.handle_cls(sock)
