"""Performance profiling (N-Server option O11).

"Important statistical information of the server application can be
automatically gathered, if the N-Server is configured to enable
performance profiling.  This information includes: the number of
connections accepted, the number of bytes read, the number of bytes
sent, the file cache hit rate, etc."

:class:`Profiler` keeps the recording API the generated Read-Request /
Send-Reply / Acceptor handlers call (the `+` cells of the O11 column in
Table 2), but is now a thin façade over a
:class:`~repro.obs.registry.MetricsRegistry`: every recorder maps to a
registry counter with its *own* lock.  The old implementation serialised
every byte-count update on a single ``threading.Lock`` — on the hot
read/send path, with several processor threads, that one lock was the
contention point (see ``benchmarks/bench_micro_components.py`` for the
before/after numbers).

When O11=No those call sites are simply not generated and the
:class:`NullProfiler` singleton keeps the library code branch-free.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.obs.registry import NULL_REGISTRY, MetricsRegistry

__all__ = ["ServerProfile", "Profiler", "NullProfiler", "NULL_PROFILER"]


@dataclass
class ServerProfile:
    """Immutable snapshot returned by :meth:`Profiler.snapshot`."""

    connections_accepted: int = 0
    connections_closed: int = 0
    bytes_read: int = 0
    bytes_sent: int = 0
    requests_handled: int = 0
    errors: int = 0
    events_dispatched: int = 0
    cache_hit_rate: Optional[float] = None
    uptime: float = 0.0

    @property
    def open_connections(self) -> int:
        return self.connections_accepted - self.connections_closed


class Profiler:
    """Façade over the metrics registry keeping the paper's statistics.

    Pass a shared ``registry`` to co-locate the profiler's counters with
    span histograms and sampler gauges (the generated ``Observability``
    component does); by default the profiler owns a private registry.
    """

    enabled = True

    def __init__(self, clock=time.monotonic, registry=None):
        self._clock = clock
        self._start = clock()
        self.registry = registry if registry is not None else MetricsRegistry()
        reg = self.registry
        self._connections_accepted = reg.counter(
            "server_connections_accepted_total", "Connections accepted")
        self._connections_closed = reg.counter(
            "server_connections_closed_total", "Connections closed")
        self._bytes_read = reg.counter(
            "server_bytes_read_total", "Bytes read from sockets")
        self._bytes_sent = reg.counter(
            "server_bytes_sent_total", "Bytes sent to sockets")
        self._requests_handled = reg.counter(
            "server_requests_total", "Requests handled to completion")
        self._errors = reg.counter(
            "server_errors_total", "Pipeline/handler errors")
        self._events_dispatched = reg.counter(
            "server_events_dispatched_total", "Events routed by dispatchers")
        self._accept_errors = reg.counter(
            "server_accept_errors_total", "OSErrors survived by the accept loop")
        self._cache_stats = None  # optional CacheStats to sample

    def attach_cache(self, stats) -> None:
        """Point the profiler at a ``CacheStats`` for hit-rate sampling."""
        self._cache_stats = stats

    @property
    def uptime(self) -> float:
        return self._clock() - self._start

    def connection_accepted(self) -> None:
        self._connections_accepted.inc()

    def connection_closed(self) -> None:
        self._connections_closed.inc()

    def bytes_read(self, n: int) -> None:
        self._bytes_read.inc(n)

    def bytes_sent(self, n: int) -> None:
        self._bytes_sent.inc(n)

    def request_handled(self) -> None:
        self._requests_handled.inc()

    def error(self) -> None:
        self._errors.inc()

    def event_dispatched(self, n: int = 1) -> None:
        self._events_dispatched.inc(n)

    def accept_error(self) -> None:
        self._accept_errors.inc()

    def snapshot(self) -> ServerProfile:
        return ServerProfile(
            connections_accepted=self._connections_accepted.value,
            connections_closed=self._connections_closed.value,
            bytes_read=self._bytes_read.value,
            bytes_sent=self._bytes_sent.value,
            requests_handled=self._requests_handled.value,
            errors=self._errors.value,
            events_dispatched=self._events_dispatched.value,
            cache_hit_rate=(self._cache_stats.hit_rate
                            if self._cache_stats is not None else None),
            uptime=self._clock() - self._start,
        )


class NullProfiler(Profiler):
    """No-op profiler used when O11=No: every recorder is a pass."""

    enabled = False

    def __init__(self):  # noqa: D401 - deliberately skips parent state
        self._start = 0.0
        self.registry = NULL_REGISTRY

    @property
    def uptime(self) -> float:
        return 0.0

    def attach_cache(self, stats) -> None:
        pass

    def connection_accepted(self) -> None:
        pass

    def connection_closed(self) -> None:
        pass

    def bytes_read(self, n: int) -> None:
        pass

    def bytes_sent(self, n: int) -> None:
        pass

    def request_handled(self) -> None:
        pass

    def error(self) -> None:
        pass

    def event_dispatched(self, n: int = 1) -> None:
        pass

    def accept_error(self) -> None:
        pass

    def snapshot(self) -> ServerProfile:
        return ServerProfile()


NULL_PROFILER = NullProfiler()
