"""Performance profiling (N-Server option O11).

"Important statistical information of the server application can be
automatically gathered, if the N-Server is configured to enable
performance profiling.  This information includes: the number of
connections accepted, the number of bytes read, the number of bytes
sent, the file cache hit rate, etc."

The generated framework calls the recording methods from the generated
Read-Request / Send-Reply / Acceptor handlers (the `+` cells of the O11
column in Table 2); when O11=No those call sites are simply not
generated and a :class:`NullProfiler` singleton keeps the library code
branch-free.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["ServerProfile", "Profiler", "NullProfiler", "NULL_PROFILER"]


@dataclass
class ServerProfile:
    """Immutable snapshot returned by :meth:`Profiler.snapshot`."""

    connections_accepted: int = 0
    connections_closed: int = 0
    bytes_read: int = 0
    bytes_sent: int = 0
    requests_handled: int = 0
    errors: int = 0
    events_dispatched: int = 0
    cache_hit_rate: Optional[float] = None
    uptime: float = 0.0

    @property
    def open_connections(self) -> int:
        return self.connections_accepted - self.connections_closed


class Profiler:
    """Thread-safe counters for the statistics the paper lists."""

    def __init__(self, clock=time.monotonic):
        self._clock = clock
        self._start = clock()
        self._lock = threading.Lock()
        self._connections_accepted = 0
        self._connections_closed = 0
        self._bytes_read = 0
        self._bytes_sent = 0
        self._requests_handled = 0
        self._errors = 0
        self._events_dispatched = 0
        self._cache_stats = None  # optional CacheStats to sample

    enabled = True

    def attach_cache(self, stats) -> None:
        """Point the profiler at a ``CacheStats`` for hit-rate sampling."""
        self._cache_stats = stats

    def connection_accepted(self) -> None:
        with self._lock:
            self._connections_accepted += 1

    def connection_closed(self) -> None:
        with self._lock:
            self._connections_closed += 1

    def bytes_read(self, n: int) -> None:
        with self._lock:
            self._bytes_read += n

    def bytes_sent(self, n: int) -> None:
        with self._lock:
            self._bytes_sent += n

    def request_handled(self) -> None:
        with self._lock:
            self._requests_handled += 1

    def error(self) -> None:
        with self._lock:
            self._errors += 1

    def event_dispatched(self, n: int = 1) -> None:
        with self._lock:
            self._events_dispatched += n

    def snapshot(self) -> ServerProfile:
        with self._lock:
            return ServerProfile(
                connections_accepted=self._connections_accepted,
                connections_closed=self._connections_closed,
                bytes_read=self._bytes_read,
                bytes_sent=self._bytes_sent,
                requests_handled=self._requests_handled,
                errors=self._errors,
                events_dispatched=self._events_dispatched,
                cache_hit_rate=(self._cache_stats.hit_rate
                                if self._cache_stats is not None else None),
                uptime=self._clock() - self._start,
            )


class NullProfiler(Profiler):
    """No-op profiler used when O11=No: every recorder is a pass."""

    enabled = False

    def __init__(self):  # noqa: D401 - deliberately skips parent state
        self._start = 0.0

    def attach_cache(self, stats) -> None:
        pass

    def connection_accepted(self) -> None:
        pass

    def connection_closed(self) -> None:
        pass

    def bytes_read(self, n: int) -> None:
        pass

    def bytes_sent(self, n: int) -> None:
        pass

    def request_handled(self) -> None:
        pass

    def error(self) -> None:
        pass

    def event_dispatched(self, n: int = 1) -> None:
        pass

    def snapshot(self) -> ServerProfile:
        return ServerProfile()


NULL_PROFILER = NullProfiler()
