"""Event model for generated N-Server frameworks.

The N-Server synthesises four patterns (section II): the *Reactor*
(readiness events), the *Proactor* and *Asynchronous Completion Tokens*
(completion events carrying a token that routes the result back to the
issuing context), and the *Acceptor-Connector* (connection events).

Table 2's first six rows are the classes here: ``Event``,
``CompletionEvent``, ``FileOpenEvent``, ``FileReadEvent`` plus the
``Handle``/``FileHandle`` pair in :mod:`repro.runtime.handles`.

Events carry an optional ``priority`` field — present in the paper only
when O8 (event scheduling) is generated; here it always exists at the
library layer (the *generated* Event class omits the field when O8=No,
which is what Table 2's ``Event x O8 = +`` records).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum, auto
from typing import Any, Callable, Optional

__all__ = [
    "EventKind",
    "Event",
    "ReadableEvent",
    "WritableEvent",
    "AcceptEvent",
    "ConnectEvent",
    "TimerEvent",
    "UserEvent",
    "CompletionEvent",
    "FileOpenEvent",
    "FileReadEvent",
    "ShutdownEvent",
    "AsynchronousCompletionToken",
]

_event_ids = itertools.count(1)


class EventKind(Enum):
    """Readiness / completion categories the dispatcher switches on."""

    READABLE = auto()      # socket has data to read
    WRITABLE = auto()      # socket can accept more output
    ACCEPT = auto()        # new connection pending on a listen socket
    CONNECT = auto()       # outbound connect finished
    TIMER = auto()         # a timer fired
    USER = auto()          # application-defined event
    COMPLETION = auto()    # an asynchronous operation completed
    SHUTDOWN = auto()      # server is stopping


@dataclass
class AsynchronousCompletionToken:
    """ACT pattern: opaque state attached to an async operation so the
    completion handler can resume the right context without lookup."""

    context: Any = None
    on_complete: Optional[Callable[["CompletionEvent"], None]] = None


class Event:
    """Base event.  Concrete kinds below exist so handler code can
    dispatch on type rather than on an enum when that reads better."""

    kind: EventKind = EventKind.USER

    __slots__ = ("event_id", "handle", "payload", "priority", "created_at")

    def __init__(self, handle: Any = None, payload: Any = None,
                 priority: int = 0, created_at: float = 0.0):
        self.event_id = next(_event_ids)
        self.handle = handle
        self.payload = payload
        self.priority = priority
        self.created_at = created_at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        """Debugging representation: kind, id, handle, priority."""
        return (f"<{type(self).__name__} #{self.event_id} "
                f"handle={self.handle!r} prio={self.priority}>")


class ReadableEvent(Event):
    """A socket has data to read."""

    kind = EventKind.READABLE
    __slots__ = ()


class WritableEvent(Event):
    """A socket can accept more output."""

    kind = EventKind.WRITABLE
    __slots__ = ()


class AcceptEvent(Event):
    """A new connection is pending on a listen socket."""

    kind = EventKind.ACCEPT
    __slots__ = ()


class ConnectEvent(Event):
    """An outbound connect finished."""

    kind = EventKind.CONNECT
    __slots__ = ()


class TimerEvent(Event):
    """A scheduled timer fired."""

    kind = EventKind.TIMER
    __slots__ = ()


class UserEvent(Event):
    """An application-defined event."""

    kind = EventKind.USER
    __slots__ = ()


class ShutdownEvent(Event):
    """The server is stopping."""

    kind = EventKind.SHUTDOWN
    __slots__ = ()


class CompletionEvent(Event):
    """Posted when an asynchronous operation finishes (Proactor/ACT
    emulation, option O4).  ``token`` routes the result; ``error`` is the
    exception when the operation failed."""

    kind = EventKind.COMPLETION
    __slots__ = ("token", "error")

    def __init__(self, token: AsynchronousCompletionToken,
                 payload: Any = None, error: Optional[BaseException] = None,
                 priority: int = 0):
        super().__init__(handle=None, payload=payload, priority=priority)
        self.token = token
        self.error = error

    @property
    def ok(self) -> bool:
        """True when the operation completed without error."""
        return self.error is None

    def complete(self) -> None:
        """Invoke the token's completion callback, if any."""
        if self.token.on_complete is not None:
            self.token.on_complete(self)


class FileOpenEvent(CompletionEvent):
    """Completion of an emulated non-blocking file *open* (exists in the
    generated framework only when O4=Asynchronous; cache-aware when O6)."""

    __slots__ = ()


class FileReadEvent(CompletionEvent):
    """Completion of an emulated non-blocking file *read*."""

    __slots__ = ()
