"""Automatic overload control (N-Server option O9).

The paper provides two mechanisms:

1. a cap on simultaneous connections (the trivial one multiprogramming
   servers get for free from their bounded process pool);
2. watermark control: the generated code "queries the length of multiple
   queues.  Each queue stores events of certain types.  If there is a
   queue whose length exceeds its specified high watermark, then new
   connection requests are postponed until the length drops below a
   specified low watermark."

Fig 6 uses mechanism 2 with high=20 / low=5 on the reactive Event
Processor queue.  :class:`OverloadController` implements both; the
Acceptor asks :meth:`accepting` before taking new connections.

All mutable state lives behind one tracked lock: ``accepting()`` runs on
the dispatcher thread, ``connection_opened``/``connection_closed`` on
acceptor and teardown paths, ``status()`` on the O11 sampler thread, and
the O17 :class:`~repro.runtime.degradation.AdaptiveController` retunes
watermarks from its own control loop — the lockset annotations let the
race detector prove they never collide.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.lint.locks import access, make_lock, shared

__all__ = ["Watermark", "OverloadController"]


@dataclass
class Watermark:
    """Hysteresis pair for one watched queue."""

    high: int
    low: int

    def __post_init__(self):
        if self.low < 0 or self.high <= self.low:
            raise ValueError(
                f"need 0 <= low < high, got low={self.low} high={self.high}")


class OverloadController:
    """Watermark-based admission control over any number of queues.

    Queues are registered with a name, a length probe (callable) and a
    :class:`Watermark`.  The controller latches *overloaded* state per
    queue: it trips when length > high and clears only when
    length < low (hysteresis, so accepts don't flap).
    """

    def __init__(self, max_connections: Optional[int] = None,
                 flight=None, trip_dump_after: Optional[int] = None):
        if max_connections is not None and max_connections < 1:
            raise ValueError("max_connections must be >= 1")
        self.max_connections = max_connections
        self._lock = make_lock("OverloadController")
        self._probes: Dict[str, Callable[[], int]] = {}
        self._marks: Dict[str, Watermark] = {}
        self._tripped: Dict[str, bool] = {}
        #: number of currently-open connections, maintained by the caller
        self.open_connections = 0
        #: accounting for the experiment harness
        self.postponed_accepts = 0
        #: flight recorder receiving trip/clear transitions and the
        #: sustained-overload dump (None disables both)
        self.flight = flight
        #: consecutive postponed accepts that trigger one flight-ring
        #: snapshot (evidence of *why* hits disk during the storm);
        #: None disables the dump
        self.trip_dump_after = trip_dump_after
        self._postponed_streak = 0
        self._trip_dumped = False
        shared(self, "_tripped", "open_connections", "postponed_accepts",
               "_postponed_streak",
               label="overload admission state (dispatcher vs sampler "
                     "vs adaptive controller)")

    def watch(self, name: str, probe: Callable[[], int], mark: Watermark) -> None:
        """Register a queue to watch.  ``probe()`` must return its length."""
        with self._lock:
            self._probes[name] = probe
            self._marks[name] = mark
            access(self, "_tripped")
            self._tripped[name] = False

    def unwatch(self, name: str) -> None:
        """Forget a watched queue (idempotent)."""
        with self._lock:
            self._probes.pop(name, None)
            self._marks.pop(name, None)
            access(self, "_tripped")
            self._tripped.pop(name, None)

    # -- watermark access (the O17 adaptive controller's surface) --------
    def watermark(self, name: str) -> Optional[Watermark]:
        """The current hysteresis pair for one watched queue."""
        with self._lock:
            return self._marks.get(name)

    def retune(self, name: str, high: int, low: int) -> None:
        """Replace a queue's watermarks in place (validated).

        The tripped latch is preserved: hysteresis keeps working across
        a retune, so the adaptive controller cannot cause flapping by
        merely moving the band.
        """
        mark = Watermark(high=high, low=low)  # validates
        with self._lock:
            if name not in self._marks:
                raise KeyError(f"no watched queue named {name!r}")
            self._marks[name] = mark

    # -- connection accounting (mechanism 1) -----------------------------
    def connection_opened(self) -> None:
        """The Acceptor took one more connection."""
        with self._lock:
            access(self, "open_connections")
            self.open_connections += 1

    def connection_closed(self) -> None:
        """One connection tore down."""
        with self._lock:
            access(self, "open_connections")
            self.open_connections = max(0, self.open_connections - 1)

    def at_connection_limit(self) -> bool:
        """Is mechanism 1 (the connection cap) the binding constraint?"""
        with self._lock:
            access(self, "open_connections", write=False)
            return (self.max_connections is not None
                    and self.open_connections >= self.max_connections)

    # -- the admission decision -------------------------------------------
    def _postponed(self) -> None:
        """Account one postponed accept (caller holds the lock); a
        sustained streak dumps the flight ring once per episode.  The
        dump itself runs on a one-shot thread: the accept path must
        never block on disk."""
        access(self, "postponed_accepts")
        self.postponed_accepts += 1
        access(self, "_postponed_streak")
        self._postponed_streak += 1
        if (self.trip_dump_after is not None
                and self.flight is not None
                and not self._trip_dumped
                and self._postponed_streak >= self.trip_dump_after):
            self._trip_dumped = True
            import threading

            def _dump(flight=self.flight):
                try:
                    flight.snapshot("sustained-overload")
                except OSError:  # pragma: no cover - disk trouble
                    pass

            threading.Thread(target=_dump, daemon=True,
                             name="overload-dump").start()

    def accepting(self) -> bool:
        """May the Acceptor take a new connection right now?"""
        with self._lock:
            access(self, "open_connections", write=False)
            if (self.max_connections is not None
                    and self.open_connections >= self.max_connections):
                self._postponed()
                return False
            for name, probe in self._probes.items():
                mark = self._marks[name]
                length = probe()
                access(self, "_tripped")
                if self._tripped[name]:
                    if length < mark.low:
                        self._tripped[name] = False
                        if self.flight is not None:
                            self.flight.record(
                                "overload-clear",
                                f"queue={name} length={length}")
                    else:
                        self._postponed()
                        return False
                elif length > mark.high:
                    self._tripped[name] = True
                    if self.flight is not None:
                        self.flight.record(
                            "overload-trip",
                            f"queue={name} length={length} "
                            f"high={mark.high}")
                    self._postponed()
                    return False
            access(self, "_postponed_streak")
            self._postponed_streak = 0
            self._trip_dumped = False
            return True

    def overloaded_queues(self) -> list:
        """Names of queues currently in the tripped state."""
        with self._lock:
            access(self, "_tripped", write=False)
            return [name for name, tripped in self._tripped.items()
                    if tripped]

    def status(self) -> dict:
        """Snapshot of the controller state for samplers / status pages.

        Unlike :meth:`accepting` this is read-only: probing lengths here
        never trips or clears a watermark latch.
        """
        with self._lock:
            probes = dict(self._probes)
            marks = dict(self._marks)
            access(self, "_tripped", write=False)
            tripped = dict(self._tripped)
            access(self, "open_connections", write=False)
            open_connections = self.open_connections
            access(self, "postponed_accepts", write=False)
            postponed = self.postponed_accepts
        queues = {}
        for name, probe in probes.items():
            try:
                length = probe()
            except Exception:  # noqa: BLE001 - status must not raise
                length = None
            mark = marks[name]
            queues[name] = {
                "length": length,
                "high": mark.high,
                "low": mark.low,
                "tripped": tripped[name],
            }
        return {
            "open_connections": open_connections,
            "max_connections": self.max_connections,
            "postponed_accepts": postponed,
            "tripped": [name for name, t in tripped.items() if t],
            "queues": queues,
        }
