"""Automatic overload control (N-Server option O9).

The paper provides two mechanisms:

1. a cap on simultaneous connections (the trivial one multiprogramming
   servers get for free from their bounded process pool);
2. watermark control: the generated code "queries the length of multiple
   queues.  Each queue stores events of certain types.  If there is a
   queue whose length exceeds its specified high watermark, then new
   connection requests are postponed until the length drops below a
   specified low watermark."

Fig 6 uses mechanism 2 with high=20 / low=5 on the reactive Event
Processor queue.  :class:`OverloadController` implements both; the
Acceptor asks :meth:`accepting` before taking new connections.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

__all__ = ["Watermark", "OverloadController"]


@dataclass
class Watermark:
    """Hysteresis pair for one watched queue."""

    high: int
    low: int

    def __post_init__(self):
        if self.low < 0 or self.high <= self.low:
            raise ValueError(
                f"need 0 <= low < high, got low={self.low} high={self.high}")


class OverloadController:
    """Watermark-based admission control over any number of queues.

    Queues are registered with a name, a length probe (callable) and a
    :class:`Watermark`.  The controller latches *overloaded* state per
    queue: it trips when length > high and clears only when
    length < low (hysteresis, so accepts don't flap).
    """

    def __init__(self, max_connections: Optional[int] = None):
        if max_connections is not None and max_connections < 1:
            raise ValueError("max_connections must be >= 1")
        self.max_connections = max_connections
        self._probes: Dict[str, Callable[[], int]] = {}
        self._marks: Dict[str, Watermark] = {}
        self._tripped: Dict[str, bool] = {}
        #: number of currently-open connections, maintained by the caller
        self.open_connections = 0
        #: accounting for the experiment harness
        self.postponed_accepts = 0

    def watch(self, name: str, probe: Callable[[], int], mark: Watermark) -> None:
        """Register a queue to watch.  ``probe()`` must return its length."""
        self._probes[name] = probe
        self._marks[name] = mark
        self._tripped[name] = False

    def unwatch(self, name: str) -> None:
        self._probes.pop(name, None)
        self._marks.pop(name, None)
        self._tripped.pop(name, None)

    # -- connection accounting (mechanism 1) -----------------------------
    def connection_opened(self) -> None:
        self.open_connections += 1

    def connection_closed(self) -> None:
        self.open_connections = max(0, self.open_connections - 1)

    # -- the admission decision -------------------------------------------
    def accepting(self) -> bool:
        """May the Acceptor take a new connection right now?"""
        if (self.max_connections is not None
                and self.open_connections >= self.max_connections):
            self.postponed_accepts += 1
            return False
        for name, probe in self._probes.items():
            mark = self._marks[name]
            length = probe()
            if self._tripped[name]:
                if length < mark.low:
                    self._tripped[name] = False
                else:
                    self.postponed_accepts += 1
                    return False
            elif length > mark.high:
                self._tripped[name] = True
                self.postponed_accepts += 1
                return False
        return True

    def overloaded_queues(self) -> list:
        """Names of queues currently in the tripped state."""
        return [name for name, tripped in self._tripped.items() if tripped]

    def status(self) -> dict:
        """Snapshot of the controller state for samplers / status pages.

        Unlike :meth:`accepting` this is read-only: probing lengths here
        never trips or clears a watermark latch.
        """
        queues = {}
        for name, probe in self._probes.items():
            try:
                length = probe()
            except Exception:  # noqa: BLE001 - status must not raise
                length = None
            mark = self._marks[name]
            queues[name] = {
                "length": length,
                "high": mark.high,
                "low": mark.low,
                "tripped": self._tripped[name],
            }
        return {
            "open_connections": self.open_connections,
            "max_connections": self.max_connections,
            "postponed_accepts": self.postponed_accepts,
            "tripped": self.overloaded_queues(),
            "queues": queues,
        }
