"""Communicator Component: one instance per network connection.

Implements the paper's five-step request handling cycle (Fig 1):

    Read Request -> Decode Request -> Handle Request -> Encode Reply
    -> Send Reply

and the three-step variant without encoding/decoding (Fig 2, O3=No).
Read Request and Send Reply are generic (the framework provides them);
Decode / Handle / Encode are the application-dependent hook methods the
programmer writes (:class:`ServerHooks`).

The Handle step may be asynchronous: a hook returns :data:`PENDING`
after arranging for ``conn.complete_request(result)`` to be called later
(e.g. from a :class:`~repro.runtime.file_io.AsyncFileIO` completion).
Replies are always sent in request order per connection, matching
HTTP/1.1 persistent-connection semantics.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Callable, Optional, Tuple

from repro.obs.flight import GLOBAL as GLOBAL_FLIGHT
from repro.obs.spans import NULL_SPANS
from repro.runtime.buffers import segment_bytes
from repro.runtime.events import Event
from repro.runtime.handles import SocketHandle
from repro.runtime.profiling import NULL_PROFILER
from repro.runtime.tracing import NULL_LOG, NULL_TRACER

__all__ = ["PENDING", "CLOSE", "ServerHooks", "Communicator"]

#: sentinel a handle-hook returns when the reply will arrive asynchronously
PENDING = object()
#: sentinel reply meaning "close this connection without replying"
CLOSE = object()


class _Ticket:
    """Order token for one in-flight request; carries its span so the
    asynchronous completion path can close the right one, its start
    time so a deadline monitor can spot overdue requests, and — once
    the Handle step resolves — the reply itself, parked until every
    older request on the connection has flushed.  That parking is what
    keeps pipelined replies in request order even when asynchronous
    services (disk reads on a thread pool, cache hits completing
    inline) finish out of order."""

    __slots__ = ("span", "started", "handling", "done", "result")

    def __init__(self, span, started: float = 0.0):
        self.span = span
        self.started = started
        #: the pipeline thread is still inside the handle hook
        self.handling = True
        #: the reply is resolved (it may still wait on older tickets)
        self.done = False
        self.result = None


class ServerHooks:
    """The application-specific hook methods (the only code a programmer
    writes when using the N-Server, per section IV).

    Subclass and override; the defaults implement an echo server with
    newline framing and no decode/encode steps.
    """

    def split_request(self, data: bytes) -> Optional[Tuple[bytes, bytes]]:
        """Framing: split one complete request off the front of ``data``.

        Return ``(request_bytes, remainder)`` or ``None`` when no
        complete request is buffered yet.
        """
        if b"\n" not in data:
            return None
        line, rest = data.split(b"\n", 1)
        return line + b"\n", rest

    # -- the three application-dependent steps --------------------------
    def decode(self, raw: bytes, conn: "Communicator") -> Any:
        """Decode Request (only called when the template generated the
        O3=Yes pipeline)."""
        return raw

    def handle(self, request: Any, conn: "Communicator") -> Any:
        """Handle Request: return the result, :data:`PENDING` for an
        asynchronous reply, or :data:`CLOSE` to drop the connection."""
        return request

    def encode(self, result: Any, conn: "Communicator") -> bytes:
        """Encode Reply (O3=Yes only)."""
        return result if isinstance(result, (bytes, bytearray)) else bytes(result)

    # -- connection lifecycle --------------------------------------------
    def on_connect(self, conn: "Communicator") -> None:
        """Called once when the connection is established."""

    def on_close(self, conn: "Communicator") -> None:
        """Called once when the connection is torn down."""

    def classify_priority(self, conn: "Communicator") -> int:
        """Event-scheduling hook (O8): priority for this connection's
        events.  The Fig 5 experiment overrides this (13 added lines in
        the paper's COPS-HTTP)."""
        return 0


class Communicator:
    """Per-connection state machine driving the request cycle.

    The generated framework routes ReadableEvent/WritableEvent for the
    connection's handle to :meth:`on_readable` / :meth:`on_writable`
    (possibly via an Event Processor).  Pipeline steps for a request are
    chained inline — the steps are CPU work; only the *Handle* step may
    detour through asynchronous services.
    """

    def __init__(
        self,
        handle: SocketHandle,
        hooks: ServerHooks,
        *,
        use_codec: bool = True,
        on_teardown: Optional[Callable[["Communicator"], None]] = None,
        update_interest: Optional[Callable[[SocketHandle], None]] = None,
        profiler=NULL_PROFILER,
        tracer=NULL_TRACER,
        log=NULL_LOG,
        spans=NULL_SPANS,
        clock=time.monotonic,
        buffer_pool=None,
        flight=None,
    ):
        self.handle = handle
        self.hooks = hooks
        self.use_codec = use_codec
        #: always-on lifecycle-event ring (per-shard when the owning
        #: server passed its own; the process-wide recorder otherwise)
        self.flight = flight if flight is not None else GLOBAL_FLIGHT
        #: header BufferPool of the zero-copy write path (None = the
        #: copying path; encode hooks key segment emission off this)
        self.buffer_pool = buffer_pool
        self.on_teardown = on_teardown
        self.update_interest = update_interest
        self.profiler = profiler
        self.tracer = tracer
        self.log = log
        self.spans = spans
        self.clock = clock
        self.in_buffer = bytearray()
        # Ticket machinery for asynchronous (PENDING) replies.  Guarded by
        # a lock because completions arrive from service threads that may
        # race with the pipeline thread still inside the handle hook.
        self._ticket_lock = threading.Lock()
        self._awaiting: deque = deque()   # tickets in request order
        self._draining = False            # a thread is flushing replies
        self._handling_threads: dict = {}  # thread ident -> its ticket
        self.priority = 0
        self.closed = False
        self.close_after_flush = False
        # Deadline stamps (read by a DeadlineMonitor; None = stage idle).
        #: when the first byte of a still-incomplete request arrived
        self.read_started: Optional[float] = None
        #: when output last stopped making progress with bytes buffered
        self.write_blocked_since: Optional[float] = None
        #: application scratch space (sessions, auth state, ...)
        self.context: dict = {}
        self.requests_completed = 0
        self.priority = hooks.classify_priority(self)
        hooks.on_connect(self)

    #: reads per ReadableEvent before handing control back (512 KiB at
    #: the default buffer size) — a firehose peer cannot starve the rest
    #: of the loop; interest re-arming re-posts the remainder
    READ_BATCH = 8

    # -- event entry points -------------------------------------------------
    def on_readable(self, event: Event = None) -> None:
        """Read Request step: drain the socket, then run the pipeline for
        every complete request now buffered.

        Drains in a loop until the socket would block: an edge-triggered
        poller backend notifies once per readiness *transition*, so a
        single read per event would strand buffered bytes forever.  The
        drain is bounded by :attr:`READ_BATCH`; when the bound (or a
        fault-injected EAGAIN) cuts it short, :meth:`_sync_interest`
        re-arms interest, which under epoll re-posts the edge while data
        is still pending — and costs nothing under the level-triggered
        oracle, which re-reports pending data on every poll anyway.
        """
        if self.closed:
            return
        for _ in range(self.READ_BATCH):
            t0 = self.clock()
            n = self.handle.recv_into_buffer(self.in_buffer)
            if n is None:
                self._sync_interest()
                break
            if n == 0:
                self.close()
                return
            now = self.clock()
            self.handle.last_activity = now
            self.spans.observe("read", now - t0)
            self.profiler.bytes_read(n)
            self.tracer.trace("read", f"{self.handle.name} +{n}B")
            self._pump_requests()
            if self.closed:
                return
        else:
            # Bound hit with the socket possibly still readable.
            self._sync_interest()
        now = self.clock()
        # Header deadline stamp: leftover bytes are an incomplete request.
        # The stamp survives further partial reads (a trickling peer must
        # not reset its own clock) and clears once the buffer drains.
        if not self.in_buffer:
            self.read_started = None
        elif self.read_started is None:
            self.read_started = now

    def on_writable(self, event: Event = None) -> None:
        """Send Reply step: flush buffered output."""
        if self.closed:
            return
        t0 = self.clock()
        sent = self.handle.try_send()
        if sent:
            now = self.clock()
            self.handle.last_activity = now
            self.spans.observe("send", now - t0)
            self.profiler.bytes_sent(sent)
            self.tracer.trace("send", f"{self.handle.name} -{sent}B")
        if self.handle.closed:
            self.close()
            return
        self._stamp_write(sent)
        if sent and not self.handle.out_buffer:
            self.flight.record("write-complete", self.handle.name,
                               getattr(self.handle, "trace_id", 0))
        self._sync_interest()
        if self.close_after_flush and not self.handle.out_buffer:
            self.close()

    # -- pipeline -----------------------------------------------------------
    def _pump_requests(self) -> None:
        while not self.closed:
            split = self.hooks.split_request(bytes(self.in_buffer))
            if split is None:
                return
            raw, rest = split
            self.in_buffer = bytearray(rest)
            self._run_pipeline(raw)

    # -- overridable steps (generated CommunicatorComponents replace
    # these with the generated step-handler chain) ------------------------
    def step_decode(self, raw: bytes):
        """Decode Request step (identity when the codec is disabled)."""
        return self.hooks.decode(raw, self) if self.use_codec else raw

    def step_handle(self, request):
        """Handle Request step."""
        return self.hooks.handle(request, self)

    def step_encode(self, result):
        """Encode Reply step (identity when the codec is disabled)."""
        return self.hooks.encode(result, self) if self.use_codec else result

    def _run_pipeline(self, raw: bytes) -> None:
        trace_id = getattr(self.handle, "trace_id", 0)
        self.flight.record(
            "dispatch",
            f"{self.handle.name} worker={threading.current_thread().name}",
            trace_id)
        span = self.spans.start("request", detail=self.handle.name,
                                trace_id=trace_id)
        ticket = _Ticket(span, started=self.clock())
        me = threading.get_ident()
        with self._ticket_lock:
            self._awaiting.append(ticket)
            self._handling_threads[me] = ticket
        try:
            self.flight.record("stage-enter", "decode", trace_id)
            with span.stage("decode"):
                request = self.step_decode(raw)
            self.flight.record("stage-exit", "decode", trace_id)
            self.tracer.trace("decode", f"{self.handle.name} {len(raw)}B")
            span.stage_begin("handle")
            self.flight.record("stage-enter", "handle", trace_id)
            result = self.step_handle(request)
        except BaseException as exc:  # noqa: BLE001 - hook errors end the connection
            # The span closes first, whatever is flying: a worker-killing
            # BaseException (fault injection's WorkerCrash) must not leave
            # open stages dangling on a span the recorder already shared.
            span.finish()
            with self._ticket_lock:
                self._awaiting.clear()
                self._handling_threads.pop(me, None)
            if not isinstance(exc, Exception):
                # Worker-death path: the supervisor owns recovery, so the
                # exception keeps propagating to take the worker down.
                raise
            self.profiler.error()
            self.log.error(f"pipeline error on {self.handle.name}: {exc!r}")
            self.close()
            return
        with self._ticket_lock:
            self._handling_threads.pop(me, None)
            ticket.handling = False
            if result is PENDING:
                if not ticket.done:
                    # The reply will arrive via complete_request later.
                    return
                # The completion raced ahead of the PENDING return:
                # flush it now on this thread.
            else:
                ticket.done = True
                ticket.result = result
        span.stage_end()  # the handle stage is over: the reply exists
        self.flight.record("stage-exit", "handle", trace_id)
        self._drain()

    def current_ticket(self) -> Optional[Any]:
        """The order ticket of the request this thread's handle hook is
        processing.  A hook that goes asynchronous captures it and hands
        it back to :meth:`complete_request`, pairing the reply with the
        right request even when pipelined completions finish out of
        order."""
        with self._ticket_lock:
            return self._handling_threads.get(threading.get_ident())

    def complete_request(self, result: Any, ticket: Any = None) -> None:
        """Called by asynchronous services to deliver a pending reply.

        ``ticket`` (from :meth:`current_ticket`) pairs the reply with
        its request; without one the oldest unresolved request is
        assumed — only safe for protocols whose services complete in
        request order.  Either way the reply is parked on its ticket
        and flushed strictly in request order."""
        with self._ticket_lock:
            if ticket is None:
                ticket = next(
                    (t for t in self._awaiting if not t.done), None)
            elif ticket not in self._awaiting or ticket.done:
                # The connection errored out (queue cleared) or this is
                # a duplicate completion: nothing to deliver.
                ticket = None
            if ticket is None:
                return
            ticket.done = True
            ticket.result = result
            if ticket.handling:
                # Raced ahead of the PENDING return — the pipeline
                # thread closes the handle stage and flushes.
                return
        ticket.span.stage_end()
        self.flight.record("stage-exit", "handle",
                           getattr(self.handle, "trace_id", 0))
        self._drain()

    def _drain(self) -> None:
        """Flush resolved replies from the head of the request queue.

        Only the head may flush — a resolved reply behind an
        unresolved one waits — and only one thread flushes at a time; a
        completion that finds a flush in progress parks its reply and
        leaves it for that thread's next loop iteration."""
        while True:
            with self._ticket_lock:
                head = self._awaiting[0] if self._awaiting else None
                if (head is None or not head.done or head.handling
                        or self._draining):
                    return
                self._draining = True
                self._awaiting.popleft()
            try:
                self._deliver(head, head.result)
            finally:
                with self._ticket_lock:
                    self._draining = False

    def _deliver(self, ticket: Any, result: Any) -> None:
        trace_id = getattr(self.handle, "trace_id", 0)
        span = ticket.span
        if self.closed:
            span.finish()
            return
        if result is CLOSE:
            span.finish()
            self.close()
            return
        try:
            self.flight.record("stage-enter", "encode", trace_id)
            with span.stage("encode"):
                data = self.step_encode(result)
            self.flight.record("stage-exit", "encode", trace_id)
        except Exception as exc:  # noqa: BLE001
            span.finish()
            self.profiler.error()
            self.log.error(f"encode error on {self.handle.name}: {exc!r}")
            self.close()
            return
        span.finish()
        self.requests_completed += 1
        self.profiler.request_handled()
        self.send_bytes(data)

    # -- output ---------------------------------------------------------------
    def send_bytes(self, data, close_after: bool = False) -> None:
        """Queue reply bytes and opportunistically flush.

        ``data`` may also be a list/tuple of segments (the zero-copy
        encode path): each segment is queued by reference on a
        segmented out-buffer, or joined into one copy on the legacy
        ``bytearray`` path.
        """
        if self.closed:
            return
        if data:
            out = self.handle.out_buffer
            if isinstance(data, (list, tuple)):
                append = getattr(out, "append_segment", None)
                if append is not None:
                    for segment in data:
                        append(segment)
                else:
                    out.extend(b"".join(segment_bytes(s) for s in data))
            else:
                out.extend(data)
        if close_after:
            self.close_after_flush = True
        t0 = self.clock()
        sent = self.handle.try_send()
        if sent:
            now = self.clock()
            self.spans.observe("send", now - t0)
            self.profiler.bytes_sent(sent)
            self.tracer.trace("send", f"{self.handle.name} -{sent}B")
            self.handle.last_activity = now
        if self.handle.closed:
            self.close()
            return
        self._stamp_write(sent)
        if sent and not self.handle.out_buffer:
            self.flight.record("write-complete", self.handle.name,
                               getattr(self.handle, "trace_id", 0))
        self._sync_interest()
        if self.close_after_flush and not self.handle.out_buffer:
            self.close()

    def _stamp_write(self, sent: int) -> None:
        """Write deadline stamp: since when has buffered output made no
        progress?  Any progress restarts the clock; a drained buffer
        clears it."""
        if not self.handle.out_buffer:
            self.write_blocked_since = None
        elif sent or self.write_blocked_since is None:
            self.write_blocked_since = self.clock()

    def _sync_interest(self) -> None:
        if self.update_interest is not None and not self.closed:
            self.update_interest(self.handle)

    # -- resilience probes ---------------------------------------------------
    def oldest_pending_started(self) -> Optional[float]:
        """Start time of the oldest in-flight request, or None when the
        pipeline is idle (read by a DeadlineMonitor)."""
        with self._ticket_lock:
            return self._awaiting[0].started if self._awaiting else None

    def busy(self) -> bool:
        """True while work is still owed: an in-flight request or
        unflushed reply bytes (read by the graceful-drain loop)."""
        with self._ticket_lock:
            if self._awaiting:
                return True
        return bool(self.handle.out_buffer) and not self.closed

    # -- teardown ----------------------------------------------------------
    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        self.tracer.trace("close", self.handle.name)
        try:
            self.hooks.on_close(self)
        finally:
            if self.on_teardown is not None:
                self.on_teardown(self)
            self.handle.close()
            self.profiler.connection_closed()
