"""Event Sources (Decorator pattern), as section IV describes:

    "an Event Source component that complies with the Decorator pattern
    is added.  Besides managing multiple event sources, it is also
    responsible for registering and deregistering Event Handlers and
    polling ready events."

The concrete base source is :class:`SocketEventSource` (readiness
selection over a pluggable :class:`~repro.runtime.poller.Poller`
backend — portable ``selectors`` or edge-triggered Linux epoll).
Additional sources wrap an inner source decorator-style —
:class:`TimerEventSource` and :class:`QueueEventSource` merge their own
ready events into whatever the inner source returns, and clamp the poll
timeout so their events are not delayed.  New kinds of sources are
added by writing one more decorator, which is the extensibility
argument the paper makes.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, List, Optional

from repro.runtime.buffers import BufferPool
from repro.runtime.events import (
    AcceptEvent,
    Event,
    ReadableEvent,
    TimerEvent,
    WritableEvent,
)
from repro.runtime.handles import Handle, ListenHandle, SocketHandle
from repro.runtime.poller import READ, WRITE, Poller, make_poller
from repro.runtime.timerwheel import TimerWheel

__all__ = [
    "EventSource",
    "NullEventSource",
    "SocketEventSource",
    "EventSourceDecorator",
    "TimerEventSource",
    "QueueEventSource",
]

#: one shared read buffer per live connection; the free-list bound only
#: caps how many *idle* buffers the pool retains between connections
READ_BUFFER_SIZE = 65536
READ_POOL_RETAIN = 256


class EventSource:
    """Interface: poll for ready events, manage handle registration."""

    def poll(self, timeout: Optional[float] = None) -> List[Event]:
        raise NotImplementedError

    def register(self, handle: Handle, **interest) -> None:
        raise NotImplementedError

    def deregister(self, handle: Handle) -> None:
        raise NotImplementedError

    def force_ready(self, handle: Handle) -> None:
        """Ask for one synthetic readiness event for ``handle`` on the
        next poll (no-op default).  The batched-accept path uses this to
        re-post a listen socket it stopped draining early — essential
        under edge-triggered backends, where the kernel will not repeat
        the notification."""

    def wakeup(self) -> None:
        """Interrupt a blocking poll from another thread (no-op default)."""

    def close(self) -> None:
        pass


class NullEventSource(EventSource):
    """Terminal inner source for decorator chains with no socket base."""

    def poll(self, timeout: Optional[float] = None) -> List[Event]:
        if timeout:
            time.sleep(min(timeout, 0.01))
        return []

    def register(self, handle: Handle, **interest) -> None:
        raise TypeError("NullEventSource accepts no handles")

    def deregister(self, handle: Handle) -> None:
        raise TypeError("NullEventSource accepts no handles")


class SocketEventSource(EventSource):
    """Readiness selection over socket handles.

    * ``ListenHandle`` registration yields :class:`AcceptEvent`.
    * ``SocketHandle`` registration yields :class:`ReadableEvent` always
      and :class:`WritableEvent` while the handle has buffered output.

    The kernel-facing half lives behind a
    :class:`~repro.runtime.poller.Poller` (``poller=`` accepts an
    instance, a backend name, or None for the
    ``REPRO_POLLER``/platform default).  Under the edge-triggered epoll
    backend the pause/resume one-shot protocol still works because
    ``EPOLL_CTL_MOD`` re-arms the edge — a resume with bytes already
    pending delivers a fresh event.

    A self-pipe (socketpair) lets other threads interrupt a blocking
    poll — needed when an Event Processor thread queues output bytes on
    a connection and the dispatcher must start watching writability.

    The source also owns the shared *read* :class:`BufferPool`: every
    registered ``SocketHandle`` gets the pool attached so
    ``try_recv`` can check a reusable ``recv_into`` buffer out of it
    instead of allocating fresh ``bytes`` per call.
    """

    def __init__(self, poller=None, read_pool: Optional[BufferPool] = None):
        self._poller: Poller = (poller if isinstance(poller, Poller)
                                else make_poller(poller))
        # RLock: poll and mask updates may nest through callbacks.
        self._lock = threading.RLock()
        self._handles: dict = {}
        self._paused: set = set()
        self._forced: deque = deque()   # handles owed a synthetic event
        self._forced_ids: set = set()
        self.read_pool = read_pool if read_pool is not None else BufferPool(
            classes=(READ_BUFFER_SIZE,), per_class=READ_POOL_RETAIN)
        import socket as _socket

        self._wake_recv, self._wake_send = _socket.socketpair()
        self._wake_recv.setblocking(False)
        self._poller.register(self._wake_recv.fileno(), READ, None)
        self._closed = False

    @property
    def poller_name(self) -> str:
        """Active backend name ("select" / "epoll")."""
        return self._poller.name

    @property
    def edge_triggered(self) -> bool:
        return self._poller.edge_triggered

    def register(self, handle: Handle, **interest) -> None:
        if not isinstance(handle, (SocketHandle, ListenHandle)):
            raise TypeError(f"cannot select on {type(handle).__name__}")
        with self._lock:
            fd = handle.fileno()
            if fd in self._handles:
                # A stale registration (socket closed without a
                # deregister) must not kill the dispatcher when the
                # kernel reuses the fd: drop it and register the new
                # handle in its place.
                self._paused.discard(id(self._handles[fd]))
                try:
                    self._poller.unregister(fd)
                except (KeyError, ValueError, OSError):
                    pass
            self._handles[fd] = handle
            if isinstance(handle, SocketHandle):
                handle.read_pool = self.read_pool
            self._poller.register(fd, self._mask(handle), handle)

    def deregister(self, handle: Handle) -> None:
        with self._lock:
            fd = handle.fileno()
            self._handles.pop(fd, None)
            self._paused.discard(id(handle))
            if id(handle) in self._forced_ids:
                self._forced_ids.discard(id(handle))
                try:
                    self._forced.remove(handle)
                except ValueError:  # pragma: no cover - popped concurrently
                    pass
            try:
                self._poller.unregister(fd)
            except (KeyError, ValueError, OSError):
                pass
        release = getattr(handle, "release_read_buffer", None)
        if release is not None:
            release()

    def update_interest(self, handle: SocketHandle) -> None:
        """Re-arm write interest to match the handle's buffered output.

        Under epoll this is also the edge re-arm: modifying interest on
        a still-ready fd re-delivers the event, so a reader that had to
        stop mid-drain gets called again."""
        self._apply_mask(handle)

    def pause(self, handle: SocketHandle) -> None:
        """One-shot semantics: stop watching readability until resumed.

        Called by the dispatcher when it hands a ReadableEvent to the
        Event Processor, so (a) readiness does not storm duplicate
        events while the processor catches up and (b) two processor
        threads never run the same connection concurrently.
        """
        with self._lock:
            self._paused.add(id(handle))
        self._apply_mask(handle)

    def resume(self, handle: SocketHandle) -> None:
        """Re-arm readability after the processor finished the event."""
        with self._lock:
            self._paused.discard(id(handle))
        if handle.closed:
            return
        self._apply_mask(handle)
        self.wakeup()

    def force_ready(self, handle: Handle) -> None:
        """Queue one synthetic readiness event for a registered handle.

        The next poll returns immediately and reports the handle ready
        (AcceptEvent for a listener, ReadableEvent otherwise) on top of
        whatever the kernel says.  Used by the Acceptor when it stops a
        batched drain early, and safe under both backends."""
        with self._lock:
            if handle.fileno() not in self._handles:
                return
            if id(handle) not in self._forced_ids:
                self._forced_ids.add(id(handle))
                self._forced.append(handle)
        self.wakeup()

    def _mask(self, handle: Handle) -> int:
        if isinstance(handle, ListenHandle):
            return READ
        read = READ if id(handle) not in self._paused else 0
        write = WRITE if handle.wants_write else 0
        return read | write

    def _apply_mask(self, handle: SocketHandle) -> None:
        if handle.closed:
            return
        with self._lock:
            fd = handle.fileno()
            if fd not in self._handles:
                return  # deregistered entirely
            try:
                self._poller.modify(fd, self._mask(handle), handle)
            except (KeyError, ValueError, OSError):
                pass

    def wakeup(self) -> None:
        try:
            self._wake_send.send(b"\x00")
        except OSError:  # pragma: no cover - closing race
            pass

    def poll(self, timeout: Optional[float] = None) -> List[Event]:
        if self._closed:
            return []
        with self._lock:
            if self._forced:
                timeout = 0.0
        ready: List[Event] = []
        for data, mask in self._poller.poll(timeout):
            if data is None:  # the wakeup pipe
                try:
                    while self._wake_recv.recv(4096):
                        pass
                except BlockingIOError:
                    pass
                continue
            self._append_events(ready, data, mask)
        with self._lock:
            forced, self._forced = self._forced, deque()
            self._forced_ids.clear()
        for handle in forced:
            if handle.fileno() in self._handles:
                self._append_events(ready, handle, READ)
        return ready

    def _append_events(self, ready: List[Event], handle: Handle,
                       mask: int) -> None:
        if isinstance(handle, ListenHandle):
            ready.append(AcceptEvent(handle=handle))
            return
        # epoll reports HUP/ERR regardless of the interest mask; a
        # paused connection's readability stays suppressed here so the
        # one-shot protocol holds on every backend.
        if mask & READ and id(handle) not in self._paused:
            ready.append(ReadableEvent(handle=handle))
        if mask & WRITE:
            ready.append(WritableEvent(handle=handle))

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._poller.close()
        self._wake_recv.close()
        self._wake_send.close()


class EventSourceDecorator(EventSource):
    """Base decorator: defaults delegate everything to the inner source."""

    def __init__(self, inner: EventSource):
        self.inner = inner

    def poll(self, timeout: Optional[float] = None) -> List[Event]:
        return self.inner.poll(timeout)

    def register(self, handle: Handle, **interest) -> None:
        self.inner.register(handle, **interest)

    def deregister(self, handle: Handle) -> None:
        self.inner.deregister(handle)

    def force_ready(self, handle: Handle) -> None:
        self.inner.force_ready(handle)

    def wakeup(self) -> None:
        self.inner.wakeup()

    def close(self) -> None:
        self.inner.close()


class TimerEventSource(EventSourceDecorator):
    """Adds one-shot timers.  ``schedule(delay, payload)`` returns a
    cancellation token; fired timers surface as :class:`TimerEvent`.

    Timers live on a hashed :class:`~repro.runtime.timerwheel.TimerWheel`
    — schedule, cancel and re-arm are O(1); a fire happens on the first
    poll after the timer's wheel-tick boundary (never early, late by
    less than one wheel tick).
    """

    def __init__(self, inner: EventSource, clock=time.monotonic,
                 wheel: Optional[TimerWheel] = None):
        super().__init__(inner)
        self._clock = clock
        self.wheel = wheel if wheel is not None else TimerWheel(
            tick=0.005, slots=512, clock=clock)

    def schedule(self, delay: float, payload=None) -> int:
        token = self.wheel.schedule(delay, payload)
        self.wakeup()
        return token

    def cancel(self, token: int) -> None:
        self.wheel.cancel(token)

    def poll(self, timeout: Optional[float] = None) -> List[Event]:
        deadline = self.wheel.next_deadline()
        if deadline is not None:
            remaining = max(0.0, deadline - self._clock())
            timeout = remaining if timeout is None else min(timeout, remaining)
        events = self.inner.poll(timeout)
        for _deadline, _token, payload in self.wheel.advance(self._clock()):
            events.append(TimerEvent(payload=payload))
        return events


class QueueEventSource(EventSourceDecorator):
    """Adds application-posted events (the paper's "other application
    components" source).  ``post`` is thread-safe and wakes the poll."""

    def __init__(self, inner: EventSource):
        super().__init__(inner)
        self._queue: deque = deque()
        self._lock = threading.Lock()

    def post(self, event: Event) -> None:
        with self._lock:
            self._queue.append(event)
        self.wakeup()

    def pending(self) -> int:
        with self._lock:
            return len(self._queue)

    def poll(self, timeout: Optional[float] = None) -> List[Event]:
        with self._lock:
            has_pending = bool(self._queue)
        events = self.inner.poll(0.0 if has_pending else timeout)
        with self._lock:
            while self._queue:
                events.append(self._queue.popleft())
        return events
