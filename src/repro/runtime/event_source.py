"""Event Sources (Decorator pattern), as section IV describes:

    "an Event Source component that complies with the Decorator pattern
    is added.  Besides managing multiple event sources, it is also
    responsible for registering and deregistering Event Handlers and
    polling ready events."

The concrete base source is :class:`SocketEventSource` (Java-NIO-style
readiness selection via :mod:`selectors`).  Additional sources wrap an
inner source decorator-style — :class:`TimerEventSource` and
:class:`QueueEventSource` merge their own ready events into whatever the
inner source returns, and clamp the poll timeout so their events are not
delayed.  New kinds of sources are added by writing one more decorator,
which is the extensibility argument the paper makes.
"""

from __future__ import annotations

import heapq
import itertools
import selectors
import threading
import time
from collections import deque
from typing import Callable, List, Optional

from repro.runtime.events import (
    AcceptEvent,
    Event,
    ReadableEvent,
    TimerEvent,
    WritableEvent,
)
from repro.runtime.handles import Handle, ListenHandle, SocketHandle

__all__ = [
    "EventSource",
    "NullEventSource",
    "SocketEventSource",
    "EventSourceDecorator",
    "TimerEventSource",
    "QueueEventSource",
]


class EventSource:
    """Interface: poll for ready events, manage handle registration."""

    def poll(self, timeout: Optional[float] = None) -> List[Event]:
        raise NotImplementedError

    def register(self, handle: Handle, **interest) -> None:
        raise NotImplementedError

    def deregister(self, handle: Handle) -> None:
        raise NotImplementedError

    def wakeup(self) -> None:
        """Interrupt a blocking poll from another thread (no-op default)."""

    def close(self) -> None:
        pass


class NullEventSource(EventSource):
    """Terminal inner source for decorator chains with no socket base."""

    def poll(self, timeout: Optional[float] = None) -> List[Event]:
        if timeout:
            time.sleep(min(timeout, 0.01))
        return []

    def register(self, handle: Handle, **interest) -> None:
        raise TypeError("NullEventSource accepts no handles")

    def deregister(self, handle: Handle) -> None:
        raise TypeError("NullEventSource accepts no handles")


class SocketEventSource(EventSource):
    """Readiness selection over socket handles.

    * ``ListenHandle`` registration yields :class:`AcceptEvent`.
    * ``SocketHandle`` registration yields :class:`ReadableEvent` always
      and :class:`WritableEvent` while the handle has buffered output.

    A self-pipe (socketpair) lets other threads interrupt a blocking
    poll — needed when an Event Processor thread queues output bytes on
    a connection and the dispatcher must start watching writability.
    """

    def __init__(self):
        self._selector = selectors.DefaultSelector()
        # RLock: poll and mask updates may nest through callbacks.
        self._lock = threading.RLock()
        self._handles: dict = {}
        self._paused: set = set()
        self._unwatched: set = set()
        import socket as _socket

        self._wake_recv, self._wake_send = _socket.socketpair()
        self._wake_recv.setblocking(False)
        self._selector.register(self._wake_recv, selectors.EVENT_READ, None)
        self._closed = False

    def register(self, handle: Handle, **interest) -> None:
        if not isinstance(handle, (SocketHandle, ListenHandle)):
            raise TypeError(f"cannot select on {type(handle).__name__}")
        with self._lock:
            fd = handle.fileno()
            if fd in self._handles:
                # A stale registration (socket closed without a
                # deregister) must not kill the dispatcher when the
                # kernel reuses the fd: drop it and register the new
                # handle in its place.
                self._paused.discard(id(self._handles[fd]))
                self._unwatched.discard(fd)
                try:
                    self._selector.unregister(fd)
                except (KeyError, ValueError):
                    pass
            self._handles[fd] = handle
            self._selector.register(fd, selectors.EVENT_READ, handle)

    def deregister(self, handle: Handle) -> None:
        with self._lock:
            fd = handle.fileno()
            self._handles.pop(fd, None)
            self._paused.discard(id(handle))
            self._unwatched.discard(fd)
            try:
                self._selector.unregister(fd)
            except (KeyError, ValueError):
                pass

    def update_interest(self, handle: SocketHandle) -> None:
        """Re-arm write interest to match the handle's buffered output."""
        self._apply_mask(handle)

    def pause(self, handle: SocketHandle) -> None:
        """One-shot semantics: stop watching readability until resumed.

        Called by the dispatcher when it hands a ReadableEvent to the
        Event Processor, so (a) level-triggered readiness does not storm
        duplicate events while the processor catches up and (b) two
        processor threads never run the same connection concurrently.
        """
        with self._lock:
            self._paused.add(id(handle))
        self._apply_mask(handle)

    def resume(self, handle: SocketHandle) -> None:
        """Re-arm readability after the processor finished the event."""
        with self._lock:
            self._paused.discard(id(handle))
        if handle.closed:
            return
        self._apply_mask(handle)
        self.wakeup()

    def _apply_mask(self, handle: SocketHandle) -> None:
        if handle.closed:
            return
        with self._lock:
            fd = handle.fileno()
            if fd not in self._handles:
                return  # deregistered entirely
            read = id(handle) not in self._paused
            mask = (selectors.EVENT_READ if read else 0) | \
                   (selectors.EVENT_WRITE if handle.wants_write else 0)
            watched = fd not in self._unwatched
            try:
                if mask and watched:
                    self._selector.modify(fd, mask, handle)
                elif mask:
                    # selectors cannot hold a zero mask, so a fully-paused
                    # fd was unregistered; re-add it now.
                    self._selector.register(fd, mask, handle)
                    self._unwatched.discard(fd)
                elif watched:
                    self._selector.unregister(fd)
                    self._unwatched.add(fd)
            except (KeyError, ValueError, OSError):
                pass

    def wakeup(self) -> None:
        try:
            self._wake_send.send(b"\x00")
        except OSError:  # pragma: no cover - closing race
            pass

    def poll(self, timeout: Optional[float] = None) -> List[Event]:
        if self._closed:
            return []
        ready: List[Event] = []
        for key, mask in self._selector.select(timeout):
            if key.data is None:  # the wakeup pipe
                try:
                    while self._wake_recv.recv(4096):
                        pass
                except BlockingIOError:
                    pass
                continue
            handle = key.data
            if isinstance(handle, ListenHandle):
                ready.append(AcceptEvent(handle=handle))
            else:
                if mask & selectors.EVENT_READ:
                    ready.append(ReadableEvent(handle=handle))
                if mask & selectors.EVENT_WRITE:
                    ready.append(WritableEvent(handle=handle))
        return ready

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._selector.close()
        self._wake_recv.close()
        self._wake_send.close()


class EventSourceDecorator(EventSource):
    """Base decorator: defaults delegate everything to the inner source."""

    def __init__(self, inner: EventSource):
        self.inner = inner

    def poll(self, timeout: Optional[float] = None) -> List[Event]:
        return self.inner.poll(timeout)

    def register(self, handle: Handle, **interest) -> None:
        self.inner.register(handle, **interest)

    def deregister(self, handle: Handle) -> None:
        self.inner.deregister(handle)

    def wakeup(self) -> None:
        self.inner.wakeup()

    def close(self) -> None:
        self.inner.close()


class TimerEventSource(EventSourceDecorator):
    """Adds one-shot timers.  ``schedule(delay, payload)`` returns a
    cancellation token; fired timers surface as :class:`TimerEvent`."""

    def __init__(self, inner: EventSource, clock=time.monotonic):
        super().__init__(inner)
        self._clock = clock
        self._heap: list = []
        self._seq = itertools.count()
        self._cancelled: set = set()
        self._lock = threading.Lock()

    def schedule(self, delay: float, payload=None) -> int:
        if delay < 0:
            raise ValueError("negative timer delay")
        token = next(self._seq)
        with self._lock:
            heapq.heappush(self._heap, (self._clock() + delay, token, payload))
        self.wakeup()
        return token

    def cancel(self, token: int) -> None:
        with self._lock:
            self._cancelled.add(token)

    def _next_deadline(self) -> Optional[float]:
        with self._lock:
            while self._heap and self._heap[0][1] in self._cancelled:
                self._cancelled.discard(heapq.heappop(self._heap)[1])
            return self._heap[0][0] if self._heap else None

    def poll(self, timeout: Optional[float] = None) -> List[Event]:
        deadline = self._next_deadline()
        if deadline is not None:
            remaining = max(0.0, deadline - self._clock())
            timeout = remaining if timeout is None else min(timeout, remaining)
        events = self.inner.poll(timeout)
        now = self._clock()
        with self._lock:
            while self._heap and self._heap[0][0] <= now:
                _, token, payload = heapq.heappop(self._heap)
                if token in self._cancelled:
                    self._cancelled.discard(token)
                    continue
                events.append(TimerEvent(payload=payload))
        return events


class QueueEventSource(EventSourceDecorator):
    """Adds application-posted events (the paper's "other application
    components" source).  ``post`` is thread-safe and wakes the poll."""

    def __init__(self, inner: EventSource):
        super().__init__(inner)
        self._queue: deque = deque()
        self._lock = threading.Lock()

    def post(self, event: Event) -> None:
        with self._lock:
            self._queue.append(event)
        self.wakeup()

    def pending(self) -> int:
        with self._lock:
            return len(self._queue)

    def poll(self, timeout: Optional[float] = None) -> List[Event]:
        with self._lock:
            has_pending = bool(self._queue)
        events = self.inner.poll(0.0 if has_pending else timeout)
        with self._lock:
            while self._queue:
                events.append(self._queue.popleft())
        return events
