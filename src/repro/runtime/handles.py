"""Handles: the I/O endpoints events refer to.

A *Handle* wraps an OS-level endpoint (socket, file) behind the small
interface the dispatcher and event handlers need.  Table 2 lists
``Handle`` (whose generated body depends on O1) and ``FileHandle``
(exists when O4=Asynchronous, body depends on O6).
"""

from __future__ import annotations

import os
import socket
import threading
from typing import Optional

from repro.obs.flight import GLOBAL as GLOBAL_FLIGHT
from repro.obs.tracing import next_trace_id

__all__ = ["Handle", "SocketHandle", "ListenHandle", "FileHandle"]


class Handle:
    """Base handle: identity plus liveness."""

    def __init__(self, name: str = ""):
        self.name = name
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    def fileno(self) -> int:
        raise NotImplementedError

    def close(self) -> None:
        self._closed = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return f"<{type(self).__name__} {self.name or id(self):x} {state}>"


class SocketHandle(Handle):
    """A connected, non-blocking TCP socket."""

    def __init__(self, sock: socket.socket, name: str = ""):
        super().__init__(name or _peer_name(sock))
        self.sock = sock
        sock.setblocking(False)
        #: bytes produced by the application, waiting for writability
        self.out_buffer = bytearray()
        #: monotonic timestamp of the last I/O (idle reaping, option O7)
        self.last_activity = 0.0
        #: end-to-end trace id, stamped at the accept boundary and
        #: carried through dispatch, shard placement and the write path
        self.trace_id = next_trace_id()
        # Cached so a fault-closed socket (fileno() == -1) can still be
        # deregistered; -1 for the fake sockets tests wire in, which
        # never meet a selector.
        fileno = getattr(sock, "fileno", None)
        self._fd = fileno() if fileno is not None else -1
        # Serialises concurrent flushers: a completion thread inside
        # send_bytes and the dispatcher answering a WritableEvent would
        # otherwise both snapshot out_buffer and put the same bytes on
        # the wire twice.
        self._send_lock = threading.Lock()
        #: read :class:`~repro.runtime.buffers.BufferPool` — attached by
        #: the event source at registration; None reads into a private
        #: buffer instead (handles never registered anywhere)
        self.read_pool = None
        self._read_owner = None     # PooledBuffer checked out of read_pool
        self._read_buf: Optional[bytearray] = None
        # Guards the recv buffer against the close path releasing it to
        # the pool mid-read (which would let a new owner scribble over
        # bytes still being parsed).  Reentrant: recv_into_buffer holds
        # it across try_recv plus the copy-out.
        self._read_lock = threading.RLock()

    def fileno(self) -> int:
        # Cached at creation: a fault-closed socket reports -1, and the
        # event source must still be able to deregister the real fd
        # before the kernel hands it to a new connection.
        return self._fd

    def try_recv(self, max_bytes: int = 65536) -> Optional[bytes]:
        """Non-blocking read: received bytes (as a ``memoryview`` over
        the connection's reusable read buffer — copy before the next
        call), b'' on orderly EOF, None when the socket would block.

        ``recv_into`` a pooled buffer replaces the old fresh-``bytes``
        per call: one buffer per live connection, checked out of the
        event source's read pool on first use and returned at close.
        """
        with self._read_lock:
            buf = self._read_buf
            if buf is None:
                if self.read_pool is not None:
                    self._read_owner = self.read_pool.acquire(max_bytes)
                    buf = self._read_owner.data
                else:
                    # Full-sized even when this read is capped (fault
                    # injection passes tiny max_bytes): the buffer is
                    # attached for the connection's lifetime.
                    buf = bytearray(max(max_bytes, 65536))
                self._read_buf = buf
            limit = min(max_bytes, len(buf))
            try:
                n = self.sock.recv_into(memoryview(buf)[:limit])
            except BlockingIOError:
                return None
            except (ConnectionResetError, BrokenPipeError):
                return b""
            return memoryview(buf)[:n]

    def recv_into_buffer(self, sink, max_bytes: int = 65536) -> Optional[int]:
        """:meth:`try_recv` plus copy-out into ``sink`` under the read
        lock, so a concurrent close cannot release the pooled buffer to
        a new owner between the recv and the copy.  Returns the byte
        count, 0 on EOF, None when the socket would block.  Dispatches
        through ``try_recv`` so fault-injecting subclasses stay in the
        loop."""
        with self._read_lock:
            chunk = self.try_recv(max_bytes)
            if chunk is None:
                return None
            n = len(chunk)
            if n:
                sink.extend(chunk)
            return n

    def release_read_buffer(self) -> None:
        """Return the pooled read buffer (idempotent; called at close
        and on event-source deregistration)."""
        with self._read_lock:
            owner, self._read_owner = self._read_owner, None
            self._read_buf = None
        if owner is not None:
            owner.release()

    def try_send(self) -> int:
        """Flush as much of ``out_buffer`` as the kernel accepts; returns
        bytes sent.  Raises nothing: reset peers count as flushed-zero
        with the handle closed.

        A segmented :class:`~repro.runtime.buffers.OutBuffer` (the O15
        zero-copy write path) is drained with a scatter-gather
        ``sendmsg`` over its memoryview segments; the legacy
        ``bytearray`` path is unchanged.
        """
        with self._send_lock:
            out = self.out_buffer
            if not out:
                return 0
            iov = getattr(out, "iov", None)
            try:
                if iov is None:
                    n = self.sock.send(bytes(out))
                elif hasattr(self.sock, "sendmsg"):
                    n = self.sock.sendmsg(iov())
                else:  # pragma: no cover - platforms without sendmsg
                    n = self.sock.send(iov(1)[0])
            except BlockingIOError:
                return 0
            except (ConnectionResetError, BrokenPipeError):
                self.close()
                return 0
            del out[:n]
            return n

    @property
    def wants_write(self) -> bool:
        return bool(self.out_buffer) and not self._closed

    def close(self) -> None:
        if not self._closed:
            try:
                self.sock.close()
            except OSError:  # pragma: no cover - platform dependent
                pass
        super().close()
        self.release_read_buffer()


class ListenHandle(Handle):
    """A listening TCP socket (the Acceptor's handle).

    ``handle_cls`` lets generated frameworks wrap accepted sockets in
    their own Handle subclass (Table 2's generated ``Handle``).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 backlog: int = 128, handle_cls: type = None,
                 sock: socket.socket = None, reuse_port: bool = False):
        if sock is None:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            if reuse_port and hasattr(socket, "SO_REUSEPORT"):
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            sock.bind((host, port))
            sock.listen(backlog)
        else:
            # Adopt an already-bound, already-listening socket — the
            # multi-process (O16) path, where the supervisor binds one
            # SO_REUSEPORT socket and passes its fd to every worker.
            sock.listen(backlog)
        sock.setblocking(False)
        self.sock = sock
        self.backlog = backlog
        self.handle_cls = handle_cls or SocketHandle
        #: flight recorder receiving the accept events; recording here
        #: (not in the Acceptor) covers generated frameworks whose own
        #: AcceptorEventHandler drains the backlog directly.  An owning
        #: Acceptor repoints this at its server's recorder.
        self.flight = GLOBAL_FLIGHT
        super().__init__(name=f"listen:{self.address[1]}")
        self._fd = sock.fileno()

    @property
    def address(self) -> tuple:
        return self.sock.getsockname()

    @property
    def port(self) -> int:
        return self.address[1]

    def fileno(self) -> int:
        return self._fd  # cached: stays valid for deregistration

    def try_accept(self) -> Optional[SocketHandle]:
        """Accept one pending connection, or None when none is pending."""
        try:
            conn, _addr = self.sock.accept()
        except BlockingIOError:
            return None
        handle = self.handle_cls(conn)
        self.flight.record("accept", handle.name,
                           getattr(handle, "trace_id", 0))
        return handle

    def close(self) -> None:
        if not self._closed:
            try:
                self.sock.close()
            except OSError:  # pragma: no cover
                pass
        super().close()


class FileHandle(Handle):
    """A disk file opened for reading through the Proactor emulation.

    File operations block, so FileHandles are only touched from the file
    I/O thread pool (:mod:`repro.runtime.file_io`); a lock guards the
    position against concurrent reads on the same handle.
    """

    def __init__(self, path: str):
        super().__init__(name=path)
        self.path = path
        self._fh = open(path, "rb")
        self._lock = threading.Lock()
        self.size = os.fstat(self._fh.fileno()).st_size

    def fileno(self) -> int:
        return self._fh.fileno()

    def read_at(self, offset: int, length: int) -> bytes:
        with self._lock:
            self._fh.seek(offset)
            return self._fh.read(length)

    def read_all(self) -> bytes:
        return self.read_at(0, self.size)

    def close(self) -> None:
        if not self._closed:
            self._fh.close()
        super().close()


def _peer_name(sock: socket.socket) -> str:
    try:
        host, port = sock.getpeername()[:2]
        return f"{host}:{port}"
    except OSError:
        return "unconnected"
