"""Event-driven server runtime: the library layer generated N-Server
frameworks import.

Synthesises the four patterns from section II of the paper: Reactor
(readiness selection + dispatch), Proactor and Asynchronous Completion
Tokens (emulated non-blocking file I/O), and Acceptor-Connector
(connection establishment).  Feature subsystems map to template options:
scheduler (O8), overload (O9), profiling (O11), tracing (O10/O12),
idle (O7).
"""

from repro.runtime.acceptor import Acceptor, Connector
from repro.runtime.buffers import (
    BufferPool,
    BufferPoolStats,
    OutBuffer,
    PooledBuffer,
    segment_bytes,
)
from repro.runtime.communicator import CLOSE, PENDING, Communicator, ServerHooks
from repro.runtime.container import Container
from repro.runtime.degradation import (
    AdaptiveController,
    BrownoutController,
    CircuitBreaker,
    CircuitOpenError,
    ClientRateLimiter,
    RetryBudget,
    ShedDecision,
    SheddingPolicy,
    SojournQueue,
    TokenBucket,
    hill_climb,
    reject_handle,
    rejection_response,
)
from repro.runtime.deployment import (
    STATS_SOCKET_ENV,
    ProcessSupervisor,
    adopted_listen_socket,
    cluster_status_fields,
    generated_worker,
    generated_worker_args,
    in_worker_process,
    reactor_worker,
    worker_listen_handle,
)
from repro.runtime.dispatcher import EventDispatcher
from repro.runtime.event_source import (
    EventSource,
    EventSourceDecorator,
    NullEventSource,
    QueueEventSource,
    SocketEventSource,
    TimerEventSource,
)
from repro.runtime.events import (
    AcceptEvent,
    AsynchronousCompletionToken,
    CompletionEvent,
    ConnectEvent,
    Event,
    EventKind,
    FileOpenEvent,
    FileReadEvent,
    ReadableEvent,
    ShutdownEvent,
    TimerEvent,
    UserEvent,
    WritableEvent,
)
from repro.runtime.file_io import AsyncFileIO
from repro.runtime.handles import FileHandle, Handle, ListenHandle, SocketHandle
from repro.runtime.idle import IdleConnectionReaper
from repro.runtime.overload import OverloadController, Watermark
from repro.runtime.poller import (
    EpollPoller,
    Poller,
    SelectPoller,
    available_pollers,
    make_poller,
)
from repro.runtime.processor import EventProcessor, ProcessorController
from repro.runtime.profiling import NULL_PROFILER, NullProfiler, Profiler, ServerProfile
from repro.runtime.resilience import (
    DeadlineMonitor,
    DeadlinePolicy,
    EventQuarantine,
    WorkerSupervisor,
    is_transient_accept_error,
)
from repro.runtime.scheduler import FifoEventQueue, QuotaPriorityQueue
from repro.runtime.server import ReactorServer, RuntimeConfig
from repro.runtime.sharding import (
    ConnectionHashPolicy,
    LeastConnectionsPolicy,
    ReactorShard,
    RoundRobinPolicy,
    ShardedReactorServer,
    ShardPolicy,
    make_shard_policy,
)
from repro.runtime.timerwheel import TimerWheel
from repro.runtime.tracing import (
    NULL_LOG,
    NULL_TRACER,
    EventTracer,
    NullLog,
    NullTracer,
    ServerLog,
    TraceRecord,
)

__all__ = [
    "Acceptor",
    "AcceptEvent",
    "AdaptiveController",
    "AsyncFileIO",
    "AsynchronousCompletionToken",
    "BrownoutController",
    "BufferPool",
    "BufferPoolStats",
    "CLOSE",
    "CircuitBreaker",
    "CircuitOpenError",
    "ClientRateLimiter",
    "Communicator",
    "CompletionEvent",
    "ConnectEvent",
    "ConnectionHashPolicy",
    "Connector",
    "Container",
    "DeadlineMonitor",
    "DeadlinePolicy",
    "EpollPoller",
    "Event",
    "EventDispatcher",
    "EventKind",
    "EventProcessor",
    "EventQuarantine",
    "EventSource",
    "EventSourceDecorator",
    "EventTracer",
    "FifoEventQueue",
    "FileHandle",
    "FileOpenEvent",
    "FileReadEvent",
    "Handle",
    "IdleConnectionReaper",
    "LeastConnectionsPolicy",
    "ListenHandle",
    "NULL_LOG",
    "NULL_PROFILER",
    "NULL_TRACER",
    "NullEventSource",
    "NullLog",
    "NullProfiler",
    "NullTracer",
    "OutBuffer",
    "OverloadController",
    "PENDING",
    "Poller",
    "PooledBuffer",
    "ProcessSupervisor",
    "ProcessorController",
    "Profiler",
    "QueueEventSource",
    "QuotaPriorityQueue",
    "ReactorServer",
    "ReactorShard",
    "ReadableEvent",
    "RetryBudget",
    "RoundRobinPolicy",
    "RuntimeConfig",
    "SelectPoller",
    "ServerHooks",
    "ServerLog",
    "ServerProfile",
    "ShardPolicy",
    "ShardedReactorServer",
    "ShedDecision",
    "SheddingPolicy",
    "ShutdownEvent",
    "STATS_SOCKET_ENV",
    "SocketEventSource",
    "SocketHandle",
    "SojournQueue",
    "TimerEvent",
    "TimerEventSource",
    "TimerWheel",
    "TokenBucket",
    "TraceRecord",
    "UserEvent",
    "Watermark",
    "WorkerSupervisor",
    "WritableEvent",
    "adopted_listen_socket",
    "available_pollers",
    "cluster_status_fields",
    "generated_worker",
    "generated_worker_args",
    "hill_climb",
    "in_worker_process",
    "is_transient_accept_error",
    "make_poller",
    "make_shard_policy",
    "reactor_worker",
    "reject_handle",
    "rejection_response",
    "segment_bytes",
    "worker_listen_handle",
]
