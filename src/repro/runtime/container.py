"""Container Component (Table 2): owns the live Communicators.

Routes per-handle readiness events to the right Communicator and gives
the idle reaper / shutdown path one place to find every connection.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, Optional

from repro.runtime.communicator import Communicator
from repro.runtime.events import Event

__all__ = ["Container"]


class Container:
    """Thread-safe handle -> Communicator registry (keyed by handle
    identity, which stays valid even after the socket closes)."""

    def __init__(self):
        self._lock = threading.Lock()
        self._by_handle: Dict[int, Communicator] = {}

    def add(self, conn: Communicator) -> None:
        with self._lock:
            self._by_handle[id(conn.handle)] = conn

    def remove(self, conn: Communicator) -> None:
        with self._lock:
            self._by_handle.pop(id(conn.handle), None)

    def lookup(self, handle) -> Optional[Communicator]:
        with self._lock:
            return self._by_handle.get(id(handle))

    def connections(self) -> Iterable[Communicator]:
        with self._lock:
            return list(self._by_handle.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._by_handle)

    # -- dispatcher targets -------------------------------------------------
    def route_readable(self, event: Event) -> None:
        conn = self.lookup(event.handle)
        if conn is not None:
            conn.on_readable(event)

    def route_writable(self, event: Event) -> None:
        conn = self.lookup(event.handle)
        if conn is not None:
            conn.on_writable(event)

    def close_all(self) -> None:
        for conn in self.connections():
            conn.close()
