"""Multi-reactor sharding: one accept plane feeding N reactor shards.

The paper's servers run a single reactor loop; the classic step past
one core is N reactors behind one listening socket.  Here a dedicated
accept plane (its own Event Source plus a single-threaded dispatcher)
drains the kernel backlog through one :class:`Acceptor` and hands each
accepted connection to one of N :class:`ReactorShard`\\ s — each a full
:class:`~repro.runtime.server.ReactorServer` (own Event Source, Event
Processor pool, scheduler queue, idle reaper, resilience runtime) that
simply never listens.  Placement is a pluggable :class:`ShardPolicy`:
round-robin, least-connections, or connection-hash affinity.

The generated counterpart is the ``Sharding`` class emitted by the
template's ``mod_sharding.py`` when option O14 ("Reactor shards") is
greater than one.
"""

from __future__ import annotations

import time
import zlib
from typing import Callable, List, Optional, Sequence, Union

from repro.lint.locks import access, make_lock
from repro.obs.flight import FlightRecorder
from repro.obs.tracing import render_trace_report
from repro.obs.exposition import (
    render_status_auto,
    render_status_html,
    sharded_status_fields,
)
from repro.runtime.acceptor import Acceptor
from repro.runtime.communicator import Communicator, ServerHooks
from repro.runtime.dispatcher import EventDispatcher
from repro.runtime.event_source import SocketEventSource
from repro.runtime.events import EventKind
from repro.runtime.handles import ListenHandle, SocketHandle
from repro.runtime.server import ReactorServer, RuntimeConfig

__all__ = [
    "ShardPolicy",
    "RoundRobinPolicy",
    "LeastConnectionsPolicy",
    "ConnectionHashPolicy",
    "make_shard_policy",
    "ReactorShard",
    "ShardedReactorServer",
]


class ShardPolicy:
    """Chooses the shard index for each accepted connection."""

    name = "policy"

    def __init__(self, shard_count: int):
        if shard_count < 1:
            raise ValueError("shard_count must be >= 1")
        self.shard_count = shard_count

    def pick(self, handle) -> int:
        """The shard index for one accepted connection handle."""
        raise NotImplementedError


class RoundRobinPolicy(ShardPolicy):
    """Strict rotation — uniform placement regardless of lifetime."""

    name = "round-robin"

    def __init__(self, shard_count: int):
        super().__init__(shard_count)
        self._next = 0
        self._lock = make_lock("RoundRobinPolicy")

    def pick(self, handle) -> int:
        """Next index in strict rotation (lock-protected cursor)."""
        with self._lock:
            access(self, "_next")
            index = self._next
            self._next = (index + 1) % self.shard_count
        return index


class LeastConnectionsPolicy(ShardPolicy):
    """Place on the shard with the fewest open connections (ties go to
    the lowest shard id).  ``loads`` holds one zero-argument probe per
    shard returning its current connection count."""

    name = "least-connections"

    def __init__(self, shard_count: int,
                 loads: Sequence[Callable[[], int]]):
        super().__init__(shard_count)
        if len(loads) != shard_count:
            raise ValueError("one load probe per shard required")
        self.loads = list(loads)

    def pick(self, handle) -> int:
        """Index of the least-loaded shard; lowest id wins ties."""
        return min(range(self.shard_count),
                   key=lambda i: (self.loads[i](), i))


class ConnectionHashPolicy(ShardPolicy):
    """Peer-address affinity: the same client host always lands on the
    same shard (CRC32 of the peer address — stable across processes,
    unlike ``hash`` under ``PYTHONHASHSEED``)."""

    name = "connection-hash"

    def pick(self, handle) -> int:
        """Stable index from the peer host's CRC32."""
        peer = getattr(handle, "name", "") or ""
        host = peer.rsplit(":", 1)[0]
        return zlib.crc32(host.encode("utf-8", "replace")) % self.shard_count


def make_shard_policy(name: str, shard_count: int,
                      loads: Optional[Sequence[Callable[[], int]]] = None
                      ) -> ShardPolicy:
    """Policy factory keyed by the names the CLI and the generated
    ``ServerConfiguration.shard_policy`` knob use."""
    if name in ("round-robin", "rr"):
        return RoundRobinPolicy(shard_count)
    if name in ("least-connections", "least"):
        if loads is None:
            raise ValueError("least-connections needs per-shard load probes")
        return LeastConnectionsPolicy(shard_count, loads)
    if name in ("connection-hash", "hash"):
        return ConnectionHashPolicy(shard_count)
    raise ValueError(f"unknown shard policy {name!r}")


class ReactorShard(ReactorServer):
    """A ReactorServer that never listens: connections are *adopted*
    from the shared accept plane instead of accepted locally."""

    def __init__(self, hooks: ServerHooks, config: RuntimeConfig,
                 shard_id: int = 0, **kwargs):
        super().__init__(hooks, config, **kwargs)
        self.shard_id = shard_id
        # the per-server recorder is built by ReactorServer.__init__;
        # renaming it makes every dump file say which shard it came from
        self.flight.name = f"shard-{shard_id}"
        self.adopted = 0
        self._adopt_lock = make_lock("ReactorShard")

    def _open_acceptor(self) -> None:
        """No listen socket: the accept plane feeds this shard."""

    def adopt(self, handle: SocketHandle) -> Communicator:
        """Take ownership of an accepted connection: build its
        Communicator and watch the handle on this shard's own source."""
        handle.last_activity = time.monotonic()
        if self.overload is not None:
            self.overload.connection_opened()
        self.profiler.connection_accepted()
        conn = self._make_communicator(handle)
        self.socket_source.register(handle)
        # registration happened off the shard's dispatcher thread — kick
        # the poll loop so the handle is watched immediately
        self.socket_source.wakeup()
        with self._adopt_lock:
            access(self, "adopted")
            self.adopted += 1
        return conn


class _ShardGate:
    """Overload facade for the accept plane: keep accepting while any
    shard will take the connection; per-shard controllers do their own
    open/close accounting in :meth:`ReactorShard.adopt`."""

    def __init__(self, shards: Sequence[ReactorShard]):
        self._shards = shards

    def accepting(self) -> bool:
        """True while any shard will still take a connection."""
        return any(s.overload is None or s.overload.accepting()
                   for s in self._shards)

    def connection_opened(self) -> None:
        """Per-shard controllers account in ``adopt``; nothing to do."""
        pass

    def at_connection_limit(self) -> bool:
        """Is the connection cap the binding constraint on every shard?
        (The O17 shedding policy uses this to pick a reason code.)"""
        gated = [s.overload for s in self._shards if s.overload is not None]
        return bool(gated) and all(g.at_connection_limit() for g in gated)

    def overloaded_queues(self) -> list:
        """Tripped queues across all shards, shard-qualified names."""
        names = []
        for shard in self._shards:
            if shard.overload is not None:
                names.extend(
                    f"shard{shard.shard_id}:{name}"
                    for name in shard.overload.overloaded_queues())
        return names


class ShardedReactorServer:
    """N reactor shards behind one Acceptor.

    Mirrors the :class:`ReactorServer` surface (``start`` / ``stop`` /
    ``drain`` / ``port`` / context manager) so anything driving one
    shape drives the other.  Per-shard obs registries aggregate through
    :func:`~repro.obs.exposition.sharded_status_fields`; O13 resilience
    (deadlines, supervision, quarantine) runs independently inside each
    shard, and :meth:`drain` is a barrier across all of them.
    """

    def __init__(self, hooks: ServerHooks, config: RuntimeConfig,
                 shards: int = 2,
                 policy: Union[str, ShardPolicy] = "round-robin",
                 host: str = "127.0.0.1", port: int = 0,
                 handle_cls: Optional[type] = None):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.hooks = hooks
        self.config = config
        self.host = host
        self.handle_cls = handle_cls
        self._requested_port = port
        self.shards: List[ReactorShard] = [
            ReactorShard(hooks, config, shard_id=i) for i in range(shards)]
        for shard in self.shards:
            shard.sharding = self
        if isinstance(policy, ShardPolicy):
            self.router = policy
        else:
            self.router = make_shard_policy(
                policy, shards,
                loads=[(lambda s=s: len(s.container)) for s in self.shards])
        self.accepted_per_shard = [0] * shards
        #: the accept plane's own lifecycle ring — shard rings only see a
        #: connection after placement, so accept/shed events land here
        self.flight = FlightRecorder(capacity=config.flight_capacity,
                                     name="accept-plane",
                                     dump_dir=config.flight_dump_dir)
        self.accept_source = SocketEventSource(poller=config.poller)
        self.accept_dispatcher = EventDispatcher(self.accept_source, threads=1)
        self.listen: Optional[ListenHandle] = None
        self.acceptor: Optional[Acceptor] = None
        self._gate = (_ShardGate(self.shards)
                      if any(s.overload is not None for s in self.shards)
                      else None)
        #: O17: the accept plane runs its own SheddingPolicy over the
        #: shard gate — rejection happens before placement, so a shed
        #: storm never touches a shard's event sources at all
        self.shedding = None
        if config.degradation:
            from repro.runtime.degradation import (
                ClientRateLimiter,
                SheddingPolicy,
                rejection_response,
            )
            self.shedding = SheddingPolicy(
                overload=self._gate,
                limiter=ClientRateLimiter(
                    rate=config.shed_rate,
                    burst=config.shed_burst,
                    max_clients=config.shed_max_clients),
                classes=dict(config.shed_classes),
                priority_floor=config.shed_priority_floor,
                retry_after=config.shed_retry_after,
                reject_payload=rejection_response(config.shed_retry_after),
                on_overload=config.shed_on_overload,
                flight=self.flight,
            )
        self._started = False
        self._start_time: Optional[float] = None
        self._lock = make_lock("ShardedReactorServer")

    # -- accept plane -----------------------------------------------------
    def _distribute(self, handle: SocketHandle) -> None:
        """Place one accepted handle on a shard and adopt it there."""
        shard = self.shards[self.router.pick(handle)]
        if shard.overload is not None and not shard.overload.accepting():
            # the policy's pick is overloaded — reroute to the least
            # loaded shard still accepting (the gate guarantees one)
            open_shards = [s for s in self.shards
                           if s.overload is None or s.overload.accepting()]
            if open_shards:
                shard = min(open_shards,
                            key=lambda s: (len(s.container), s.shard_id))
        with self._lock:
            access(self, "accepted_per_shard")
            self.accepted_per_shard[shard.shard_id] += 1
        shard.flight.record("adopt", f"shard={shard.shard_id} {handle.name}",
                            getattr(handle, "trace_id", 0))
        shard.adopt(handle)

    # -- lifecycle --------------------------------------------------------
    @property
    def port(self) -> int:
        """The accept plane's bound port (server must be started)."""
        if self.listen is None:
            raise RuntimeError("server not started")
        return self.listen.port

    def start(self) -> None:
        """Start every shard, then open the shared accept plane."""
        with self._lock:
            access(self, "_started")
            if self._started:
                return
            self._started = True
        for shard in self.shards:
            shard.start()
        self.listen = ListenHandle(self.host, self._requested_port,
                                   handle_cls=self.handle_cls)
        self.acceptor = Acceptor(
            self.listen,
            self.accept_source,
            on_connection=self._distribute,
            overload=self._gate,
            register_accepted=False,
            flight=self.flight,
            shedding=self.shedding,
            accept_batch=self.config.accept_batch,
        )
        self.accept_dispatcher.route(EventKind.ACCEPT, self.acceptor.handle)
        self.acceptor.open()
        self.accept_dispatcher.start()
        self._start_time = time.monotonic()

    def stop(self) -> None:
        """Stop the accept plane first, then every shard."""
        with self._lock:
            access(self, "_started")
            if not self._started:
                return
            self._started = False
        self.accept_dispatcher.stop()
        if self.acceptor is not None:
            self.acceptor.close()
        for shard in self.shards:
            shard.stop()
        self.accept_source.close()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Cross-shard drain barrier: stop accepting, then wait for
        *every* shard to go quiescent before stopping them all."""
        timeout = (timeout if timeout is not None
                   else self.config.drain_timeout)
        with self._lock:
            access(self, "_started", write=False)
            started = self._started
        if not started:
            return True
        if self.acceptor is not None:
            self.acceptor.close()
        deadline = time.monotonic() + timeout
        settled_since = None
        drained = False
        while time.monotonic() < deadline:
            if all(shard._quiescent() for shard in self.shards):
                if settled_since is None:
                    settled_since = time.monotonic()
                elif time.monotonic() - settled_since >= 0.05:
                    drained = True
                    break
            else:
                settled_since = None
            time.sleep(0.005)
        self.stop()
        return drained

    # -- inspection -------------------------------------------------------
    @property
    def open_connections(self) -> int:
        """Open connections summed across shards."""
        return sum(len(shard.container) for shard in self.shards)

    def status_fields(self):
        """Aggregated mod_status fields across all shard registries."""
        uptime = (time.monotonic() - self._start_time
                  if self._start_time is not None else None)
        return sharded_status_fields(
            [shard.registry for shard in self.shards], uptime=uptime)

    def status_report(self, auto: bool = False) -> str:
        """The aggregated status page (HTML, or plain with ``auto``)."""
        fields = self.status_fields()
        return render_status_auto(fields) if auto \
            else render_status_html(fields)

    def degradation_status(self) -> dict:
        """Accept-plane O17 snapshot plus every shard's own plane."""
        if self.shedding is None:
            return {}
        return {
            "shed": self.shedding.status(),
            "shards": [shard.degradation_status() for shard in self.shards],
        }

    def trace_records(self) -> list:
        """Finished span records merged from every shard's exporter."""
        records = []
        for shard in self.shards:
            records.extend(shard.trace_records())
        return records

    def trace_report(self) -> str:
        """Plain-text trace report across all shards (merged, sorted by
        span start so interleavings read chronologically)."""
        return render_trace_report(self.trace_records(), sharded=True)

    def __enter__(self) -> "ShardedReactorServer":
        """Context-manager start."""
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager stop."""
        self.stop()
