"""Graceful-degradation plane (option O17 "Degradation policy").

The paper's O9 overload control is a binary accept/postpone latch over
static watermarks (Fig 6: high=20 / low=5): under a sustained storm the
server silently strands clients in the kernel backlog.  This module
replaces the silent postpone with *explicit, prioritized decisions*:

* :class:`TokenBucket` / :class:`ClientRateLimiter` — per-client rate
  limiting so one aggressive client cannot starve the rest;
* :class:`SheddingPolicy` — the admission decision itself, returning a
  :class:`ShedDecision` with a machine-readable reason code that lands
  in the flight recorder (so ``reconstruct_path`` can explain why a
  connection never got a span);
* :class:`SojournQueue` — CoDel-style sojourn-deadline drops on the
  Event Processor queue: work that has already waited past its deadline
  is dropped at pop time instead of being served uselessly late;
* :class:`CircuitBreaker` / :class:`RetryBudget` — closed → open →
  half-open protection around file I/O and cache backends;
* :class:`BrownoutController` — graded partial degradation (serve-stale
  from the cache plane, bounded-size responses) for COPS-HTTP;
* :class:`AdaptiveController` — AIMD retuning of the O9 watermarks and
  the brownout level from the O11 p99 latency signal, runnable live (a
  background thread) or offline (:func:`hill_climb` over the sim
  testbed).

Everything here is plain-clock-injectable so the simulation testbed can
drive the *same* classes the live server runs — the Fig 6-style
"graceful vs cliff" experiment exercises this module, not a model of it.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from repro.lint.locks import access, make_lock, shared
from repro.obs.flight import GLOBAL as GLOBAL_FLIGHT

__all__ = [
    "TokenBucket",
    "ClientRateLimiter",
    "ShedDecision",
    "SheddingPolicy",
    "SojournQueue",
    "CircuitBreaker",
    "CircuitOpenError",
    "RetryBudget",
    "BrownoutController",
    "AdaptiveController",
    "hill_climb",
    "reject_handle",
    "rejection_response",
]

#: reason codes stamped on every shed decision (flight-recorder details
#: carry these verbatim: ``"reject reason=rate-limit client=..."``)
REASON_RATE_LIMIT = "rate-limit"
REASON_OVERLOAD = "overload"
REASON_MAX_CONNECTIONS = "max-connections"
REASON_QUEUE_DEADLINE = "queue-deadline"
REASON_PRIORITY = "priority"
REASON_BREAKER = "breaker"


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, ``burst`` capacity.

    Not self-locking — the owning :class:`ClientRateLimiter` serializes
    access (one bucket is only ever touched under the limiter's lock).
    """

    __slots__ = ("rate", "burst", "tokens", "updated")

    def __init__(self, rate: float, burst: float, now: float = 0.0):
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be > 0")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.updated = now

    def allow(self, now: float, cost: float = 1.0) -> bool:
        """Spend ``cost`` tokens if available at time ``now``."""
        elapsed = max(0.0, now - self.updated)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.updated = now
        if self.tokens >= cost:
            self.tokens -= cost
            return True
        return False


class ClientRateLimiter:
    """Per-client token buckets with a bounded (LRU-evicted) client map.

    ``allow(client)`` charges one token against that client's bucket;
    a client never seen before starts with a full burst.  The map is
    capped at ``max_clients`` so a spoofed-address storm cannot grow it
    without bound — the least recently active client is forgotten first.
    """

    def __init__(self, rate: float, burst: float, max_clients: int = 1024,
                 clock: Callable[[], float] = time.monotonic):
        self.rate = float(rate)
        self.burst = float(burst)
        self.max_clients = max_clients
        self.clock = clock
        self._lock = make_lock("ClientRateLimiter")
        self._buckets: "OrderedDict[str, TokenBucket]" = OrderedDict()
        #: accounting for status pages / the experiment harness
        self.allowed = 0
        self.rejected = 0
        shared(self, "_buckets", "allowed", "rejected",
               label="per-client rate limiter state")

    def allow(self, client: str) -> bool:
        """May ``client`` (typically the peer address) proceed now?"""
        now = self.clock()
        with self._lock:
            access(self, "_buckets")
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = TokenBucket(self.rate, self.burst, now=now)
                self._buckets[client] = bucket
                while len(self._buckets) > self.max_clients:
                    self._buckets.popitem(last=False)
            else:
                self._buckets.move_to_end(client)
            ok = bucket.allow(now)
            if ok:
                access(self, "allowed")
                self.allowed += 1
            else:
                access(self, "rejected")
                self.rejected += 1
            return ok

    @property
    def clients(self) -> int:
        """Clients currently tracked (bounded by ``max_clients``)."""
        with self._lock:
            access(self, "_buckets", write=False)
            return len(self._buckets)


@dataclass(frozen=True)
class ShedDecision:
    """One explicit admission decision.

    ``action`` is ``"admit"``, ``"reject"`` (accept, send the cheap
    rejection payload, close) or ``"postpone"`` (leave the connection in
    the kernel backlog — the paper's silent O9 behaviour, kept only for
    builds that ask for it).  ``reason`` is a stable reason code
    (:data:`REASON_RATE_LIMIT` and friends) for rejected work.
    """

    action: str
    reason: str = ""
    retry_after: float = 0.0

    @property
    def admitted(self) -> bool:
        """True when the work may proceed."""
        return self.action == "admit"


#: the decision every policy-free call site takes
_ADMIT = ShedDecision("admit")


def rejection_response(retry_after: float = 1.0, reason: str = "") -> bytes:
    """Preformatted HTTP/1.1 503 bytes for the cheap write-path reject.

    Built once at configuration time (never per rejection): the shedding
    path appends these bytes to the victim's out-buffer, flushes, and
    closes — no parsing, no handler dispatch, no disk.  ``reason`` (a
    :data:`REASON_RATE_LIMIT`-style code) rides in an ``X-Shed-Reason``
    header so storm tests and clients can tell rejections apart.
    """
    body = b"503 Service Unavailable\r\n"
    head = (
        "HTTP/1.1 503 Service Unavailable\r\n"
        f"Retry-After: {max(1, int(round(retry_after)))}\r\n"
        "Content-Type: text/plain\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
    )
    if reason:
        head += f"X-Shed-Reason: {reason}\r\n"
    return head.encode("ascii") + b"\r\n" + body


def reject_handle(handle, payload: bytes) -> None:
    """Flush a canned rejection to a just-accepted handle and close it.

    The cheap write-path reject: no Communicator is ever built for the
    victim, so the whole transaction costs one buffered send and a
    close.  Works with both the copying and the zero-copy out-buffer.
    """
    if payload:
        handle.out_buffer += payload
        handle.try_send()
    handle.close()


class SheddingPolicy:
    """Explicit, prioritized load shedding.

    Composes three signals into per-connection and per-request
    decisions:

    * the O9 :class:`~repro.runtime.overload.OverloadController` (queue
      watermarks + connection cap) — but instead of silently postponing,
      overload now *rejects*: the client gets a cheap canned response
      (HTTP 503 with ``Retry-After``) and an explanation lands in the
      flight recorder;
    * a :class:`ClientRateLimiter`, so shedding is fair across clients;
    * request-class priorities (``classes`` maps class name → priority,
      higher = more important): under pressure, classes below
      ``priority_floor`` shed first — expensive work is the first to go.
    """

    def __init__(
        self,
        overload=None,
        limiter: Optional[ClientRateLimiter] = None,
        classes: Optional[Dict[str, int]] = None,
        priority_floor: int = 1,
        retry_after: float = 1.0,
        reject_payload: bytes = b"",
        on_overload: str = "reject",
        flight=None,
    ):
        if on_overload not in ("reject", "postpone"):
            raise ValueError("on_overload must be 'reject' or 'postpone'")
        self.overload = overload
        self.limiter = limiter
        #: request-class priorities; unknown classes get the floor value
        #: (never shed by the priority rule alone)
        self.classes = dict(classes or {})
        self.priority_floor = priority_floor
        self.retry_after = retry_after
        #: preformatted rejection bytes (a canned 503 for HTTP); empty
        #: means reject-by-close for protocols without an error shape
        self.reject_payload = reject_payload
        self.on_overload = on_overload
        self.flight = flight if flight is not None else GLOBAL_FLIGHT
        self._lock = make_lock("SheddingPolicy")
        self.shed_total = 0
        self._shed_by_reason: Dict[str, int] = {}
        shared(self, "shed_total", "_shed_by_reason",
               label="shed-decision accounting")

    # -- bookkeeping ------------------------------------------------------
    def _shed(self, reason: str, detail: str = "",
              trace_id: int = 0) -> None:
        """Count one shed and put the reason on the flight record."""
        with self._lock:
            access(self, "shed_total")
            self.shed_total += 1
            access(self, "_shed_by_reason")
            self._shed_by_reason[reason] = \
                self._shed_by_reason.get(reason, 0) + 1
        suffix = f" {detail}" if detail else ""
        self.flight.record("shed", f"reason={reason}{suffix}", trace_id)

    def shed_by_reason(self) -> Dict[str, int]:
        """Shed counts keyed by reason code (status pages)."""
        with self._lock:
            access(self, "_shed_by_reason", write=False)
            return dict(self._shed_by_reason)

    # -- decisions --------------------------------------------------------
    def admit_accept(self) -> ShedDecision:
        """Pre-accept gate: consult the overload controller.

        Overload now produces an *explicit* decision: ``reject`` (the
        default — accept, send the canned payload, close) or
        ``postpone`` (the paper's silent backlog behaviour) per the
        ``on_overload`` setting.
        """
        if self.overload is None or self.overload.accepting():
            return _ADMIT
        reason = (REASON_MAX_CONNECTIONS
                  if self.overload.at_connection_limit()
                  else REASON_OVERLOAD)
        if self.on_overload == "postpone":
            self._shed(reason, "action=postpone")
            return ShedDecision("postpone", reason, self.retry_after)
        return ShedDecision("reject", reason, self.retry_after)

    def admit_client(self, client: str, trace_id: int = 0) -> ShedDecision:
        """Post-accept gate: per-client token-bucket rate limit."""
        if self.limiter is None or self.limiter.allow(client):
            return _ADMIT
        decision = ShedDecision("reject", REASON_RATE_LIMIT,
                                self.retry_after)
        self._shed(REASON_RATE_LIMIT, f"client={client}", trace_id)
        return decision

    def admit_request(self, request_class: str = "",
                      trace_id: int = 0) -> ShedDecision:
        """Per-request gate: under pressure, low-priority classes shed.

        Pressure means the overload controller has a tripped watermark;
        while it lasts, request classes whose priority is below
        ``priority_floor`` are rejected with :data:`REASON_PRIORITY`.
        """
        if self.overload is None or not self.overload.overloaded_queues():
            return _ADMIT
        priority = self.classes.get(request_class, self.priority_floor)
        if priority >= self.priority_floor:
            return _ADMIT
        decision = ShedDecision("reject", REASON_PRIORITY, self.retry_after)
        self._shed(REASON_PRIORITY, f"class={request_class}", trace_id)
        return decision

    def record_rejection(self, decision: ShedDecision, detail: str = "",
                         trace_id: int = 0) -> None:
        """Account a rejection decided by :meth:`admit_accept` (the
        caller records *after* the accept so the trace id is known)."""
        self._shed(decision.reason, detail, trace_id)

    def status(self) -> dict:
        """Snapshot for ``/server-status?auto`` and samplers."""
        status = {
            "shed_total": self.shed_total,
            "shed_by_reason": self.shed_by_reason(),
            "priority_floor": self.priority_floor,
            "on_overload": self.on_overload,
        }
        if self.limiter is not None:
            status["rate_limited_clients"] = self.limiter.clients
            status["rate_limit_rejections"] = self.limiter.rejected
        return status


class SojournQueue:
    """CoDel-style sojourn-deadline dropping wrapper for event queues.

    Wraps any queue with the Event Processor interface (``push`` /
    ``pop`` / ``try_pop`` / ``close`` / ``closed`` / ``__len__``) and
    stamps every item with its enqueue time.  At pop time, an item whose
    sojourn exceeded ``deadline`` is a candidate drop — but, following
    CoDel, drops only begin once the sojourn has stayed above the
    deadline for a full ``interval`` (so transient bursts pass
    unharmed), and stop the moment a fresh item is seen.

    ``on_drop(item, sojourn)`` receives each dropped item — the server
    wires this to a handler that 503s and closes the victim connection
    instead of silently losing it.  ``droppable(item)`` decides which
    items the control law may touch at all: control messages (worker
    retire pills, completions carrying owed replies) must pass through
    however stale — only fresh request work is sheddable.
    """

    def __init__(self, inner, deadline: float, interval: float = 0.1,
                 on_drop: Optional[Callable[[Any, float], None]] = None,
                 droppable: Optional[Callable[[Any], bool]] = None,
                 clock: Callable[[], float] = time.monotonic):
        if deadline <= 0:
            raise ValueError("deadline must be > 0")
        self._inner = inner
        self.deadline = deadline
        self.interval = interval
        self.on_drop = on_drop
        self.droppable = droppable
        self.clock = clock
        self._lock = make_lock("SojournQueue")
        self._first_above: Optional[float] = None
        self.dropped = 0
        shared(self, "_first_above", "dropped",
               label="sojourn-drop control state")

    # -- the CoDel control law -------------------------------------------
    def _should_drop(self, sojourn: float, now: float) -> bool:
        """One step of the control law; called per popped item."""
        with self._lock:
            access(self, "_first_above")
            if sojourn < self.deadline:
                self._first_above = None
                return False
            if self._first_above is None:
                self._first_above = now
                return False
            if now - self._first_above < self.interval:
                return False
            access(self, "dropped")
            self.dropped += 1
            return True

    def _filter(self, item: Optional[tuple]) -> Tuple[Optional[Any], bool]:
        """Unwrap a popped pair; (item, dropped?)."""
        if item is None:
            return None, False
        enqueued, payload = item
        if self.droppable is not None and not self.droppable(payload):
            return payload, False
        now = self.clock()
        if self._should_drop(now - enqueued, now):
            if self.on_drop is not None:
                self.on_drop(payload, now - enqueued)
            return None, True
        return payload, False

    # -- the queue interface ---------------------------------------------
    def push(self, item: Any, priority: int = 0) -> None:
        """Enqueue, stamping the sojourn clock."""
        self._inner.push((self.clock(), item), priority)

    def pop(self, timeout: Optional[float] = None) -> Optional[Any]:
        """Blocking pop that silently consumes dropped items."""
        while True:
            payload, dropped = self._filter(self._inner.pop(timeout=timeout))
            if not dropped:
                return payload

    def try_pop(self) -> Optional[Any]:
        """Non-blocking pop that silently consumes dropped items."""
        while True:
            payload, dropped = self._filter(self._inner.try_pop())
            if not dropped:
                return payload

    def close(self) -> None:
        self._inner.close()

    @property
    def closed(self) -> bool:
        return self._inner.closed

    def __len__(self) -> int:
        return len(self._inner)


class CircuitOpenError(RuntimeError):
    """Raised by :meth:`CircuitBreaker.call` while the circuit is open."""


class CircuitBreaker:
    """Closed → open → half-open protection for a flaky dependency.

    * **closed** — requests flow; ``failure_threshold`` *consecutive*
      failures trip the breaker open.
    * **open** — requests are refused instantly (no pile-up on a dead
      disk or cache backend); after ``recovery_time`` the breaker moves
      to half-open.
    * **half-open** — exactly ``probe_quota`` probe requests are
      admitted.  If every probe succeeds the breaker closes; any probe
      failure re-opens it with a fresh recovery timer.
    """

    CLOSED, OPEN, HALF_OPEN = "closed", "open", "half-open"

    def __init__(self, name: str = "breaker", failure_threshold: int = 5,
                 recovery_time: float = 5.0, probe_quota: int = 1,
                 clock: Callable[[], float] = time.monotonic):
        if failure_threshold < 1 or probe_quota < 1:
            raise ValueError("failure_threshold and probe_quota must be >= 1")
        self.name = name
        self.failure_threshold = failure_threshold
        self.recovery_time = recovery_time
        self.probe_quota = probe_quota
        self.clock = clock
        self._lock = make_lock(f"CircuitBreaker:{name}")
        self._state = self.CLOSED
        self._failures = 0          # consecutive, while closed
        self._opened_at = 0.0
        self._probes_in_flight = 0  # admitted while half-open
        self._probe_successes = 0
        self.rejected = 0
        self.trips = 0
        shared(self, "_state", "_failures", "_opened_at",
               "_probes_in_flight", "_probe_successes", "rejected", "trips",
               label="circuit-breaker state machine")

    # -- state machine ----------------------------------------------------
    def _trip(self, now: float) -> None:
        """Enter the open state (caller holds the lock)."""
        self._state = self.OPEN
        self._opened_at = now
        self._failures = 0
        self._probes_in_flight = 0
        self._probe_successes = 0
        access(self, "trips")
        self.trips += 1

    def allow(self) -> bool:
        """May one request proceed?  Half-open admits the probe quota."""
        now = self.clock()
        with self._lock:
            access(self, "_state")
            if self._state == self.OPEN:
                if now - self._opened_at < self.recovery_time:
                    access(self, "rejected")
                    self.rejected += 1
                    return False
                self._state = self.HALF_OPEN
                self._probes_in_flight = 0
                self._probe_successes = 0
            if self._state == self.HALF_OPEN:
                access(self, "_probes_in_flight")
                if self._probes_in_flight >= self.probe_quota:
                    access(self, "rejected")
                    self.rejected += 1
                    return False
                self._probes_in_flight += 1
            return True

    def record_success(self) -> None:
        """Report one successful request."""
        with self._lock:
            access(self, "_state")
            if self._state == self.HALF_OPEN:
                access(self, "_probe_successes")
                self._probe_successes += 1
                if self._probe_successes >= self.probe_quota:
                    self._state = self.CLOSED
                    self._failures = 0
            else:
                access(self, "_failures")
                self._failures = 0

    def record_failure(self) -> None:
        """Report one failed request."""
        now = self.clock()
        with self._lock:
            access(self, "_state")
            if self._state == self.HALF_OPEN:
                self._trip(now)
                return
            if self._state == self.CLOSED:
                access(self, "_failures")
                self._failures += 1
                if self._failures >= self.failure_threshold:
                    self._trip(now)

    def call(self, fn: Callable[[], Any]) -> Any:
        """Run ``fn`` under the breaker; :class:`CircuitOpenError` when
        refused, success/failure recorded from whether ``fn`` raises."""
        if not self.allow():
            raise CircuitOpenError(self.name)
        try:
            result = fn()
        except Exception:
            self.record_failure()
            raise
        self.record_success()
        return result

    @property
    def state(self) -> str:
        """Current state name (``closed`` / ``open`` / ``half-open``)."""
        with self._lock:
            access(self, "_state", write=False)
            return self._state

    def status(self) -> dict:
        """Snapshot for ``/server-status?auto``."""
        with self._lock:
            access(self, "_state", write=False)
            return {
                "state": self._state,
                "failures": self._failures,
                "trips": self.trips,
                "rejected": self.rejected,
            }


class RetryBudget:
    """Deposit/withdraw retry budget (bounds retry amplification).

    Every completed request deposits ``ratio`` of a retry token; every
    retry withdraws one whole token.  With ``ratio=0.1`` retries can
    never exceed ~10% of request volume, so a failing backend sees load
    *shrink* instead of doubling.  ``min_retries`` tokens are always
    available so a cold server can still retry at all.
    """

    def __init__(self, ratio: float = 0.1, min_retries: float = 2.0,
                 cap: float = 100.0):
        if not 0.0 <= ratio <= 1.0:
            raise ValueError("ratio must be in [0, 1]")
        self.ratio = ratio
        self.min_retries = min_retries
        self.cap = cap
        self._lock = make_lock("RetryBudget")
        self._tokens = min_retries
        self.withdrawals = 0
        self.refusals = 0
        shared(self, "_tokens", "withdrawals", "refusals",
               label="retry-budget accounting")

    def record_request(self) -> None:
        """Deposit: one more request completed."""
        with self._lock:
            access(self, "_tokens")
            self._tokens = min(self.cap, self._tokens + self.ratio)

    def can_retry(self) -> bool:
        """Withdraw one retry token if the budget allows."""
        with self._lock:
            access(self, "_tokens")
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                access(self, "withdrawals")
                self.withdrawals += 1
                return True
            access(self, "refusals")
            self.refusals += 1
            return False

    @property
    def balance(self) -> float:
        """Tokens currently available."""
        with self._lock:
            access(self, "_tokens", write=False)
            return self._tokens


class BrownoutController:
    """Graded partial degradation (brownout) for content servers.

    ``level`` runs 0.0 (full service) … 1.0 (maximum degradation) and is
    driven by the :class:`AdaptiveController` (or directly by a load
    signal).  Two degradations switch on as the level rises:

    * ``serve_stale`` (level ≥ ``stale_threshold``) — answer from the
      cache plane without touching the disk, even for entries the cache
      would otherwise revalidate or a failing loader would miss;
    * response bounding (level ≥ ``bound_threshold``) — large response
      bodies are truncated to :meth:`response_cap` bytes, shrinking
      further as the level rises.
    """

    def __init__(self, stale_threshold: float = 0.25,
                 bound_threshold: float = 0.5,
                 max_response_bytes: int = 64 * 1024):
        self.stale_threshold = stale_threshold
        self.bound_threshold = bound_threshold
        self.max_response_bytes = max_response_bytes
        self._lock = make_lock("BrownoutController")
        self._level = 0.0
        self.stale_served = 0
        self.responses_bounded = 0
        shared(self, "_level", "stale_served", "responses_bounded",
               label="brownout level and accounting")

    @property
    def level(self) -> float:
        """Current degradation level, 0.0 … 1.0."""
        with self._lock:
            access(self, "_level", write=False)
            return self._level

    def set_level(self, level: float) -> None:
        """Clamp and set the degradation level."""
        with self._lock:
            access(self, "_level")
            self._level = min(1.0, max(0.0, level))

    def raise_level(self, step: float) -> None:
        """Degrade further by ``step`` (clamped at 1.0)."""
        with self._lock:
            access(self, "_level")
            self._level = min(1.0, self._level + step)

    def lower_level(self, step: float) -> None:
        """Recover by ``step`` (clamped at 0.0)."""
        with self._lock:
            access(self, "_level")
            self._level = max(0.0, self._level - step)

    @property
    def serve_stale(self) -> bool:
        """Should the server answer from cache without touching disk?"""
        return self.level >= self.stale_threshold

    def response_cap(self) -> Optional[int]:
        """Maximum response-body bytes right now; None = unbounded.

        Above ``bound_threshold`` the cap shrinks linearly from
        ``max_response_bytes`` down to a quarter of it at level 1.0.
        """
        level = self.level
        if level < self.bound_threshold:
            return None
        span = 1.0 - self.bound_threshold
        frac = (level - self.bound_threshold) / span if span else 1.0
        return max(int(self.max_response_bytes * (1.0 - 0.75 * frac)), 1024)

    def served_stale(self) -> None:
        """Account one response answered stale-from-cache."""
        with self._lock:
            access(self, "stale_served")
            self.stale_served += 1

    def bounded(self) -> None:
        """Account one response body truncated by the cap."""
        with self._lock:
            access(self, "responses_bounded")
            self.responses_bounded += 1

    def status(self) -> dict:
        """Snapshot for ``/server-status?auto``."""
        return {
            "level": round(self.level, 4),
            "serve_stale": self.serve_stale,
            "response_cap": self.response_cap(),
            "stale_served": self.stale_served,
            "responses_bounded": self.responses_bounded,
        }


class AdaptiveController:
    """AIMD retuning of overload watermarks and the brownout level.

    Every ``interval`` seconds :meth:`step` reads the O11 p99 latency
    (``latency_probe()`` → seconds or None while idle) and applies the
    classic additive-increase / multiplicative-decrease rule:

    * p99 **over** ``target_p99`` — congested: multiplicatively shrink
      the watched queue's high watermark (shed earlier) and raise the
      brownout level one step;
    * p99 **under** target — healthy: additively grow the watermark
      back toward ``max_high`` and lower the brownout level.

    The low watermark follows the high one at the configured ratio so
    the O9 hysteresis band keeps its shape.  The controller can run live
    (:meth:`start` spawns the control-loop thread) or be stepped by
    hand — the sim testbed and the tests do the latter.
    """

    def __init__(
        self,
        overload,
        queue_name: str = "reactive",
        latency_probe: Optional[Callable[[], Optional[float]]] = None,
        brownout: Optional[BrownoutController] = None,
        target_p99: float = 0.25,
        interval: float = 1.0,
        min_high: int = 4,
        max_high: int = 256,
        increase: int = 2,
        decrease: float = 0.5,
        low_ratio: float = 0.25,
        brownout_step: float = 0.1,
        log=None,
    ):
        from repro.runtime.tracing import NULL_LOG

        if not 0.0 < decrease < 1.0:
            raise ValueError("decrease must be in (0, 1)")
        self.overload = overload
        self.queue_name = queue_name
        self.latency_probe = latency_probe or (lambda: None)
        self.brownout = brownout
        self.target_p99 = target_p99
        self.interval = interval
        self.min_high = min_high
        self.max_high = max_high
        self.increase = increase
        self.decrease = decrease
        self.low_ratio = low_ratio
        self.brownout_step = brownout_step
        self.log = log if log is not None else NULL_LOG
        self._lock = make_lock("AdaptiveController")
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self.adjustments = 0
        self.last_p99: Optional[float] = None
        shared(self, "adjustments", "last_p99",
               label="adaptive-controller accounting")

    # -- one AIMD step ----------------------------------------------------
    def step(self) -> Optional[Tuple[int, int]]:
        """Apply one control decision; returns the (high, low) applied,
        or None when there was no latency signal to act on."""
        p99 = self.latency_probe()
        with self._lock:
            access(self, "last_p99")
            self.last_p99 = p99
        if p99 is None:
            return None
        mark = self.overload.watermark(self.queue_name)
        if mark is None:
            return None
        if p99 > self.target_p99:
            high = max(self.min_high, int(mark.high * self.decrease))
            if self.brownout is not None:
                self.brownout.raise_level(self.brownout_step)
        else:
            high = min(self.max_high, mark.high + self.increase)
            if self.brownout is not None:
                self.brownout.lower_level(self.brownout_step)
        low = max(1, min(high - 1, int(high * self.low_ratio)))
        if (high, low) != (mark.high, mark.low):
            self.overload.retune(self.queue_name, high=high, low=low)
            with self._lock:
                access(self, "adjustments")
                self.adjustments += 1
            self.log.info(
                f"adaptive: p99={p99:.3f}s target={self.target_p99:.3f}s "
                f"-> watermark high={high} low={low}")
        return high, low

    # -- live control loop ------------------------------------------------
    def _loop(self) -> None:
        """Background control loop (live mode)."""
        while not self._stop.wait(self.interval):
            try:
                self.step()
            except Exception:  # noqa: BLE001 - controller must not die
                pass

    def start(self) -> None:
        """Spawn the live control-loop thread (idempotent)."""
        with self._lock:
            access(self, "_thread")
            if self._thread is not None:
                return
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._loop, daemon=True, name="adaptive-controller")
            self._thread.start()

    def stop(self) -> None:
        """Stop the control loop (idempotent)."""
        with self._lock:
            access(self, "_thread")
            thread, self._thread = self._thread, None
        if thread is not None:
            self._stop.set()
            thread.join(timeout=2.0)

    def status(self) -> dict:
        """Snapshot for ``/server-status?auto``."""
        mark = self.overload.watermark(self.queue_name)
        return {
            "target_p99": self.target_p99,
            "last_p99": self.last_p99,
            "adjustments": self.adjustments,
            "high": mark.high if mark else None,
            "low": mark.low if mark else None,
        }


def hill_climb(evaluate: Callable[[int], float], initial: int,
               lo: int, hi: int, steps: Tuple[int, ...] = (16, 8, 4, 2, 1),
               budget: int = 32) -> Tuple[int, float]:
    """Coordinate hill-climbing search over one integer knob.

    Used offline to tune the overload high watermark against the sim
    testbed: ``evaluate(high)`` runs a deterministic simulation and
    returns the score (goodput) to maximize.  Starting from ``initial``,
    the search probes ± each step size (largest first), moving whenever
    a neighbour scores better, until no step improves or the evaluation
    ``budget`` is spent.  Returns ``(best_value, best_score)``.
    """
    if not lo <= initial <= hi:
        raise ValueError("initial must lie in [lo, hi]")
    cache: Dict[int, float] = {}

    def score(value: int) -> float:
        if value not in cache and len(cache) < budget:
            cache[value] = evaluate(value)
        return cache.get(value, float("-inf"))

    best = initial
    best_score = score(best)
    improved = True
    while improved and len(cache) < budget:
        improved = False
        for step in steps:
            for candidate in (best + step, best - step):
                if not lo <= candidate <= hi:
                    continue
                if score(candidate) > best_score:
                    best, best_score = candidate, cache[candidate]
                    improved = True
    return best, best_score
