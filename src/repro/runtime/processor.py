"""Event Processor and Processor Controller (options O2, O5, O8).

The Event Processor is the paper's extension of the Reactor for multiple
processors: "An Event Processor contains an event queue and a pool of
threads that operate collaboratively to process ready events."  The
Event Dispatcher stays responsible only for polling and handing ready
events over.

The Processor Controller exists when O5=Dynamic: it grows the pool when
the queue backs up and shrinks it when the pool idles, between a
configured min and max.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

from repro.lint.locks import access, make_lock
from repro.runtime.events import Event
from repro.runtime.scheduler import FifoEventQueue, QuotaPriorityQueue

__all__ = ["EventProcessor", "ProcessorController"]


class _Retire:
    """Poison pill instructing exactly one worker to exit."""


class EventProcessor:
    """A queue plus a pool of worker threads applying ``handler``.

    ``queue`` may be a :class:`FifoEventQueue` (O8=No) or a
    :class:`QuotaPriorityQueue` (O8=Yes) — the worker loop is identical,
    which is exactly how the generated code differs only at the queue
    construction site.
    """

    def __init__(
        self,
        handler: Callable[[Event], None],
        threads: int = 1,
        queue=None,
        name: str = "processor",
        error_hook: Optional[Callable[[Event, BaseException], None]] = None,
    ):
        if threads < 1:
            raise ValueError("threads must be >= 1")
        self.handler = handler
        self.queue = queue if queue is not None else FifoEventQueue()
        self.name = name
        self.error_hook = error_hook
        self._initial_threads = threads
        self._threads: list = []
        self._lock = make_lock("EventProcessor")
        self._running = False
        self._busy = 0
        self.processed = 0
        self.errors = 0
        self.worker_deaths = 0
        self.last_death: Optional[BaseException] = None

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        """Mark running and spawn the initial worker pool (idempotent)."""
        with self._lock:
            access(self, "_running")
            if self._running:
                return
            self._running = True
        for _ in range(self._initial_threads):
            self._spawn()

    def stop(self, drain: bool = True, timeout: float = 5.0) -> None:
        """Stop workers.  With ``drain`` the queue is allowed to empty
        first; otherwise workers exit after their current event."""
        with self._lock:
            access(self, "_running")
            access(self, "_threads", write=False)
            if not self._running:
                return
            self._running = False
            workers = list(self._threads)
        if drain:
            deadline = time.monotonic() + timeout
            while len(self.queue) and time.monotonic() < deadline:
                time.sleep(0.005)
        for _ in workers:
            self.queue.push(_Retire(), priority=-(10 ** 9))
        self.queue.close()
        for t in workers:
            t.join(timeout=timeout)
        with self._lock:
            access(self, "_threads")
            self._threads.clear()

    # -- pool management -----------------------------------------------------
    def _spawn(self) -> None:
        # The worker index for the thread name must come from inside the
        # critical section — reading len(self._threads) outside it could
        # hand two concurrent spawns the same name.
        """Create, record and start one worker thread."""
        with self._lock:
            access(self, "_threads")
            t = threading.Thread(target=self._worker, daemon=True,
                                 name=f"{self.name}-{len(self._threads)}")
            self._threads.append(t)
        t.start()

    def add_thread(self) -> None:
        """Grow the pool by one worker (a controller grow decision)."""
        with self._lock:
            access(self, "_running", write=False)
            if not self._running:
                raise RuntimeError("processor not running")
        self._spawn()

    def remove_thread(self) -> None:
        """Ask one worker to retire (low priority: after current backlog)."""
        self.queue.push(_Retire(), priority=-(10 ** 9))

    def prune_dead(self) -> int:
        """Forget workers that died (a BaseException escaped a handler).

        Returns how many were removed so a supervisor can spawn that
        many replacements; a no-op once the pool is stopped."""
        with self._lock:
            access(self, "_running", write=False)
            access(self, "_threads")
            if not self._running:
                return 0
            dead = [t for t in self._threads if not t.is_alive()]
            for t in dead:
                self._threads.remove(t)
        return len(dead)

    @property
    def thread_count(self) -> int:
        """Workers currently alive."""
        with self._lock:
            access(self, "_threads", write=False)
            return len([t for t in self._threads if t.is_alive()])

    @property
    def queue_length(self) -> int:
        """Events waiting in the queue."""
        return len(self.queue)

    @property
    def busy_count(self) -> int:
        """Workers currently inside a handler."""
        with self._lock:
            access(self, "_busy", write=False)
            return self._busy

    # -- work ---------------------------------------------------------------
    def submit(self, event: Event) -> None:
        """Queue one event (priority honoured by O8 queues)."""
        self.queue.push(event, priority=getattr(event, "priority", 0))

    def _worker(self) -> None:
        """Thread body: run the loop, record a death on BaseException."""
        try:
            self._loop()
        except BaseException as exc:  # noqa: BLE001 - a poison event killed us
            # Exceptions are survived in _loop; only a BaseException gets
            # here.  Record the death and exit quietly — the thread stays
            # in ``_threads`` until prune_dead() so a supervisor sees it.
            # ``last_death`` belongs inside the critical section too: two
            # dying workers otherwise race on it and a supervisor can read
            # a death count that disagrees with the recorded exception.
            with self._lock:
                access(self, "last_death")
                access(self, "worker_deaths")
                self.last_death = exc
                self.worker_deaths += 1

    def _loop(self) -> None:
        """Pop-and-handle until retired; handler exceptions are survived."""
        while True:
            item = self.queue.pop(timeout=0.25)
            if isinstance(item, _Retire):
                with self._lock:
                    access(self, "_threads")
                    me = threading.current_thread()
                    if me in self._threads:
                        self._threads.remove(me)
                return
            if item is None:
                with self._lock:
                    access(self, "_running", write=False)
                    running = self._running
                if not running:
                    return
                continue
            with self._lock:
                access(self, "_busy")
                self._busy += 1
            # ``processed``/``errors`` are shared with every other worker
            # and with status-page readers; incrementing them outside the
            # lock (as this loop once did) loses updates under contention.
            # The handler runs unlocked; only the accounting is locked.
            error: Optional[Exception] = None
            ok = False
            try:
                self.handler(item)
                ok = True
            except Exception as exc:  # noqa: BLE001 - server must survive handlers
                error = exc
            finally:
                # a BaseException (worker death) reaches this finally with
                # ok False and error None: busy is repaired, neither
                # counter moves — the event was neither processed nor a
                # survived handler error.
                with self._lock:
                    access(self, "_busy")
                    self._busy -= 1
                    if ok:
                        access(self, "processed")
                        self.processed += 1
                    elif error is not None:
                        access(self, "errors")
                        self.errors += 1
            if error is not None and self.error_hook is not None:
                self.error_hook(item, error)

class ProcessorController:
    """Dynamic thread allocation (O5=Dynamic).

    Samples the processor's queue every ``interval`` seconds: when the
    backlog per thread exceeds ``grow_at`` the pool grows (up to
    ``max_threads``); when the whole pool is idle with an empty queue it
    shrinks (down to ``min_threads``).
    """

    def __init__(self, processor: EventProcessor, min_threads: int = 1,
                 max_threads: int = 8, grow_at: int = 4,
                 interval: float = 0.05):
        if not (1 <= min_threads <= max_threads):
            raise ValueError("need 1 <= min_threads <= max_threads")
        if grow_at < 1:
            raise ValueError("grow_at must be >= 1")
        self.processor = processor
        self.min_threads = min_threads
        self.max_threads = max_threads
        self.grow_at = grow_at
        self.interval = interval
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.decisions: list = []

    def start(self) -> None:
        """Start the sampling thread (idempotent)."""
        if self._thread is not None:
            return
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="processor-controller")
        self._thread.start()

    def stop(self) -> None:
        """Stop and join the sampling thread."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    def _run(self) -> None:
        """Sampling loop: one :meth:`evaluate` per interval."""
        while not self._stop.wait(self.interval):
            self.evaluate()

    def evaluate(self) -> None:
        """One control decision (public so tests can drive it directly)."""
        p = self.processor
        threads = p.thread_count
        backlog = p.queue_length
        if threads < self.max_threads and backlog >= self.grow_at * max(threads, 1):
            p.add_thread()
            self.decisions.append(("grow", threads + 1))
        elif threads > self.min_threads and backlog == 0 and p.busy_count == 0:
            p.remove_thread()
            self.decisions.append(("shrink", threads - 1))
