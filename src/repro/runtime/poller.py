"""Pluggable readiness-polling backends for the Reactor.

The :class:`~repro.runtime.event_source.SocketEventSource` used to talk
to :mod:`selectors` directly; this module abstracts that contact surface
into a tiny :class:`Poller` interface (register / modify / unregister /
poll over raw fds and interest masks) with two implementations:

* :class:`SelectPoller` — the portable ``selectors`` backend
  (``PollSelector`` where available).  Level-triggered, O(n) in the
  number of registered fds per wait, works everywhere.  It is the
  **test oracle**: the conformance parity plane replays identical
  sessions through both backends and diffs the outcomes.
* :class:`EpollPoller` — Linux ``select.epoll`` in edge-triggered mode
  (``EPOLLET``).  O(ready) per wait instead of O(registered), which is
  what keeps thousands of mostly-idle connections from taxing the hot
  loop.  Consumers must drain readiness to ``EAGAIN`` after every
  event; re-arming via :meth:`modify` re-posts the edge when the
  condition still holds, which the event source leans on for its
  pause/resume one-shot protocol.

Backend selection (:func:`make_poller`): explicit name, else the
``REPRO_POLLER`` environment variable, else epoll when the platform has
it.  Interest masks are the module-level ``READ``/``WRITE`` bits, kept
deliberately independent of both ``selectors`` and ``epoll`` constants.
"""

from __future__ import annotations

import os
import select
import selectors
from typing import Any, List, Optional, Tuple

__all__ = ["READ", "WRITE", "Poller", "SelectPoller", "EpollPoller",
           "available_pollers", "make_poller"]

#: interest-mask bits (also the ready-mask bits :meth:`Poller.poll` returns)
READ = 1
WRITE = 2


class Poller:
    """Interface: readiness selection over raw file descriptors.

    ``data`` is an opaque cookie returned verbatim from :meth:`poll`;
    the event source stores the Handle there.  A zero ``mask`` is legal
    and means "keep the fd but report nothing" (the paused state).
    """

    #: backend name as accepted by :func:`make_poller`
    name = "abstract"
    #: True when consumers must drain readiness to EAGAIN per event
    edge_triggered = False

    def register(self, fd: int, mask: int, data: Any) -> None:
        raise NotImplementedError

    def modify(self, fd: int, mask: int, data: Any) -> None:
        raise NotImplementedError

    def unregister(self, fd: int) -> None:
        raise NotImplementedError

    def poll(self, timeout: Optional[float] = None
             ) -> List[Tuple[Any, int]]:
        """Wait up to ``timeout`` seconds (None blocks) and return
        ``(data, ready_mask)`` pairs."""
        raise NotImplementedError

    def close(self) -> None:
        pass


class SelectPoller(Poller):
    """Portable level-triggered backend over :mod:`selectors`.

    ``PollSelector`` is preferred over ``DefaultSelector`` on purpose:
    the point of this class is to *be* the scan-based oracle the epoll
    backend is measured against, and ``DefaultSelector`` would silently
    become epoll on Linux.  ``selectors`` cannot hold a zero interest
    mask, so fully-paused fds are parked in ``_inactive`` and re-added
    on the next non-zero :meth:`modify` — callers never see the dance.
    """

    name = "select"
    edge_triggered = False

    _MASK_MAP = {
        0: 0,
        READ: selectors.EVENT_READ,
        WRITE: selectors.EVENT_WRITE,
        READ | WRITE: selectors.EVENT_READ | selectors.EVENT_WRITE,
    }

    def __init__(self):
        try:
            self._selector = selectors.PollSelector()
        except AttributeError:  # pragma: no cover - platforms without poll()
            self._selector = selectors.SelectSelector()
        self._inactive: dict = {}  # fd -> data, parked with zero interest

    def register(self, fd: int, mask: int, data: Any) -> None:
        if mask:
            self._selector.register(fd, self._MASK_MAP[mask], data)
        else:
            self._inactive[fd] = data

    def modify(self, fd: int, mask: int, data: Any) -> None:
        if fd in self._inactive:
            if mask:
                del self._inactive[fd]
                self._selector.register(fd, self._MASK_MAP[mask], data)
            else:
                self._inactive[fd] = data
        elif mask:
            self._selector.modify(fd, self._MASK_MAP[mask], data)
        else:
            self._selector.unregister(fd)
            self._inactive[fd] = data

    def unregister(self, fd: int) -> None:
        if self._inactive.pop(fd, None) is not None:
            return
        self._selector.unregister(fd)

    def poll(self, timeout: Optional[float] = None
             ) -> List[Tuple[Any, int]]:
        ready = []
        for key, mask in self._selector.select(timeout):
            out = (READ if mask & selectors.EVENT_READ else 0) | \
                  (WRITE if mask & selectors.EVENT_WRITE else 0)
            ready.append((key.data, out))
        return ready

    def close(self) -> None:
        self._selector.close()
        self._inactive.clear()


class EpollPoller(Poller):
    """Linux edge-triggered backend over ``select.epoll``.

    Every registration carries ``EPOLLET``; ``EPOLLHUP``/``EPOLLERR``
    (always reported by the kernel, interest mask or not) surface as
    READ readiness so the read path observes the EOF/reset.  A closed
    fd silently leaves the epoll set, so :meth:`unregister` tolerates
    the kernel having beaten it to the cleanup — and :meth:`register`
    tolerates a reused fd number still sitting in the set from a
    fault-closed predecessor (the PR 9 fd-reuse scenario).
    """

    name = "epoll"
    edge_triggered = True

    def __init__(self):
        self._epoll = select.epoll()
        self._data: dict = {}  # fd -> (data, mask)

    def _events(self, mask: int) -> int:
        events = select.EPOLLET
        if mask & READ:
            events |= select.EPOLLIN
        if mask & WRITE:
            events |= select.EPOLLOUT
        return events

    def register(self, fd: int, mask: int, data: Any) -> None:
        # Publish the lookup entry BEFORE epoll_ctl: registration often
        # happens off the polling thread (the sharded accept plane adds
        # fds while a shard dispatcher sits in epoll_wait), and an fd
        # that is ready at ADD time delivers its edge immediately.  If
        # poll() woke with that event before the entry existed it would
        # discard it as a stale fd — and an edge, once consumed, is
        # never re-posted.
        self._data[fd] = (data, mask)
        try:
            self._epoll.register(fd, self._events(mask))
        except FileExistsError:
            # fd number reused while the stale entry lingered: repoint it
            self._epoll.modify(fd, self._events(mask))
        except BaseException:
            self._data.pop(fd, None)
            raise

    def modify(self, fd: int, mask: int, data: Any) -> None:
        if fd not in self._data:
            raise KeyError(fd)
        # EPOLL_CTL_MOD re-arms the edge: a still-readable fd delivers a
        # fresh event, which is exactly what resume-after-pause needs.
        self._epoll.modify(fd, self._events(mask))
        self._data[fd] = (data, mask)

    def unregister(self, fd: int) -> None:
        if self._data.pop(fd, None) is None:
            raise KeyError(fd)
        try:
            self._epoll.unregister(fd)
        except (OSError, FileNotFoundError):
            pass  # already closed: the kernel dropped it for us

    def poll(self, timeout: Optional[float] = None
             ) -> List[Tuple[Any, int]]:
        wait = -1 if timeout is None else max(timeout, 0.0)
        ready = []
        for fd, events in self._epoll.poll(wait):
            entry = self._data.get(fd)
            if entry is None:
                continue  # raced with unregister
            data, mask = entry
            out = 0
            if events & (select.EPOLLIN | select.EPOLLHUP | select.EPOLLERR):
                out |= READ
            if events & select.EPOLLOUT:
                out |= WRITE
            if out:
                ready.append((data, out))
        return ready

    def close(self) -> None:
        self._epoll.close()
        self._data.clear()


def available_pollers() -> Tuple[str, ...]:
    """Backend names usable on this platform (select is always first)."""
    names = ["select"]
    if hasattr(select, "epoll"):
        names.append("epoll")
    return tuple(names)


def make_poller(name: Optional[str] = None) -> Poller:
    """Build a backend: explicit ``name``, else ``$REPRO_POLLER``, else
    the fastest one the platform offers (epoll, falling back to select).
    """
    if name is None:
        name = os.environ.get("REPRO_POLLER") or None
    if name is None:
        name = "epoll" if hasattr(select, "epoll") else "select"
    if name == "select":
        return SelectPoller()
    if name == "epoll":
        if not hasattr(select, "epoll"):
            raise ValueError("epoll poller unavailable on this platform")
        return EpollPoller()
    raise ValueError(
        f"unknown poller {name!r} (expected one of {available_pollers()})")
