"""Event scheduling (N-Server option O8): priority queue with quotas.

The paper's mechanism: "events of higher priority are processed first.
However, each priority level is given a quota.  When the quota is
exhausted, events of lower priority are processed, so that starvation is
avoided."

:class:`QuotaPriorityQueue` implements exactly that, and both the real
Event Processor and the simulated event-driven server consume it — the
Fig 5 experiment runs through this class.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Dict, Optional

__all__ = ["QuotaPriorityQueue", "FifoEventQueue"]


class FifoEventQueue:
    """The plain event queue generated when O8=No: strict FIFO.

    Same interface as :class:`QuotaPriorityQueue` so the Event Processor
    code is identical either way (the template swaps the construction
    site only — one of the crosscut `+` cells of Table 2).
    """

    def __init__(self):
        self._items: deque = deque()
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        self._closed = False

    def push(self, item: Any, priority: int = 0) -> None:
        with self._available:
            self._items.append(item)
            self._available.notify()

    def pop(self, timeout: Optional[float] = None) -> Optional[Any]:
        """Blocking pop; None on timeout or after close+drain."""
        with self._available:
            while not self._items:
                if self._closed:
                    return None
                if not self._available.wait(timeout=timeout):
                    return None
            return self._items.popleft()

    def try_pop(self) -> Optional[Any]:
        with self._lock:
            return self._items.popleft() if self._items else None

    def close(self) -> None:
        with self._available:
            self._closed = True
            self._available.notify_all()

    @property
    def closed(self) -> bool:
        return self._closed

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)


class QuotaPriorityQueue:
    """Priority levels with per-level quotas and round-based fairness.

    ``quotas`` maps priority level -> events served per round.  Higher
    numeric priority is served first.  Within a round, a level is served
    until its quota is spent, then the next level down gets its turn;
    when every backlogged level has spent its quota the round resets.
    Levels never listed in ``quotas`` get a default quota of 1.

    Skipping an *empty* level does not spend its quota, so the quota
    ratio is only enforced between levels that actually have backlog —
    this is what makes the measured throughput ratio track the
    configured ratio in Fig 5 (with the small gap the paper notes, since
    downstream resources are not scheduled).
    """

    def __init__(self, quotas: Dict[int, int], default_quota: int = 1):
        for level, quota in quotas.items():
            if quota < 1:
                raise ValueError(f"quota for level {level} must be >= 1")
        if default_quota < 1:
            raise ValueError("default quota must be >= 1")
        self.quotas = dict(quotas)
        self.default_quota = default_quota
        self._levels: Dict[int, deque] = {}
        self._remaining: Dict[int, int] = {}
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        self._size = 0
        self._closed = False

    # -- internals -------------------------------------------------------
    def _quota_for(self, level: int) -> int:
        return self.quotas.get(level, self.default_quota)

    def _pop_locked(self) -> Optional[Any]:
        if self._size == 0:
            return None
        backlogged = [lv for lv, q in self._levels.items() if q]
        # Serve the highest backlogged level with quota remaining.
        for level in sorted(backlogged, reverse=True):
            if self._remaining.get(level, self._quota_for(level)) > 0:
                return self._take(level)
        # Every backlogged level exhausted its quota: new round.
        for level in backlogged:
            self._remaining[level] = self._quota_for(level)
        return self._take(max(backlogged))

    def _take(self, level: int) -> Any:
        self._remaining[level] = self._remaining.get(
            level, self._quota_for(level)) - 1
        self._size -= 1
        item = self._levels[level].popleft()
        if not self._levels[level]:
            del self._levels[level]
        return item

    # -- interface ---------------------------------------------------------
    def push(self, item: Any, priority: int = 0) -> None:
        with self._available:
            self._levels.setdefault(priority, deque()).append(item)
            self._remaining.setdefault(priority, self._quota_for(priority))
            self._size += 1
            self._available.notify()

    def pop(self, timeout: Optional[float] = None) -> Optional[Any]:
        with self._available:
            while self._size == 0:
                if self._closed:
                    return None
                if not self._available.wait(timeout=timeout):
                    return None
            return self._pop_locked()

    def try_pop(self) -> Optional[Any]:
        with self._lock:
            return self._pop_locked()

    def close(self) -> None:
        with self._available:
            self._closed = True
            self._available.notify_all()

    @property
    def closed(self) -> bool:
        return self._closed

    def __len__(self) -> int:
        with self._lock:
            return self._size

    def backlog(self, priority: int) -> int:
        """Queued item count at one priority level."""
        with self._lock:
            return len(self._levels.get(priority, ()))
