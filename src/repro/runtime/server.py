"""A hand-wired, runtime-configured server assembly.

This is the *static framework* alternative the paper argues against in
section III: one framework supporting every option through runtime
checks ("executing if or case statements to check which features are
enabled, as opposed to using conditional compilation flags").  It exists
here for three reasons:

1. it is a convenient library-level API for users who don't want codegen;
2. it is the reference implementation the *generated* frameworks are
   differentially tested against (same hooks, same behaviour);
3. it is the baseline for the generated-vs-static ablation bench.

The :class:`RuntimeConfig` fields correspond one-to-one to the twelve
Table-1 options.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.cache import FileCache
from repro.obs.flight import FlightRecorder, install_signal_dump
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry
from repro.obs.tracing import JsonlExporter, RingExporter, render_trace_report
from repro.runtime.buffers import BufferPool, OutBuffer
from repro.obs.sampler import PeriodicSampler
from repro.obs.spans import NULL_SPANS, SpanRecorder
from repro.runtime.acceptor import Acceptor
from repro.runtime.communicator import Communicator, ServerHooks
from repro.runtime.container import Container
from repro.runtime.degradation import (
    REASON_QUEUE_DEADLINE,
    AdaptiveController,
    BrownoutController,
    CircuitBreaker,
    ClientRateLimiter,
    RetryBudget,
    ShedDecision,
    SheddingPolicy,
    SojournQueue,
    rejection_response,
)
from repro.runtime.dispatcher import EventDispatcher
from repro.runtime.event_source import (
    QueueEventSource,
    SocketEventSource,
    TimerEventSource,
)
from repro.runtime.events import EventKind
from repro.runtime.file_io import AsyncFileIO
from repro.runtime.handles import ListenHandle
from repro.runtime.idle import IdleConnectionReaper
from repro.runtime.overload import OverloadController, Watermark
from repro.runtime.processor import EventProcessor, ProcessorController
from repro.runtime.profiling import NULL_PROFILER, Profiler
from repro.runtime.resilience import (
    DeadlineMonitor,
    DeadlinePolicy,
    EventQuarantine,
    WorkerSupervisor,
)
from repro.runtime.scheduler import FifoEventQueue, QuotaPriorityQueue
from repro.runtime.tracing import NULL_LOG, NULL_TRACER, EventTracer, ServerLog

__all__ = ["RuntimeConfig", "ReactorServer"]


@dataclass
class RuntimeConfig:
    """Runtime mirror of the twelve N-Server template options."""

    dispatcher_threads: int = 1                 # O1: 1 or 2N
    use_processor_pool: bool = True             # O2
    use_codec: bool = True                      # O3
    async_completions: bool = True              # O4
    dynamic_threads: bool = False               # O5
    cache_policy: Optional[str] = None          # O6 (None = no cache)
    cache_capacity: int = 16 * 1024 * 1024
    shutdown_long_idle: bool = False            # O7
    idle_limit: float = 30.0
    event_scheduling: bool = False              # O8
    scheduling_quotas: dict = field(default_factory=dict)
    overload_control: bool = False              # O9
    overload_high: int = 20
    overload_low: int = 5
    max_connections: Optional[int] = None
    debug_mode: bool = False                    # O10
    profiling: bool = False                     # O11
    logging: bool = False                       # O12
    sample_interval: float = 1.0                # O11 gauge-sampler period
    trace_ring_capacity: int = 256              # O11 span-exporter ring
    trace_export_path: Optional[str] = None     # O11: JSONL span export
    flight_capacity: int = 4096                 # always-on lifecycle ring
    flight_dump_dir: Optional[str] = None       # where crash dumps land
    fault_tolerance: bool = False               # O13
    degradation: bool = False                   # O17
    shed_rate: float = 100.0                    # O17 per-client tokens/sec
    shed_burst: float = 20.0                    # O17 per-client burst
    shed_max_clients: int = 1024                # O17 rate-limiter LRU bound
    shed_retry_after: float = 1.0               # O17 Retry-After seconds
    shed_on_overload: str = "reject"            # O17: "reject"/"postpone"
    shed_classes: dict = field(default_factory=dict)  # O17 class -> priority
    shed_priority_floor: int = 1                # O17 shed classes below this
    sojourn_deadline: Optional[float] = None    # O17 CoDel queue deadline
    sojourn_interval: float = 0.1               # O17 CoDel interval
    breaker_failures: int = 5                   # O17 file-I/O breaker trip
    breaker_recovery: float = 5.0               # O17 breaker open time
    breaker_probes: int = 1                     # O17 half-open probe quota
    retry_budget_ratio: float = 0.1             # O17 retries per request
    brownout_stale_threshold: float = 0.25      # O17 serve-stale level
    brownout_bound_threshold: float = 0.5       # O17 response-cap level
    brownout_max_response: int = 64 * 1024      # O17 base response cap
    adaptive_control: bool = False              # O17 AIMD watermark tuning
    adaptive_target_p99: float = 0.25           # O17 p99 target (seconds)
    adaptive_interval: float = 1.0              # O17 control-loop period
    overload_dump_after: Optional[int] = None   # O17 flight dump on streak
    write_path: str = "buffered"                # O15: "buffered"/"zerocopy"
    buffer_size_classes: tuple = (1024, 4096, 16384, 65536)
    buffer_pool_limit: int = 64                 # free buffers kept per class
    poller: Optional[str] = None                # O18: "select"/"epoll"/None=auto
    accept_batch: Optional[int] = 64            # accepts per AcceptEvent
    header_timeout: float = 5.0
    request_timeout: float = 30.0
    write_timeout: float = 30.0
    drain_timeout: float = 5.0
    max_event_retries: int = 2
    deadline_interval: float = 0.1
    supervision_interval: float = 0.05
    processor_threads: int = 2
    file_io_threads: int = 2
    document_root: Optional[str] = None


class ReactorServer:
    """Assembles the full N-Server runtime from a :class:`RuntimeConfig`.

    Usage::

        server = ReactorServer(hooks=MyHooks(), config=RuntimeConfig())
        server.start()            # binds, spawns threads, returns
        ... server.port ...
        server.stop()
    """

    def __init__(self, hooks: ServerHooks, config: RuntimeConfig,
                 host: str = "127.0.0.1", port: int = 0,
                 handle_cls: Optional[type] = None,
                 listen_sock=None):
        self.hooks = hooks
        self.config = config
        self.host = host
        #: SocketHandle subclass wrapping accepted sockets (the fault
        #: plane injects its faulty handles here)
        self.handle_cls = handle_cls
        #: already-bound listening socket to adopt instead of binding
        #: (the O16 multi-process path: each worker process receives
        #: the supervisor's shared SO_REUSEPORT socket over fd passing)
        self.listen_sock = listen_sock
        self._requested_port = port
        self._started = False
        self._lock = threading.Lock()

        # Always-on flight recorder: lifecycle events for this server's
        # connections land here (a shard renames its own in
        # ReactorShard); no option gates it.
        self.flight = FlightRecorder(capacity=config.flight_capacity,
                                     name="reactor",
                                     dump_dir=config.flight_dump_dir)

        # O11 / O10 / O12 feature objects (null objects when disabled).
        self.tracer = EventTracer() if config.debug_mode else NULL_TRACER
        self.log = ServerLog() if config.logging else NULL_LOG
        self.registry = MetricsRegistry() if config.profiling else NULL_REGISTRY
        self.profiler = (Profiler(registry=self.registry)
                         if config.profiling else NULL_PROFILER)
        # O11: finished request spans stream to an exporter — a JSONL
        # file when configured, the in-memory ring otherwise.
        self.exporter = None
        if config.profiling:
            self.exporter = (JsonlExporter(config.trace_export_path)
                             if config.trace_export_path
                             else RingExporter(config.trace_ring_capacity))
        self.spans = (SpanRecorder(self.registry,
                                   tracer=self.tracer if config.debug_mode else None,
                                   exporter=self.exporter)
                      if config.profiling else NULL_SPANS)

        # O6: file cache.
        self.cache: Optional[FileCache] = None
        if config.cache_policy is not None:
            if config.document_root is not None:
                self.cache = FileCache.for_directory(
                    config.document_root, capacity=config.cache_capacity,
                    policy=config.cache_policy)
            else:
                self.cache = FileCache(capacity=config.cache_capacity,
                                       policy=config.cache_policy)
            if config.profiling:
                self.profiler.attach_cache(self.cache.stats)

        # O15: zero-copy write path — a shared header BufferPool plus a
        # segmented OutBuffer per connection (installed in
        # _make_communicator).  "buffered" keeps the copying path.
        self.buffer_pool: Optional[BufferPool] = None
        if config.write_path == "zerocopy":
            self.buffer_pool = BufferPool(
                classes=config.buffer_size_classes,
                per_class=config.buffer_pool_limit)
        elif config.write_path != "buffered":
            raise ValueError(
                f"write_path must be 'buffered' or 'zerocopy', "
                f"not {config.write_path!r}")

        # Event source chain (Decorator): sockets -> timers -> app queue.
        # The socket base rides the configured Poller backend (O18):
        # explicit name, else $REPRO_POLLER, else the platform's best.
        self.socket_source = SocketEventSource(poller=config.poller)
        self.timer_source = TimerEventSource(self.socket_source)
        self.app_source = QueueEventSource(self.timer_source)
        self.source = self.app_source

        self.container = Container()

        # O8: event queue flavour for the reactive Event Processor.
        if config.event_scheduling:
            queue = QuotaPriorityQueue(config.scheduling_quotas or {})
        else:
            queue = FifoEventQueue()

        # O17: CoDel-style sojourn-deadline drops on the reactive queue.
        # Only READABLE events are sheddable: completions carry replies
        # already owed and retire pills are control flow.
        if config.degradation and config.sojourn_deadline is not None:
            queue = SojournQueue(
                queue,
                deadline=config.sojourn_deadline,
                interval=config.sojourn_interval,
                on_drop=self._on_sojourn_drop,
                droppable=lambda e: getattr(e, "kind", None)
                == EventKind.READABLE,
            )

        # O2/O5: the reactive Event Processor (or inline handling).
        self.processor: Optional[EventProcessor] = None
        self.controller: Optional[ProcessorController] = None
        if config.use_processor_pool:
            self.processor = EventProcessor(
                handler=self._process_event,
                threads=config.processor_threads,
                queue=queue,
                name="reactive",
            )
            if config.dynamic_threads:
                self.controller = ProcessorController(
                    self.processor,
                    min_threads=1,
                    max_threads=max(config.processor_threads * 4, 4),
                )

        # O9: overload controller watching the reactive queue.
        self.overload: Optional[OverloadController] = None
        if config.overload_control or config.max_connections is not None:
            self.overload = OverloadController(
                max_connections=config.max_connections,
                flight=self.flight,
                trip_dump_after=config.overload_dump_after)
            if config.overload_control and self.processor is not None:
                self.overload.watch(
                    "reactive",
                    probe=lambda: self.processor.queue_length,
                    mark=Watermark(high=config.overload_high,
                                   low=config.overload_low),
                )

        # O17: the graceful-degradation plane — explicit prioritized
        # shedding, brownout for content hooks, circuit-broken file I/O
        # and (optionally) AIMD watermark control.
        self.shedding: Optional[SheddingPolicy] = None
        self.brownout: Optional[BrownoutController] = None
        self.breaker: Optional[CircuitBreaker] = None
        self.retry_budget: Optional[RetryBudget] = None
        self.adaptive: Optional[AdaptiveController] = None
        self._reject_payload = b""
        if config.degradation:
            self._reject_payload = rejection_response(config.shed_retry_after)
            self.shedding = SheddingPolicy(
                overload=self.overload,
                limiter=ClientRateLimiter(
                    rate=config.shed_rate,
                    burst=config.shed_burst,
                    max_clients=config.shed_max_clients),
                classes=dict(config.shed_classes),
                priority_floor=config.shed_priority_floor,
                retry_after=config.shed_retry_after,
                reject_payload=self._reject_payload,
                on_overload=config.shed_on_overload,
                flight=self.flight,
            )
            self.brownout = BrownoutController(
                stale_threshold=config.brownout_stale_threshold,
                bound_threshold=config.brownout_bound_threshold,
                max_response_bytes=config.brownout_max_response)
            self.breaker = CircuitBreaker(
                name="file-io",
                failure_threshold=config.breaker_failures,
                recovery_time=config.breaker_recovery,
                probe_quota=config.breaker_probes)
            self.retry_budget = RetryBudget(ratio=config.retry_budget_ratio)

        # O4: asynchronous completions (emulated non-blocking file I/O).
        self.file_io: Optional[AsyncFileIO] = None
        if config.async_completions:
            sink = (self.processor.submit if self.processor is not None
                    else self._process_event)
            self.file_io = AsyncFileIO(
                sink=sink,
                threads=config.file_io_threads,
                cache=self.cache,
                root=config.document_root,
                breaker=self.breaker,
                retry_budget=self.retry_budget,
            )

        # O7: idle-connection reaper.
        self.reaper: Optional[IdleConnectionReaper] = None
        if config.shutdown_long_idle:
            self.reaper = IdleConnectionReaper(
                idle_limit=config.idle_limit,
                on_idle=self._reap_connection,
            )

        # O11: periodic gauge sampler over the subsystems wired above.
        self.sampler: Optional[PeriodicSampler] = None
        if config.profiling:
            sampler = PeriodicSampler(self.registry,
                                      interval=config.sample_interval)
            sampler.add_probe(
                "server_open_connections",
                lambda: len(self.container),
                help="Currently open connections")
            if self.processor is not None:
                sampler.add_probe(
                    "server_queue_depth",
                    lambda: self.processor.queue_length,
                    help="Reactive Event Processor queue length")
                sampler.add_probe(
                    "server_pool_threads",
                    lambda: self.processor.thread_count,
                    help="Event Processor pool size")
                sampler.add_probe(
                    "server_pool_busy",
                    lambda: self.processor.busy_count,
                    help="Event Processor threads currently handling events")
            if self.overload is not None:
                sampler.add_probe(
                    "server_overload_tripped",
                    lambda: len(self.overload.overloaded_queues()),
                    help="Watermark queues currently in the tripped state")
                sampler.add_probe(
                    "server_postponed_accepts",
                    lambda: self.overload.postponed_accepts,
                    help="Accepts postponed by overload control")
            if self.cache is not None:
                sampler.add_probe(
                    "server_cache_hit_rate",
                    lambda: self.cache.stats.hit_rate,
                    help="File cache hit rate (0..1)")
            if self.buffer_pool is not None:
                sampler.add_probe(
                    "server_buffer_pool_hit_rate",
                    lambda: self.buffer_pool.stats.hit_rate,
                    help="Header buffer pool hit rate (0..1)")
            sampler.add_probe(
                "server_read_pool_hit_rate",
                lambda: self.socket_source.read_pool.stats.hit_rate,
                help="Pooled recv_into buffer hit rate (0..1)")
            if self.shedding is not None:
                sampler.add_probe(
                    "server_shed_total",
                    lambda: self.shedding.shed_total,
                    help="Requests/connections shed by the O17 policy")
            if self.brownout is not None:
                sampler.add_probe(
                    "server_brownout_level",
                    lambda: self.brownout.level,
                    help="Brownout degradation level (0..1)")
            if self.breaker is not None:
                sampler.add_probe(
                    "server_breaker_open",
                    lambda: 0.0 if self.breaker.state == CircuitBreaker.CLOSED
                    else 1.0,
                    help="File-I/O circuit breaker not closed (0/1)")
            self.sampler = sampler

        # O17: AIMD control loop retuning the O9 watermarks (and the
        # brownout level) from the O11 p99 latency signal.
        if (config.degradation and config.adaptive_control
                and self.overload is not None):
            self.adaptive = AdaptiveController(
                self.overload,
                queue_name="reactive",
                latency_probe=lambda: self.registry.histogram(
                    "server_request_seconds").quantile(0.99),
                brownout=self.brownout,
                target_p99=config.adaptive_target_p99,
                interval=config.adaptive_interval,
                log=self.log,
            )

        # O13: resilience runtime — per-stage deadlines, worker
        # supervision, poison-event quarantine.  Counters land in the
        # shared registry so they surface through the obs exposition.
        self.deadlines: Optional[DeadlineMonitor] = None
        self.supervisor: Optional[WorkerSupervisor] = None
        self.quarantine: Optional[EventQuarantine] = None
        if config.fault_tolerance:
            self.deadlines = DeadlineMonitor(
                self.container.connections,
                DeadlinePolicy(header=config.header_timeout,
                               request=config.request_timeout,
                               write=config.write_timeout),
                interval=config.deadline_interval,
                counter=self.registry.counter(
                    "server_deadline_timeouts_total",
                    "Connections closed for blowing a stage deadline"),
                log=self.log,
            )
            if self.processor is not None:
                self.supervisor = WorkerSupervisor(
                    self.processor,
                    interval=config.supervision_interval,
                    counter=self.registry.counter(
                        "server_worker_restarts_total",
                        "Dead Event Processor workers replaced"),
                    log=self.log,
                    flight=self.flight,
                )
                self.quarantine = EventQuarantine.attach(
                    self.processor,
                    max_retries=config.max_event_retries,
                    counter=self.registry.counter(
                        "server_quarantined_events_total",
                        "Poison events quarantined after retries"),
                    log=self.log,
                    flight=self.flight,
                )

        self.listen: Optional[ListenHandle] = None
        self.acceptor: Optional[Acceptor] = None
        self.dispatcher = EventDispatcher(
            self.source,
            threads=config.dispatcher_threads,
            profiler=self.profiler if config.profiling else None,
        )

    # -- wiring ---------------------------------------------------------
    @property
    def port(self) -> int:
        if self.listen is None:
            raise RuntimeError("server not started")
        return self.listen.port

    def _make_communicator(self, handle) -> Communicator:
        # The segmented out-buffer must be in place before construction:
        # hooks.on_connect runs inside Communicator.__init__ and may
        # already queue output (e.g. a server greeting).
        if self.buffer_pool is not None:
            handle.out_buffer = OutBuffer()
        conn = Communicator(
            handle,
            self.hooks,
            use_codec=self.config.use_codec,
            on_teardown=self._on_teardown,
            update_interest=self._update_interest,
            profiler=self.profiler,
            tracer=self.tracer,
            log=self.log,
            spans=self.spans,
            buffer_pool=self.buffer_pool,
            flight=self.flight,
        )
        conn.context["server"] = self
        self.container.add(conn)
        if self.reaper is not None:
            self.reaper.watch(handle)
        if self.deadlines is not None:
            self.deadlines.watch(conn)
        return conn

    def _update_interest(self, handle) -> None:
        self.socket_source.update_interest(handle)
        self.socket_source.wakeup()

    def _on_teardown(self, conn: Communicator) -> None:
        self.container.remove(conn)
        self.socket_source.deregister(conn.handle)
        if self.reaper is not None:
            self.reaper.unwatch(conn.handle)
        if self.deadlines is not None:
            self.deadlines.unwatch(conn)
        if self.overload is not None:
            self.overload.connection_closed()

    def _reap_connection(self, handle) -> None:
        conn = self.container.lookup(handle)
        if conn is not None:
            self.log.info(f"reaping idle connection {handle.name}")
            conn.close()

    def _on_sojourn_drop(self, event, sojourn: float) -> None:
        """A queued event blew its sojourn deadline (O17): instead of
        serving it uselessly late, 503 the victim connection and close.
        Runs on the Event Processor worker that popped the stale item."""
        handle = getattr(event, "handle", None)
        trace_id = getattr(handle, "trace_id", 0) if handle is not None else 0
        if self.shedding is not None:
            self.shedding.record_rejection(
                ShedDecision("reject", REASON_QUEUE_DEADLINE,
                             self.config.shed_retry_after),
                f"sojourn={sojourn:.3f}s", trace_id)
        conn = self.container.lookup(handle) if handle is not None else None
        if conn is None:
            return
        if self._reject_payload:
            conn.send_bytes(self._reject_payload, close_after=True)
        else:
            conn.close()

    # -- event processing -------------------------------------------------
    def _process_event(self, event) -> None:
        """Reactive Event Processor handler: socket readiness and
        asynchronous completions meet here."""
        if event.kind == EventKind.READABLE:
            try:
                self.container.route_readable(event)
            finally:
                if self.processor is not None:
                    self.socket_source.resume(event.handle)
        elif event.kind == EventKind.WRITABLE:
            self.container.route_writable(event)
        elif event.kind == EventKind.COMPLETION:
            event.complete()

    def _submit(self, event) -> None:
        if self.processor is not None:
            # One-shot read interest: no duplicate events while queued and
            # no two processor threads on the same connection.
            if event.kind == EventKind.READABLE:
                self.socket_source.pause(event.handle)
            if self.config.event_scheduling:
                conn = self.container.lookup(event.handle)
                if conn is not None:
                    event.priority = conn.priority
            self.processor.submit(event)
        else:
            self._process_event(event)

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        with self._lock:
            if self._started:
                return
            self._started = True
        # Best effort: SIGUSR2 dumps every live flight recorder.  A
        # no-op off the main thread or on platforms without the signal.
        install_signal_dump()
        self._open_acceptor()
        self.dispatcher.route(EventKind.READABLE, self._submit)
        self.dispatcher.route(EventKind.WRITABLE, self._submit)
        self.dispatcher.route(EventKind.COMPLETION, self._submit)
        self._start_subsystems()
        self.dispatcher.start()
        if self.listen is not None:
            self.log.info(f"server listening on {self.host}:{self.port}")

    def _open_acceptor(self) -> None:
        """Bind the listen socket and wire ACCEPT routing.  A shard in a
        :class:`~repro.runtime.sharding.ShardedReactorServer` overrides
        this to a no-op: the shared accept plane feeds it connections."""
        self.listen = ListenHandle(self.host, self._requested_port,
                                   handle_cls=self.handle_cls,
                                   sock=self.listen_sock)
        self.acceptor = Acceptor(
            self.listen,
            self.socket_source,
            on_connection=self._make_communicator,
            overload=self.overload,
            profiler=self.profiler,
            flight=self.flight,
            shedding=self.shedding,
            accept_batch=self.config.accept_batch,
        )
        self.dispatcher.route(EventKind.ACCEPT, self.acceptor.handle)
        self.acceptor.open()

    def _start_subsystems(self) -> None:
        if self.processor is not None:
            self.processor.start()
        if self.controller is not None:
            self.controller.start()
        if self.file_io is not None:
            self.file_io.start()
        if self.reaper is not None:
            self.reaper.start()
        if self.deadlines is not None:
            self.deadlines.start()
        if self.supervisor is not None:
            self.supervisor.start()
        if self.sampler is not None:
            self.sampler.start()
        if self.adaptive is not None:
            self.adaptive.start()

    def stop(self) -> None:
        with self._lock:
            if not self._started:
                return
            self._started = False
        if self.adaptive is not None:
            self.adaptive.stop()
        self.dispatcher.stop()
        if self.acceptor is not None:
            self.acceptor.close()
        self.container.close_all()
        if self.controller is not None:
            self.controller.stop()
        if self.supervisor is not None:
            self.supervisor.stop()  # before the pool: no respawn race
        if self.deadlines is not None:
            self.deadlines.stop()
        if self.processor is not None:
            self.processor.stop()
        if self.file_io is not None:
            self.file_io.stop()
        if self.reaper is not None:
            self.reaper.stop()
        if self.sampler is not None:
            self.sampler.sample()  # final state snapshot before threads die
            self.sampler.stop()
        self.source.close()
        self.tracer.close()
        if self.exporter is not None:
            self.exporter.close()
        self.log.info("server stopped")

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Graceful shutdown: stop accepting, let already-accepted work
        finish up to the deadline, then :meth:`stop` (which force-closes
        whatever remains and flushes tracer/obs state).

        Returns True when the server went fully quiescent before the
        deadline — no queued events, no busy workers, no connection with
        an in-flight request or unflushed reply.
        """
        timeout = timeout if timeout is not None else self.config.drain_timeout
        with self._lock:
            started = self._started
        if not started:
            return True
        self.log.info("draining: accept closed, waiting for in-flight work")
        self.flight.record("drain", f"timeout={timeout}")
        if self.acceptor is not None:
            self.acceptor.close()
        deadline = time.monotonic() + timeout
        settled_since = None
        drained = False
        while time.monotonic() < deadline:
            if self._quiescent():
                # Hold quiescence briefly: a request read off the socket
                # but not yet queued would look done for an instant.
                if settled_since is None:
                    settled_since = time.monotonic()
                elif time.monotonic() - settled_since >= 0.05:
                    drained = True
                    break
            else:
                settled_since = None
            time.sleep(0.005)
        self.stop()
        return drained

    def _quiescent(self) -> bool:
        if self.processor is not None and (
                self.processor.queue_length or self.processor.busy_count):
            return False
        return all(not conn.busy() for conn in self.container.connections())

    # -- degradation -----------------------------------------------------
    def degradation_status(self) -> dict:
        """O17 plane snapshot for status pages (empty when disabled)."""
        if self.shedding is None:
            return {}
        status = {"shed": self.shedding.status()}
        if self.brownout is not None:
            status["brownout"] = self.brownout.status()
        if self.breaker is not None:
            status["breaker"] = self.breaker.status()
        if self.adaptive is not None:
            status["adaptive"] = self.adaptive.status()
        return status

    # -- tracing ---------------------------------------------------------
    def trace_records(self) -> list:
        """Finished span records held by the exporter (empty when spans
        stream to JSONL or profiling is off — read the file instead)."""
        records = getattr(self.exporter, "records", None)
        return records() if records is not None else []

    def trace_report(self) -> str:
        """Plain-text report over the exporter's in-memory records."""
        return render_trace_report(self.trace_records())

    def __enter__(self) -> "ReactorServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
