"""Emulated non-blocking file I/O (options O4, O6).

Java (and POSIX) offer no true non-blocking disk reads, so the paper
emulates them: "non-blocking file I/O operations are emulated using a
pool of threads".  This is the Proactor + Asynchronous Completion Token
part of the N-Server: callers issue ``read_file(path, act)`` and get the
result later as a :class:`FileReadEvent` posted to the completion sink
(typically the reactive Event Processor's queue, so completions are
handled on the same path as socket events).

When a :class:`~repro.cache.FileCache` is attached (O6), cache hits
complete immediately — still *asynchronously* from the caller's view,
via the sink — and misses populate the cache after the disk read.

The O17 degradation plane wraps the disk path in a
:class:`~repro.runtime.degradation.CircuitBreaker`: while the breaker
is open (a failing disk), reads fail fast at issue time instead of
piling onto the worker queue, and a
:class:`~repro.runtime.degradation.RetryBudget` bounds how often a
failed read is retried before the error is surfaced.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

from repro.cache import FileCache
from repro.runtime.degradation import CircuitOpenError
from repro.runtime.events import (
    AsynchronousCompletionToken,
    CompletionEvent,
    FileReadEvent,
)
from repro.runtime.scheduler import FifoEventQueue

__all__ = ["AsyncFileIO"]


class AsyncFileIO:
    """Thread-pool emulation of non-blocking file reads.

    ``sink(event)`` receives every completion; it must be thread-safe
    (Event Processor ``submit`` and ``QueueEventSource.post`` both are).
    """

    def __init__(
        self,
        sink: Callable[[CompletionEvent], None],
        threads: int = 2,
        cache: Optional[FileCache] = None,
        root: Optional[str] = None,
        breaker=None,
        retry_budget=None,
    ):
        if threads < 1:
            raise ValueError("threads must be >= 1")
        self.sink = sink
        self.cache = cache
        self.root = root
        #: O17 circuit breaker around the disk path (None = unprotected)
        self.breaker = breaker
        #: O17 retry budget: one in-pool retry per failed read while the
        #: budget allows (None = no retries)
        self.retry_budget = retry_budget
        self.breaker_rejections = 0
        self.retries = 0
        #: optional fault hook called with the path before every disk
        #: read; raising OSError simulates a failing disk (fault plane)
        self.fault_hook: Optional[Callable[[str], None]] = None
        self._queue = FifoEventQueue()
        self._threads = [
            threading.Thread(target=self._worker, daemon=True,
                             name=f"file-io-{i}")
            for i in range(threads)
        ]
        self._started = False
        self.reads = 0
        self.cache_hits = 0

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for t in self._threads:
            t.start()

    def stop(self) -> None:
        self._queue.close()
        for t in self._threads:
            t.join(timeout=2.0)

    # -- operations ---------------------------------------------------------
    def read_file(self, path: str,
                  act: Optional[AsynchronousCompletionToken] = None,
                  priority: int = 0) -> None:
        """Request the full contents of ``path``; completion arrives at
        the sink as a :class:`FileReadEvent` whose payload is the bytes
        (or whose ``error`` is the raising exception)."""
        act = act or AsynchronousCompletionToken()
        if self.cache is not None and self.cache.contains(path):
            got = self.cache.get_file(path)
            self.cache_hits += 1
            self.sink(FileReadEvent(token=act, payload=got.payload,
                                    priority=priority))
            return
        # O17: while the breaker is open the disk is presumed dead —
        # fail fast at issue time so nothing piles onto the pool queue.
        if self.breaker is not None and not self.breaker.allow():
            self.breaker_rejections += 1
            self.sink(FileReadEvent(token=act, error=CircuitOpenError(path),
                                    priority=priority))
            return
        self._queue.push((path, act, priority, 0))

    def _load(self, path: str) -> bytes:
        if self.fault_hook is not None:
            self.fault_hook(path)
        if self.cache is not None:
            return self.cache.get_file(path).payload
        full = path
        if self.root is not None:
            import os

            root = os.path.abspath(self.root)
            full = os.path.abspath(os.path.join(root, path.lstrip("/")))
            # Containment needs the separator: a bare prefix check lets
            # a sibling like ``<root>-secrets`` through.
            if full != root and not full.startswith(root + os.sep):
                raise FileNotFoundError(path)
        with open(full, "rb") as fh:
            return fh.read()

    def _worker(self) -> None:
        while True:
            item = self._queue.pop(timeout=0.25)
            if item is None:
                if self._queue.closed:
                    return
                continue
            path, act, priority, attempt = item
            self.reads += 1
            try:
                data = self._load(path)
            except (FileNotFoundError, IsADirectoryError,
                    NotADirectoryError) as exc:
                # The file is absent, not the disk unhealthy: a 404-class
                # miss must not trip the breaker or burn retry budget —
                # a scanner walking dead URLs would otherwise black out
                # the whole disk plane for everyone.
                if self.breaker is not None:
                    self.breaker.record_success()
                self.sink(FileReadEvent(token=act, error=exc,
                                        priority=priority))
            except OSError as exc:
                if self.breaker is not None:
                    self.breaker.record_failure()
                if (attempt == 0
                        and self.retry_budget is not None
                        and (self.breaker is None or self.breaker.allow())
                        and self.retry_budget.can_retry()):
                    self.retries += 1
                    self._queue.push((path, act, priority, 1))
                    continue
                self.sink(FileReadEvent(token=act, error=exc,
                                        priority=priority))
            else:
                if self.breaker is not None:
                    self.breaker.record_success()
                if self.retry_budget is not None:
                    self.retry_budget.record_request()
                self.sink(FileReadEvent(token=act, payload=data,
                                        priority=priority))
