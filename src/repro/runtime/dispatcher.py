"""Event Dispatcher (Table 2 row "Event Dispatcher"; options O1, O2, O4).

In the extended-Reactor design the dispatcher "is only responsible for
querying the Event Source for ready events and then passing those ready
events to the Event Processor for processing".  When O2=No there is no
separate processor pool and events are handled inline on the dispatcher
thread — a standard Reactor.

O1 picks the number of dispatcher threads (1 or 2N).  Multiple
dispatcher threads share the Event Source behind a poll lock; the win is
overlapping inline handling, which only matters for the O2=No
configuration.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional

from repro.runtime.event_source import EventSource
from repro.runtime.events import Event, EventKind

__all__ = ["EventDispatcher"]


class EventDispatcher:
    """Polls an :class:`EventSource` and routes events by kind.

    ``route(kind, target)`` installs where each event kind goes: the
    target is any callable; generated frameworks pass either an Event
    Processor's ``submit`` (O2=Yes) or an event handler's ``handle``
    (O2=No, inline Reactor behaviour).
    """

    def __init__(self, source: EventSource, threads: int = 1,
                 poll_timeout: float = 0.1,
                 profiler=None):
        if threads < 1:
            raise ValueError("threads must be >= 1")
        self.source = source
        self.poll_timeout = poll_timeout
        self.profiler = profiler
        self._routes: Dict[EventKind, Callable[[Event], None]] = {}
        self._default_route: Optional[Callable[[Event], None]] = None
        self._threads_wanted = threads
        self._threads: List[threading.Thread] = []
        self._poll_lock = threading.Lock()
        self._running = threading.Event()
        self.dispatched = 0
        self.unrouted = 0

    # -- routing -----------------------------------------------------------
    def route(self, kind: EventKind, target: Callable[[Event], None]) -> None:
        self._routes[kind] = target

    def route_default(self, target: Callable[[Event], None]) -> None:
        self._default_route = target

    def dispatch(self, event: Event) -> None:
        """Route one event (public so single-step tests and the generated
        Reactor-mode loop can drive it directly)."""
        target = self._routes.get(event.kind, self._default_route)
        if target is None:
            self.unrouted += 1
            return
        self.dispatched += 1
        if self.profiler is not None:
            self.profiler.event_dispatched()
        target(event)

    # -- the loop --------------------------------------------------------
    def poll_once(self, timeout: Optional[float] = None) -> int:
        """One poll+dispatch cycle; returns events dispatched."""
        with self._poll_lock:
            events = self.source.poll(self.poll_timeout if timeout is None
                                      else timeout)
        for event in events:
            self.dispatch(event)
        return len(events)

    def _loop(self) -> None:
        while self._running.is_set():
            self.poll_once()

    # -- lifecycle ---------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._running.is_set()

    def start(self) -> None:
        if self._running.is_set():
            return
        self._running.set()
        for i in range(self._threads_wanted):
            t = threading.Thread(target=self._loop, daemon=True,
                                 name=f"dispatcher-{i}")
            self._threads.append(t)
            t.start()

    def stop(self, timeout: float = 5.0) -> None:
        if not self._running.is_set():
            return
        self._running.clear()
        self.source.wakeup()
        for t in self._threads:
            t.join(timeout=timeout)
        self._threads.clear()
