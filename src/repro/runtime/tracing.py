"""Debug-mode event tracing and application logging (options O10, O12).

O10=Debug: "all internal events that are triggered in the server are
written into a file.  The user can trace this file to get a snapshot of
what happened during the time an error condition occurred."
:class:`EventTracer` keeps a bounded in-memory ring (cheap enough to be
always-on in debug builds) and can stream to a file.

O12: application-level logging.  :class:`ServerLog` is a minimal
severity-tagged logger; the generated handlers call it only when the
template generated those call sites.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import IO, Optional

__all__ = ["TraceRecord", "EventTracer", "NullTracer", "NULL_TRACER",
           "ServerLog", "NullLog", "NULL_LOG"]


@dataclass
class TraceRecord:
    timestamp: float
    category: str
    detail: str

    def format(self) -> str:
        return f"{self.timestamp:.6f} [{self.category}] {self.detail}"


class EventTracer:
    """Bounded ring of internal-event trace records (debug mode)."""

    enabled = True

    def __init__(self, capacity: int = 4096, sink: Optional[IO[str]] = None,
                 clock=time.monotonic):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._ring: deque = deque(maxlen=capacity)
        self._sink = sink
        self._clock = clock
        self._lock = threading.Lock()

    def trace(self, category: str, detail: str) -> None:
        rec = TraceRecord(self._clock(), category, detail)
        with self._lock:
            self._ring.append(rec)
            if self._sink is not None:
                self._sink.write(rec.format() + "\n")

    def records(self, category: Optional[str] = None) -> list:
        with self._lock:
            recs = list(self._ring)
        if category is not None:
            recs = [r for r in recs if r.category == category]
        return recs

    def dump(self, sink: IO[str]) -> int:
        """Write the current ring to ``sink``; returns record count."""
        recs = self.records()
        for rec in recs:
            sink.write(rec.format() + "\n")
        if hasattr(sink, "flush"):
            sink.flush()
        return len(recs)

    def flush(self) -> None:
        """Flush the streaming sink (if any and if it supports it)."""
        with self._lock:
            sink = self._sink
        if sink is not None and hasattr(sink, "flush"):
            sink.flush()

    def close(self) -> None:
        """Flush and detach the streaming sink.

        Called from server teardown so buffered file-sink writes are not
        lost on shutdown.  The ring stays readable; further traces only
        land in the ring.  The sink itself is not closed — the tracer
        does not own it (callers pass open files / StringIO in).
        """
        with self._lock:
            sink, self._sink = self._sink, None
        if sink is not None and hasattr(sink, "flush"):
            sink.flush()


class NullTracer(EventTracer):
    """Production mode: tracing call sites are not generated, but library
    code that takes a tracer parameter gets this free-of-cost stub."""

    enabled = False

    def __init__(self):
        pass

    def trace(self, category: str, detail: str) -> None:
        pass

    def records(self, category: Optional[str] = None) -> list:
        return []

    def dump(self, sink) -> int:
        return 0

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


NULL_TRACER = NullTracer()


class ServerLog:
    """Tiny severity logger (option O12)."""

    enabled = True
    LEVELS = ("debug", "info", "warning", "error")

    def __init__(self, sink: Optional[IO[str]] = None, level: str = "info",
                 clock=time.monotonic):
        if level not in self.LEVELS:
            raise ValueError(f"unknown level {level!r}")
        self._sink = sink
        self._threshold = self.LEVELS.index(level)
        self._clock = clock
        self._lock = threading.Lock()
        self.lines: list = []

    def log(self, level: str, message: str) -> None:
        if self.LEVELS.index(level) < self._threshold:
            return
        line = f"{self._clock():.3f} {level.upper():8s} {message}"
        with self._lock:
            self.lines.append(line)
            if self._sink is not None:
                self._sink.write(line + "\n")

    def debug(self, message: str) -> None:
        self.log("debug", message)

    def info(self, message: str) -> None:
        self.log("info", message)

    def warning(self, message: str) -> None:
        self.log("warning", message)

    def error(self, message: str) -> None:
        self.log("error", message)


class NullLog(ServerLog):
    enabled = False

    def __init__(self):
        self.lines = []

    def log(self, level: str, message: str) -> None:
        pass


NULL_LOG = NullLog()
