"""Debug-mode event tracing and application logging (options O10, O12).

O10=Debug: "all internal events that are triggered in the server are
written into a file.  The user can trace this file to get a snapshot of
what happened during the time an error condition occurred."
:class:`EventTracer` keeps a bounded in-memory ring (cheap enough to be
always-on in debug builds) and can stream to a file.

Since the always-on flight recorder landed
(:mod:`repro.obs.flight`), the tracer is a thin adapter over a
:class:`~repro.obs.flight.FlightRecorder`: one event vocabulary, one
ring implementation, one flush/close path.  The tracer keeps its
historical surface — :class:`TraceRecord` objects, ``[category]``
formatting without trace ids, a streaming text sink — but new code
should record into a flight recorder directly; ``EventTracer`` exists
for O10=Debug builds and for callers of the old API.

O12: application-level logging.  :class:`ServerLog` is a minimal
severity-tagged logger; the generated handlers call it only when the
template generated those call sites.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import IO, Optional

from repro.obs.flight import FlightRecorder

__all__ = ["TraceRecord", "EventTracer", "NullTracer", "NULL_TRACER",
           "ServerLog", "NullLog", "NULL_LOG"]


@dataclass
class TraceRecord:
    timestamp: float
    category: str
    detail: str

    def format(self) -> str:
        return f"{self.timestamp:.6f} [{self.category}] {self.detail}"


class EventTracer:
    """Bounded ring of internal-event trace records (debug mode).

    .. deprecated:: backed by :class:`repro.obs.flight.FlightRecorder`
       — use a flight recorder directly in new code.  Details are
       capped at the recorder's 512-byte limit.
    """

    enabled = True

    def __init__(self, capacity: int = 4096, sink: Optional[IO[str]] = None,
                 clock=time.monotonic, flight: Optional[FlightRecorder] = None):
        self._flight = (flight if flight is not None
                        else FlightRecorder(capacity=capacity, name="tracer",
                                            clock=clock))
        self._sink = sink
        self._lock = threading.Lock()

    @property
    def flight(self) -> FlightRecorder:
        """The backing flight recorder (shared event ring)."""
        return self._flight

    def trace(self, category: str, detail: str, trace_id: int = 0) -> None:
        timestamp = self._flight.record(category, detail, trace_id)
        with self._lock:
            if self._sink is not None:
                self._sink.write(
                    f"{timestamp:.6f} [{category}] {detail}\n")

    def records(self, category: Optional[str] = None) -> list:
        return [TraceRecord(event.timestamp, event.category, event.detail)
                for event in self._flight.events(category=category)]

    def dump(self, sink: IO[str]) -> int:
        """Write the current ring to ``sink``; returns record count."""
        recs = self.records()
        for rec in recs:
            sink.write(rec.format() + "\n")
        if hasattr(sink, "flush"):
            sink.flush()
        return len(recs)

    def flush(self) -> None:
        """Flush the streaming sink (if any and if it supports it)."""
        with self._lock:
            sink = self._sink
        if sink is not None and hasattr(sink, "flush"):
            sink.flush()

    def close(self) -> None:
        """Flush and detach the streaming sink.

        Called from server teardown so buffered file-sink writes are not
        lost on shutdown.  The ring stays readable; further traces only
        land in the ring.  The sink itself is not closed — the tracer
        does not own it (callers pass open files / StringIO in).
        """
        with self._lock:
            sink, self._sink = self._sink, None
        if sink is not None and hasattr(sink, "flush"):
            sink.flush()


class NullTracer(EventTracer):
    """Production mode: tracing call sites are not generated, but library
    code that takes a tracer parameter gets this free-of-cost stub."""

    enabled = False
    flight = None

    def __init__(self):
        pass

    def trace(self, category: str, detail: str, trace_id: int = 0) -> None:
        pass

    def records(self, category: Optional[str] = None) -> list:
        return []

    def dump(self, sink) -> int:
        return 0

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


NULL_TRACER = NullTracer()


class ServerLog:
    """Tiny severity logger (option O12)."""

    enabled = True
    LEVELS = ("debug", "info", "warning", "error")

    def __init__(self, sink: Optional[IO[str]] = None, level: str = "info",
                 clock=time.monotonic):
        if level not in self.LEVELS:
            raise ValueError(f"unknown level {level!r}")
        self._sink = sink
        self._threshold = self.LEVELS.index(level)
        self._clock = clock
        self._lock = threading.Lock()
        self.lines: list = []

    def log(self, level: str, message: str) -> None:
        if self.LEVELS.index(level) < self._threshold:
            return
        line = f"{self._clock():.3f} {level.upper():8s} {message}"
        with self._lock:
            self.lines.append(line)
            if self._sink is not None:
                self._sink.write(line + "\n")

    def debug(self, message: str) -> None:
        self.log("debug", message)

    def info(self, message: str) -> None:
        self.log("info", message)

    def warning(self, message: str) -> None:
        self.log("warning", message)

    def error(self, message: str) -> None:
        self.log("error", message)


class NullLog(ServerLog):
    enabled = False

    def __init__(self):
        self.lines = []

    def log(self, level: str, message: str) -> None:
        pass


NULL_LOG = NullLog()
