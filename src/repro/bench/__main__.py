"""``python -m repro.bench`` — the continuous-benchmark runner and gate.

Runs the registered bench suites (all of them by default), writes each
result as ``BENCH_<name>.json`` at the repository root, and fails when
a run regresses against the committed baseline:

* ``--smoke`` — shrunk workloads (the CI gate): the bench files see
  ``REPRO_BENCH_SMOKE=1`` and cut their client/request counts, long
  companion simulations are deselected, and only the machine-portable
  derived ratios are gated (absolute seconds from a smoke run mean
  nothing against a full baseline);
* ``--threshold`` — the fraction of the baseline a derived ratio may
  shrink to before the gate trips (default 0.5);
* ``--no-write`` — gate only, leaving the committed baselines alone
  (what CI uses, so a green run on a fast machine never silently
  rebases the baseline);
* ``--list`` — show the registered suites and exit.

Exit status: 0 green, 1 on any pytest failure, schema violation or
regression.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.bench import (
    DEFAULT_RATIO_FLOOR,
    SUITES,
    _repo_root,
    compare_reports,
    run_suite,
    validate_report,
)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="run the bench suites, validate the result schema, "
                    "and gate against the committed BENCH_*.json "
                    "baselines")
    parser.add_argument("--suite", action="append", dest="suites",
                        choices=sorted(SUITES),
                        help="suite to run (repeatable; default: all)")
    parser.add_argument("--smoke", action="store_true",
                        help="shrunk workloads; gate derived ratios only")
    parser.add_argument("--threshold", type=float,
                        default=DEFAULT_RATIO_FLOOR,
                        help="regression floor as a fraction of the "
                             f"baseline (default {DEFAULT_RATIO_FLOOR})")
    parser.add_argument("--no-write", action="store_true",
                        help="do not update BENCH_*.json (gate only)")
    parser.add_argument("--output-dir", default=None,
                        help="where to write results (default: repo root)")
    parser.add_argument("--baseline-dir", default=None,
                        help="where committed baselines live "
                             "(default: repo root)")
    parser.add_argument("--list", action="store_true",
                        help="list registered suites and exit")
    parser.add_argument("--verbose", "-v", action="store_true",
                        help="stream pytest output while running")
    args = parser.parse_args(argv)

    if args.list:
        for name in sorted(SUITES):
            suite = SUITES[name]
            axes = ", ".join(f"{key}={list(values)}"
                             for key, values in suite.options.items())
            print(f"{name}: benchmarks/{suite.file} ({axes})")
        return 0

    root = _repo_root()
    output_dir = args.output_dir or root
    baseline_dir = args.baseline_dir or root
    if not args.no_write:
        os.makedirs(output_dir, exist_ok=True)
    failures = 0
    for name in (args.suites or sorted(SUITES)):
        suite = SUITES[name]
        mode = "smoke" if args.smoke else "full"
        print(f"[bench] {name}: running benchmarks/{suite.file} ({mode})",
              flush=True)
        code, report = run_suite(suite, smoke=args.smoke,
                                 verbose=args.verbose)
        if code != 0 or report is None:
            print(f"[bench] {name}: pytest failed (exit {code})")
            failures += 1
            continue
        errors = validate_report(report)
        if errors:
            print(f"[bench] {name}: result violates the schema:")
            for error in errors:
                print(f"  {error}")
            failures += 1
            continue
        for key, value in sorted(report["derived"].items()):
            print(f"[bench] {name}: {key} = {value:.3f}")

        baseline_path = os.path.join(baseline_dir, f"BENCH_{name}.json")
        if os.path.exists(baseline_path):
            with open(baseline_path, "r", encoding="utf-8") as fh:
                baseline = json.load(fh)
            regressions = compare_reports(report, baseline,
                                          ratio_floor=args.threshold)
            if regressions:
                print(f"[bench] {name}: REGRESSION against "
                      f"{baseline_path}:")
                for regression in regressions:
                    print(f"  {regression}")
                failures += 1
            else:
                print(f"[bench] {name}: within threshold of the "
                      f"committed baseline")
        else:
            print(f"[bench] {name}: no baseline at {baseline_path}; "
                  f"gate skipped")

        if not args.no_write:
            out_path = os.path.join(output_dir, f"BENCH_{name}.json")
            if args.smoke and os.path.exists(out_path):
                # Never let a shrunk run clobber a full baseline.
                print(f"[bench] {name}: smoke run; leaving {out_path} "
                      f"untouched")
                continue
            if not args.smoke:
                # A full baseline also records the ratios the shrunk
                # workload produces, so CI smoke runs gate against a
                # comparable (smoke-vs-smoke) reference.
                print(f"[bench] {name}: capturing smoke-mode ratios "
                      f"for the baseline", flush=True)
                smoke_code, smoke_report = run_suite(
                    suite, smoke=True, verbose=args.verbose)
                if smoke_code == 0 and smoke_report is not None:
                    report["smoke_derived"] = smoke_report["derived"]
            with open(out_path, "w", encoding="utf-8") as fh:
                json.dump(report, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"[bench] {name}: wrote {out_path}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
