"""Continuous benchmarking: run, schematise, and gate the bench suites.

``python -m repro.bench`` executes the repository's socket benchmarks
(`benchmarks/bench_*.py`, driven through pytest-benchmark), rewrites
each raw result into the stable ``BENCH_<name>.json`` schema below, and
compares it against the committed baseline at the repository root.  A
regression — a derived speedup ratio collapsing below the configured
fraction of its baseline — exits non-zero, which is what makes the CI
``bench`` job a gate instead of an archive.

Schema (version 1)::

    {
      "schema_version": 1,
      "name": "shards",                  # suite name
      "created": 1754000000.0,           # unix timestamp of the run
      "smoke": false,                    # shrunk smoke workload?
      "machine": {"python": ..., "platform": ..., "machine": ...,
                  "cpus": ...},
      "options": {"O14": [1, 4]},        # template option axes exercised
      "benchmarks": [                    # one entry per benchmark test
        {"test": "...", "params": {...}, "extra": {...},
         "samples": [s0, s1, ...],       # per-round wall seconds
         "stats": {"min": ..., "max": ..., "mean": ...,
                   "stddev": ..., "rounds": ...}},
        ...
      ],
      "derived": {"shard_speedup_4v1": 1.7},  # machine-portable ratios
      "smoke_derived": {"shard_speedup_4v1": 0.7}   # optional: the same
                                         # ratios under the shrunk smoke
                                         # workload, the baseline smoke
                                         # runs gate against
    }

The regression gate compares the **derived ratios** first — a speedup
of configuration B over configuration A on the same host, which travels
across machines the way absolute seconds never do.  Absolute means are
only compared when the machine fingerprints match exactly and neither
run is a smoke run.
"""

from __future__ import annotations

import json
import math
import os
import platform
import sys
import tempfile
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "SCHEMA_VERSION",
    "Suite",
    "SUITES",
    "machine_info",
    "validate_report",
    "build_report",
    "compare_reports",
    "run_suite",
]

SCHEMA_VERSION = 1

#: default regression threshold: a derived ratio may shrink to this
#: fraction of its committed baseline before the gate trips.  Generous
#: on purpose — CI machines are noisy; a real regression (the zero-copy
#: path quietly copying again, shards serialising on a new lock)
#: collapses the ratio toward 1.0, far past any scheduler jitter.
DEFAULT_RATIO_FLOOR = 0.5


def _repo_root() -> str:
    """The repository root (three levels above this package)."""
    here = os.path.abspath(os.path.dirname(__file__))
    return os.path.dirname(os.path.dirname(os.path.dirname(here)))


def machine_info() -> Dict[str, object]:
    """The fingerprint stored with (and compared between) reports."""
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpus": os.cpu_count() or 1,
    }


# -- suites -------------------------------------------------------------------


def _group_means(benchmarks: Sequence[Mapping], key: str
                 ) -> Dict[object, float]:
    """mean seconds per distinct ``extra[key]`` value."""
    sums: Dict[object, List[float]] = {}
    for bench in benchmarks:
        value = bench.get("extra", {}).get(key)
        if value is None:
            continue
        sums.setdefault(value, []).append(bench["stats"]["mean"])
    return {value: sum(means) / len(means)
            for value, means in sums.items() if means}


def _derived_shards(benchmarks: Sequence[Mapping]) -> Dict[str, float]:
    """4-shard speedup over 1 shard on the same host and workload."""
    means = _group_means(benchmarks, "shards")
    if 1 in means and 4 in means and means[4] > 0:
        return {"shard_speedup_4v1": means[1] / means[4]}
    return {}


def _derived_procs(benchmarks: Sequence[Mapping]) -> Dict[str, float]:
    """4-worker-process speedup over 1 on the same host and workload."""
    means = _group_means(benchmarks, "procs")
    if 1 in means and 4 in means and means[4] > 0:
        return {"procs_speedup_4v1": means[1] / means[4]}
    return {}


def _derived_zero_copy(benchmarks: Sequence[Mapping]) -> Dict[str, float]:
    """Zero-copy write-path speedup over the buffered path."""
    means = _group_means(benchmarks, "write_path")
    if ("buffered" in means and "zerocopy" in means
            and means["zerocopy"] > 0):
        return {"zerocopy_speedup": means["buffered"] / means["zerocopy"]}
    return {}


def _derived_poller(benchmarks: Sequence[Mapping]) -> Dict[str, float]:
    """Epoll speedup over select at the largest idle swarm measured."""
    times: Dict[Tuple[object, object], List[float]] = {}
    for bench in benchmarks:
        extra = bench.get("extra", {})
        poller = extra.get("poller")
        idle = extra.get("idle_connections")
        if poller is None or idle is None:
            continue
        times.setdefault((poller, idle), []).append(bench["stats"]["mean"])
    idles = {idle for (_poller, idle) in times}
    if not idles:
        return {}
    top = max(idles)
    select = times.get(("select", top))
    epoll = times.get(("epoll", top))
    if select and epoll:
        select_mean = sum(select) / len(select)
        epoll_mean = sum(epoll) / len(epoll)
        if epoll_mean > 0:
            return {"epoll_speedup_idle": select_mean / epoll_mean}
    return {}


def _derived_degradation(benchmarks: Sequence[Mapping]) -> Dict[str, float]:
    """The graceful-vs-cliff ratios the sweep itself computes."""
    derived: Dict[str, float] = {}
    for bench in benchmarks:
        extra = bench.get("extra", {})
        for key in ("goodput_retention_2x", "cliff_ratio"):
            if isinstance(extra.get(key), (int, float)):
                derived[key] = float(extra[key])
    return derived


@dataclass(frozen=True)
class Suite:
    """One runnable bench suite and how to reduce its results."""

    name: str
    #: bench file, relative to ``benchmarks/``
    file: str
    #: template option axes the suite exercises (documentation in the
    #: report; the options vector of the issue's schema)
    options: Mapping[str, Sequence[object]]
    #: derived-ratio reducer over the schema's ``benchmarks`` list
    derive: Callable[[Sequence[Mapping]], Dict[str, float]]
    #: non-benchmark companion tests skipped under ``--smoke`` (long
    #: simulations and absolute-ratio assertions, meaningless shrunk)
    smoke_deselect: Tuple[str, ...] = ()


SUITES: Dict[str, Suite] = {
    suite.name: suite for suite in (
        Suite(name="shards",
              file="bench_shards.py",
              options={"O14": (1, 4)},
              derive=_derived_shards,
              smoke_deselect=("test_shard_scaling_simulated",)),
        Suite(name="procs",
              file="bench_procs.py",
              options={"O16": (1, 4)},
              derive=_derived_procs,
              smoke_deselect=("test_procs_scaling_cpu_bound",)),
        Suite(name="zero_copy",
              file="bench_zero_copy.py",
              options={"O15": ("buffered", "zerocopy")},
              derive=_derived_zero_copy,
              smoke_deselect=("test_zero_copy_speedup",)),
        Suite(name="degradation",
              file="bench_degradation.py",
              options={"O17": (False, True)},
              derive=_derived_degradation,
              smoke_deselect=("test_watermark_hill_climb",)),
        Suite(name="poller",
              file="bench_poller.py",
              options={"O18": ("select", "epoll")},
              derive=_derived_poller,
              smoke_deselect=("test_epoll_speedup_under_idle_swarm",)),
    )
}


# -- schema -------------------------------------------------------------------


def _type_error(errors: List[str], path: str, want: str, got) -> None:
    errors.append(f"{path}: expected {want}, got {type(got).__name__}")


def _check_number(errors: List[str], path: str, value) -> None:
    if not isinstance(value, (int, float)) or isinstance(value, bool) \
            or (isinstance(value, float) and not math.isfinite(value)):
        _type_error(errors, path, "finite number", value)


def validate_report(doc) -> List[str]:
    """Validate one report against the schema; returns error strings.

    Hand-rolled on purpose: the container has no jsonschema, and the
    schema is small enough that a direct walk is clearer than a
    vendored validator anyway.
    """
    errors: List[str] = []
    if not isinstance(doc, dict):
        return ["report: expected object"]
    if doc.get("schema_version") != SCHEMA_VERSION:
        errors.append(f"schema_version: expected {SCHEMA_VERSION}, "
                      f"got {doc.get('schema_version')!r}")
    for key, want in (("name", str), ("smoke", bool)):
        if not isinstance(doc.get(key), want):
            _type_error(errors, key, want.__name__, doc.get(key))
    _check_number(errors, "created", doc.get("created"))
    machine = doc.get("machine")
    if not isinstance(machine, dict):
        _type_error(errors, "machine", "object", machine)
    else:
        for key in ("python", "platform", "machine"):
            if not isinstance(machine.get(key), str):
                _type_error(errors, f"machine.{key}", "string",
                            machine.get(key))
        if not isinstance(machine.get("cpus"), int):
            _type_error(errors, "machine.cpus", "integer",
                        machine.get("cpus"))
    if not isinstance(doc.get("options"), dict):
        _type_error(errors, "options", "object", doc.get("options"))
    benches = doc.get("benchmarks")
    if not isinstance(benches, list) or not benches:
        errors.append("benchmarks: expected non-empty list")
        benches = []
    for i, bench in enumerate(benches):
        where = f"benchmarks[{i}]"
        if not isinstance(bench, dict):
            _type_error(errors, where, "object", bench)
            continue
        if not isinstance(bench.get("test"), str):
            _type_error(errors, f"{where}.test", "string",
                        bench.get("test"))
        for key in ("params", "extra"):
            if not isinstance(bench.get(key), dict):
                _type_error(errors, f"{where}.{key}", "object",
                            bench.get(key))
        samples = bench.get("samples")
        if not isinstance(samples, list) or not samples:
            errors.append(f"{where}.samples: expected non-empty list")
        else:
            for j, sample in enumerate(samples):
                _check_number(errors, f"{where}.samples[{j}]", sample)
        stats = bench.get("stats")
        if not isinstance(stats, dict):
            _type_error(errors, f"{where}.stats", "object", stats)
        else:
            for key in ("min", "max", "mean", "stddev", "rounds"):
                _check_number(errors, f"{where}.stats.{key}",
                              stats.get(key))
    derived = doc.get("derived")
    if not isinstance(derived, dict):
        _type_error(errors, "derived", "object", derived)
    else:
        for key, value in derived.items():
            _check_number(errors, f"derived.{key}", value)
    smoke_derived = doc.get("smoke_derived")
    if smoke_derived is not None:
        if not isinstance(smoke_derived, dict):
            _type_error(errors, "smoke_derived", "object", smoke_derived)
        else:
            for key, value in smoke_derived.items():
                _check_number(errors, f"smoke_derived.{key}", value)
    return errors


def build_report(suite: Suite, raw: Mapping, smoke: bool) -> Dict:
    """One pytest-benchmark JSON document -> the stable schema."""
    benchmarks = []
    for bench in raw.get("benchmarks", []):
        stats = bench.get("stats", {})
        benchmarks.append({
            "test": bench.get("name", ""),
            "params": bench.get("params") or {},
            "extra": bench.get("extra_info") or {},
            "samples": list(stats.get("data") or []),
            "stats": {
                "min": stats.get("min", 0.0),
                "max": stats.get("max", 0.0),
                "mean": stats.get("mean", 0.0),
                "stddev": stats.get("stddev", 0.0),
                "rounds": stats.get("rounds", len(stats.get("data") or [])),
            },
        })
    return {
        "schema_version": SCHEMA_VERSION,
        "name": suite.name,
        "created": time.time(),
        "smoke": smoke,
        "machine": machine_info(),
        "options": {key: list(values)
                    for key, values in suite.options.items()},
        "benchmarks": benchmarks,
        "derived": suite.derive(benchmarks),
    }


# -- the regression gate ------------------------------------------------------


def compare_reports(current: Mapping, baseline: Mapping,
                    ratio_floor: float = DEFAULT_RATIO_FLOOR) -> List[str]:
    """Regressions of ``current`` against ``baseline`` (empty = pass).

    Derived ratios gate unconditionally — they are the machine-portable
    signal.  A smoke run compares against the baseline's
    ``smoke_derived`` ratios when it has them (shrunk workloads shift
    the ratios systematically — 4 shards *lose* on a 20-request burst —
    so smoke gates against smoke).  Absolute per-test means gate only
    between two full runs on an identical machine fingerprint, where
    "no slower than ``1/ratio_floor`` times the baseline" is
    meaningful.
    """
    failures: List[str] = []
    baseline_derived = (baseline.get("derived") or {})
    if current.get("smoke") and baseline.get("smoke_derived"):
        baseline_derived = baseline["smoke_derived"]
    for key, base_value in baseline_derived.items():
        cur_value = (current.get("derived") or {}).get(key)
        if cur_value is None:
            failures.append(f"derived.{key}: missing from current run "
                            f"(baseline {base_value:.3f})")
        elif cur_value < base_value * ratio_floor:
            failures.append(
                f"derived.{key}: {cur_value:.3f} < "
                f"{base_value:.3f} x {ratio_floor} (baseline x floor)")
    same_machine = current.get("machine") == baseline.get("machine")
    full_runs = not (current.get("smoke") or baseline.get("smoke"))
    if same_machine and full_runs:
        base_means = {bench["test"]: bench["stats"]["mean"]
                      for bench in baseline.get("benchmarks", [])}
        for bench in current.get("benchmarks", []):
            base_mean = base_means.get(bench["test"])
            if base_mean is None or base_mean <= 0:
                continue
            mean = bench["stats"]["mean"]
            if mean > base_mean / ratio_floor:
                failures.append(
                    f"{bench['test']}: mean {mean:.3f}s > "
                    f"{base_mean:.3f}s / {ratio_floor} (same machine)")
    return failures


# -- the runner ---------------------------------------------------------------


def run_suite(suite: Suite, smoke: bool = False,
              benchmarks_dir: Optional[str] = None,
              verbose: bool = False) -> Tuple[int, Optional[Dict]]:
    """Run one suite in a pytest subprocess; (exit code, report).

    The subprocess inherits the environment with ``PYTHONPATH``
    extended to the ``src`` tree and, under ``smoke``,
    ``REPRO_BENCH_SMOKE=1`` — the bench files shrink their client and
    request counts when they see it, and the long companion tests are
    deselected outright.
    """
    benchmarks_dir = benchmarks_dir or os.path.join(_repo_root(),
                                                    "benchmarks")
    bench_file = os.path.join(benchmarks_dir, suite.file)
    src = os.path.join(_repo_root(), "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    if smoke:
        env["REPRO_BENCH_SMOKE"] = "1"
    raw_fd, raw_path = tempfile.mkstemp(prefix="repro-bench-",
                                        suffix=".json")
    os.close(raw_fd)
    command = [sys.executable, "-m", "pytest", bench_file, "-q",
               "-p", "no:cacheprovider", f"--benchmark-json={raw_path}"]
    if smoke and suite.smoke_deselect:
        command += ["-k", " and ".join(f"not {name}"
                                       for name in suite.smoke_deselect)]
    import subprocess
    try:
        proc = subprocess.run(
            command, env=env, cwd=_repo_root(),
            capture_output=not verbose)
        if proc.returncode != 0:
            if not verbose and proc.stdout:
                sys.stdout.write(proc.stdout.decode("utf-8", "replace"))
            if not verbose and proc.stderr:
                sys.stderr.write(proc.stderr.decode("utf-8", "replace"))
            return proc.returncode, None
        with open(raw_path, "r", encoding="utf-8") as fh:
            raw = json.load(fh)
    finally:
        try:
            os.unlink(raw_path)
        except OSError:
            pass
    return 0, build_report(suite, raw, smoke=smoke)
