"""Experiment harnesses: one module per table/figure of the paper.

Each ``run_*`` function performs the experiment and returns structured
results; each ``format_*`` renders the same rows/series the paper
reports.  The ``benchmarks/`` directory wraps these in pytest-benchmark
targets.
"""

from repro.experiments.table1 import format_table1, run_table1
from repro.experiments.table2 import format_table2, run_table2
from repro.experiments.table3 import format_table3, run_table3
from repro.experiments.table4 import format_table4, run_table4
from repro.experiments.fig3_fig4 import (
    CapacityPoint,
    format_fig3,
    format_fig3_shards,
    format_fig4,
    run_capacity_sweep,
    SHARD_SWEEP_BASE,
    run_shard_sweep,
)
from repro.experiments.fig3_poller import (
    PollerPoint,
    format_fig3_poller,
    run_poller_sweep,
)
from repro.experiments.fig3_procs import (
    CpuBoundHooks,
    ProcsPoint,
    format_fig3_procs,
    run_procs_sweep,
)
from repro.experiments.fig3_zerocopy import (
    WritePathPoint,
    format_fig3_zerocopy,
    run_zerocopy_sweep,
)
from repro.experiments.fig5 import format_fig5, run_fig5
from repro.experiments.fig6 import format_fig6, run_fig6
from repro.experiments.degradation import (
    CliffPoint,
    format_degradation_cliff,
    goodput_retention,
    run_degradation_cliff,
    tune_watermark,
)

__all__ = [
    "CapacityPoint",
    "CliffPoint",
    "format_degradation_cliff",
    "goodput_retention",
    "run_degradation_cliff",
    "tune_watermark",
    "CpuBoundHooks",
    "ProcsPoint",
    "format_fig3",
    "format_fig3_poller",
    "format_fig3_procs",
    "format_fig3_shards",
    "format_fig3_zerocopy",
    "run_procs_sweep",
    "format_fig4",
    "format_fig5",
    "format_fig6",
    "format_table1",
    "format_table2",
    "format_table3",
    "format_table4",
    "run_capacity_sweep",
    "run_fig5",
    "SHARD_SWEEP_BASE",
    "run_shard_sweep",
    "run_fig6",
    "run_table1",
    "run_poller_sweep",
    "run_zerocopy_sweep",
    "PollerPoint",
    "WritePathPoint",
    "run_table2",
    "run_table3",
    "run_table4",
]
