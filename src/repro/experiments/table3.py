"""Table 3: the code distribution of COPS-FTP.

Paper's categories and NCSS counts (Java):

    Reused    124 classes  945 methods  8,141 NCSS  (Apache FTPServer)
    Removed    18 classes  199 methods  1,186 NCSS  (blocking driver)
    Added      23 classes  150 methods  1,897 NCSS  (event-driven glue)
    Generated  84 classes  480 methods  2,937 NCSS  (N-Server output)

Our mapping (Python):

    Reused    = ``repro.ftp`` minus the threaded driver (the existing
                FTP library COPS-FTP adapts)
    Removed   = ``repro.ftp.threaded_server`` (the thread-per-connection
                driver the event-driven architecture replaces)
    Added     = ``repro.servers.cops_ftp`` (the adapter)
    Generated = the framework the N-Server template emits for the
                COPS-FTP option column

Absolute counts differ (Python vs Java); the paper's *point* is the
ratio — most code is reused or generated, little is written by hand —
and that ratio is what the bench asserts.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict

import repro.ftp as ftp_pkg
import repro.servers.cops_ftp as cops_ftp_mod
from repro.analysis import render_table
from repro.co2p3s import CodeMetrics, measure_file, measure_source
from repro.co2p3s.nserver import COPS_FTP_OPTIONS, NSERVER

__all__ = ["Table3Result", "run_table3", "format_table3", "PAPER_TABLE3"]

PAPER_TABLE3 = {
    "Reused code": (124, 945, 8141),
    "Removed code": (18, 199, 1186),
    "Added code": (23, 150, 1897),
    "Generated code": (84, 480, 2937),
}


@dataclass
class Table3Result:
    categories: Dict[str, CodeMetrics]

    @property
    def total_ncss(self) -> int:
        return sum(m.ncss for m in self.categories.values())

    def handwritten_fraction(self) -> float:
        """Added / (reused + added + generated): the manual effort share."""
        added = self.categories["Added code"].ncss
        denom = (self.categories["Reused code"].ncss
                 + self.categories["Generated code"].ncss + added)
        return added / denom if denom else 0.0


def _package_files(pkg, exclude=()):
    root = os.path.dirname(pkg.__file__)
    for name in sorted(os.listdir(root)):
        if name.endswith(".py") and name not in exclude:
            yield os.path.join(root, name)


def run_table3() -> Table3Result:
    reused = CodeMetrics()
    for path in _package_files(ftp_pkg, exclude=("threaded_server.py",)):
        reused += measure_file(path)

    removed = measure_file(os.path.join(os.path.dirname(ftp_pkg.__file__),
                                        "threaded_server.py"))
    added = measure_file(cops_ftp_mod.__file__)

    report = NSERVER.render(NSERVER.configure(COPS_FTP_OPTIONS),
                            package="t3check")
    generated = CodeMetrics()
    for text in report.files.values():
        generated += measure_source(text)

    return Table3Result(categories={
        "Reused code": reused,
        "Removed code": removed,
        "Added code": added,
        "Generated code": generated,
    })


def format_table3(result: Table3Result) -> str:
    rows = []
    for label in ("Reused code", "Removed code", "Added code",
                  "Generated code"):
        m = result.categories[label]
        paper = PAPER_TABLE3[label]
        rows.append([label, m.classes, m.methods, m.ncss,
                     f"{paper[0]}/{paper[1]}/{paper[2]}"])
    table = render_table(
        ["", "Classes", "Methods", "NCSS", "paper (cls/mth/NCSS)"],
        rows,
        title="TABLE 3 — THE CODE DISTRIBUTION OF COPS-FTP",
    )
    return (table + "\n\n"
            f"Hand-written share (added / reused+added+generated): "
            f"{result.handwritten_fraction():.1%} "
            f"(paper: {1897 / (8141 + 1897 + 2937):.1%})")
