"""Table 1: N-Server options and their values.

Regenerated straight from the template's option metadata plus the two
application configurations — and validated: both configurations must be
legal and generate successfully.
"""

from __future__ import annotations

from typing import List

from repro.analysis import render_table
from repro.co2p3s.nserver import (
    COPS_FTP_OPTIONS,
    COPS_HTTP_OPTIONS,
    NSERVER,
    option_table_rows,
)

__all__ = ["run_table1", "format_table1"]


def run_table1() -> List[List[str]]:
    """Rows of Table 1 (validating both application columns)."""
    for config in (COPS_FTP_OPTIONS, COPS_HTTP_OPTIONS):
        opts = NSERVER.configure(config)
        NSERVER.validate(opts)
        report = NSERVER.render(opts, package="t1check")
        assert report.files, "generation produced no files"
    return option_table_rows(COPS_FTP_OPTIONS, COPS_HTTP_OPTIONS)


def format_table1(rows: List[List[str]]) -> str:
    return render_table(
        ["Option Name", "Legal Values", "COPS-FTP", "COPS-HTTP"],
        rows,
        title="TABLE 1 — N-SERVER OPTIONS AND THEIR VALUES",
    )
