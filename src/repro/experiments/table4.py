"""Table 4: the code distribution of COPS-HTTP.

Paper's categories and NCSS counts (Java):

    Generated code           79 classes  474 methods  2,697 NCSS
    HTTP protocol code       10 classes   50 methods    449 NCSS
    Other application code   16 classes   89 methods    785 NCSS
    Total                   105 classes  613 methods  3,931 NCSS

Our mapping: Generated = the N-Server output for the COPS-HTTP option
column; HTTP protocol code = ``repro.http``; Other application code =
``repro.servers.cops_http``.  The paper's headline — "only 785 lines of
NCSS would need to be programmed, which accounts for 20% of the total
code" — is the ratio the bench asserts.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict

import repro.http as http_pkg
import repro.servers.cops_http as cops_http_mod
from repro.analysis import render_table
from repro.co2p3s import CodeMetrics, measure_file, measure_source
from repro.co2p3s.nserver import COPS_HTTP_OPTIONS, NSERVER

__all__ = ["Table4Result", "run_table4", "format_table4", "PAPER_TABLE4"]

PAPER_TABLE4 = {
    "Generated code": (79, 474, 2697),
    "HTTP protocol code": (10, 50, 449),
    "Other application code": (16, 89, 785),
    "Total code": (105, 613, 3931),
}


@dataclass
class Table4Result:
    categories: Dict[str, CodeMetrics]

    @property
    def total(self) -> CodeMetrics:
        total = CodeMetrics()
        for m in self.categories.values():
            total += m
        return total

    def application_fraction(self) -> float:
        """Other application code / total — the paper's 20%."""
        total = self.total.ncss
        return (self.categories["Other application code"].ncss / total
                if total else 0.0)


def run_table4() -> Table4Result:
    report = NSERVER.render(NSERVER.configure(COPS_HTTP_OPTIONS),
                            package="t4check")
    generated = CodeMetrics()
    for text in report.files.values():
        generated += measure_source(text)

    protocol = CodeMetrics()
    root = os.path.dirname(http_pkg.__file__)
    for name in sorted(os.listdir(root)):
        if name.endswith(".py"):
            protocol += measure_file(os.path.join(root, name))

    application = measure_file(cops_http_mod.__file__)

    return Table4Result(categories={
        "Generated code": generated,
        "HTTP protocol code": protocol,
        "Other application code": application,
    })


def format_table4(result: Table4Result) -> str:
    rows = []
    for label in ("Generated code", "HTTP protocol code",
                  "Other application code"):
        m = result.categories[label]
        paper = PAPER_TABLE4[label]
        rows.append([label, m.classes, m.methods, m.ncss,
                     f"{paper[0]}/{paper[1]}/{paper[2]}"])
    total = result.total
    paper_total = PAPER_TABLE4["Total code"]
    rows.append(["Total code", total.classes, total.methods, total.ncss,
                 f"{paper_total[0]}/{paper_total[1]}/{paper_total[2]}"])
    table = render_table(
        ["", "Classes", "Methods", "NCSS", "paper (cls/mth/NCSS)"],
        rows,
        title="TABLE 4 — THE CODE DISTRIBUTION OF COPS-HTTP",
    )
    return (table + "\n\n"
            f"Application-code share of total: "
            f"{result.application_fraction():.1%} (paper: 20.0%)")
