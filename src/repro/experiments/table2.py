"""Table 2: the option x class crosscut matrix, computed empirically.

The experiment: generate the framework at a base option setting, toggle
every option through each alternative legal value, and diff the
per-class generated sources.  The resulting matrix is compared against
the paper's published Table 2 — the reproduction asserts an exact match.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.co2p3s.crosscut import (
    CrosscutMatrix,
    declared_matrix,
    empirical_matrix,
    format_matrix,
)
from repro.co2p3s.nserver import (
    ALL_FEATURES_ON,
    DEGRADATION_TOGGLE_BASE,
    DEPLOYMENT_TOGGLE_BASE,
    EXPECTED_TABLE2,
    NSERVER,
    NSERVER_OPTION_SPECS,
    PAPER_TABLE2,
    POOL_TOGGLE_BASE,
    TABLE2_CLASS_ORDER,
)

__all__ = ["Table2Result", "run_table2", "format_table2", "paper_matrix",
           "expected_matrix"]


def _matrix_from(table, option_keys) -> CrosscutMatrix:
    keys = list(option_keys)
    m = CrosscutMatrix(class_names=list(TABLE2_CLASS_ORDER),
                       option_keys=keys)
    for name in TABLE2_CLASS_ORDER:
        m.cells[name] = {key: table.get(name, {}).get(key, "")
                         for key in keys}
    return m


def paper_matrix() -> CrosscutMatrix:
    """The paper's published Table 2 (12 options, no extension rows)."""
    return _matrix_from(PAPER_TABLE2, [f"O{i}" for i in range(1, 13)])


def expected_matrix() -> CrosscutMatrix:
    """Paper Table 2 plus this reproduction's observability (O11),
    resilience (O13), reactor-shards (O14), write-path (O15) and
    degradation (O17) extensions."""
    return _matrix_from(EXPECTED_TABLE2,
                        [spec.key for spec in NSERVER_OPTION_SPECS])


@dataclass
class Table2Result:
    empirical: CrosscutMatrix
    declared: CrosscutMatrix
    paper: CrosscutMatrix
    expected: CrosscutMatrix
    vs_expected: List[Tuple[str, str, str, str]]
    vs_declared: List[Tuple[str, str, str, str]]

    @property
    def matches_paper(self) -> bool:
        """Empirical matrix equals the paper's table plus the declared
        observability and resilience extensions — nothing more, nothing
        less."""
        return not self.vs_expected


def run_table2() -> Table2Result:
    emp = empirical_matrix(NSERVER, ALL_FEATURES_ON,
                           extra_bases=(POOL_TOGGLE_BASE,
                                        DEGRADATION_TOGGLE_BASE,
                                        DEPLOYMENT_TOGGLE_BASE))
    dec = declared_matrix(NSERVER, ALL_FEATURES_ON)
    return Table2Result(
        empirical=emp,
        declared=dec,
        paper=paper_matrix(),
        expected=expected_matrix(),
        vs_expected=emp.differences(expected_matrix()),
        vs_declared=emp.differences(dec),
    )


def format_table2(result: Table2Result) -> str:
    lines = [format_matrix(
        result.empirical,
        title="TABLE 2 — EMPIRICAL CROSSCUT MATRIX "
              "(O = option controls existence, + = option alters code)")]
    if result.matches_paper:
        lines.append("")
        lines.append("Exact match with the paper's Table 2 plus the "
                     "Observability and Resilience extension rows "
                     f"({len(result.empirical.class_names)} classes x "
                     f"{len(result.empirical.option_keys)} options).")
    else:
        lines.append("")
        lines.append("DIFFERENCES vs expected (class, option, ours, expected):")
        for diff in result.vs_expected:
            lines.append(f"  {diff}")
    return "\n".join(lines)
