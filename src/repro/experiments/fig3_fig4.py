"""Figs 3 and 4: COPS-HTTP vs Apache — throughput and service fairness
versus the number of web clients (1..1024, log-scale x axis).

One sweep produces both figures: Fig 3 plots throughput, Fig 4 plots the
Jain fairness index of per-client response counts, from the same runs
(as in the paper).

Shape targets (paper):

* Apache slightly better under light load (< 32 clients);
* COPS-HTTP higher from ~32 to ~512 clients;
* both saturate beyond ~256 (the network is the bottleneck);
* Apache slightly better at 1024 — "at the expense of fairness":
  its Jain index collapses to ~0.51 while COPS-HTTP stays near 1.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Sequence

from repro.analysis import render_series
from repro.sim.testbed import TestbedConfig, run_testbed

__all__ = ["CapacityPoint", "run_capacity_sweep", "format_fig3",
           "format_fig4", "run_shard_sweep", "format_fig3_shards",
           "DEFAULT_CLIENT_COUNTS", "DEFAULT_SHARD_COUNTS"]

DEFAULT_CLIENT_COUNTS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)
DEFAULT_SHARD_COUNTS = (1, 2, 4, 8)


@dataclass
class CapacityPoint:
    server: str
    clients: int
    throughput: float
    fairness: float
    response_mean: float
    combined_mean: float
    syn_drops: int
    link_utilization: float
    cpu_utilization: float


def run_capacity_sweep(
    client_counts: Sequence[int] = DEFAULT_CLIENT_COUNTS,
    servers: Sequence[str] = ("apache", "cops"),
    duration: float = 40.0,
    warmup: float = 10.0,
    base: TestbedConfig | None = None,
) -> Dict[str, List[CapacityPoint]]:
    """The Fig 3/4 sweep: one testbed run per (server, client count)."""
    base = base or TestbedConfig()
    results: Dict[str, List[CapacityPoint]] = {s: [] for s in servers}
    for clients in client_counts:
        for server in servers:
            cfg = replace(base, server=server, clients=clients,
                          duration=duration, warmup=warmup)
            r = run_testbed(cfg)
            results[server].append(CapacityPoint(
                server=server,
                clients=clients,
                throughput=r.throughput,
                fairness=r.fairness,
                response_mean=r.response_mean,
                combined_mean=r.combined_mean,
                syn_drops=r.syn_drops,
                link_utilization=r.link_utilization,
                cpu_utilization=r.cpu_utilization,
            ))
    return results


def _series(results: Dict[str, List[CapacityPoint]], attr: str) -> dict:
    names = {"apache": "Apache", "cops": "COPS-HTTP"}
    return {names.get(s, s): [getattr(p, attr) for p in pts]
            for s, pts in results.items()}


def format_fig3(results: Dict[str, List[CapacityPoint]]) -> str:
    xs = [p.clients for p in next(iter(results.values()))]
    return render_series(
        "clients", xs, _series(results, "throughput"),
        title="FIG 3 — THROUGHPUT (responses/s) vs NUMBER OF WEB CLIENTS",
        fmt="{:.1f}")


def format_fig4(results: Dict[str, List[CapacityPoint]]) -> str:
    xs = [p.clients for p in next(iter(results.values()))]
    return render_series(
        "clients", xs, _series(results, "fairness"),
        title="FIG 4 — SERVICE FAIRNESS (Jain index) vs NUMBER OF WEB CLIENTS",
        fmt="{:.3f}")


#: Host for the shard sweep: CPU-bound behind a fat link.  On the
#: calibrated Fig 3 testbed every configuration saturates the shared
#: ~80 Mbit/s link at 256 clients, so shard count cannot move the
#: ceiling; this host makes throughput limited by CPU plus the
#: per-shard readiness scan — the costs O14 actually divides.
SHARD_SWEEP_BASE = TestbedConfig(
    cpu_per_request=0.008, bandwidth_bps=1e9, scan_coefficient=2e-5,
    processor_threads=8, file_io_threads=4)


def run_shard_sweep(
    shard_counts: Sequence[int] = DEFAULT_SHARD_COUNTS,
    clients: int = 256,
    duration: float = 40.0,
    warmup: float = 10.0,
    policy: str = "round-robin",
    base: TestbedConfig | None = None,
) -> Dict[int, CapacityPoint]:
    """The O14 extension of the Fig 3 sweep: throughput of the sharded
    N-Server versus shard count, on a fixed host and client population.

    Shard count 1 runs the ordinary single-reactor "cops" model, so the
    first point is the Fig 3 baseline; > 1 runs the :class:`~
    repro.sim.servers.sharded.ShardedServer` with the same host budget
    (CPUs, disk, thread counts) split across the shards.  The default
    host is :data:`SHARD_SWEEP_BASE`; pass ``base=TestbedConfig()`` to
    run on the link-bound Fig 3 testbed instead.
    """
    base = base or SHARD_SWEEP_BASE
    results: Dict[int, CapacityPoint] = {}
    for shards in shard_counts:
        if shards == 1:
            cfg = replace(base, server="cops", clients=clients,
                          duration=duration, warmup=warmup)
        else:
            cfg = replace(base, server="sharded", shard_count=shards,
                          shard_policy=policy, clients=clients,
                          duration=duration, warmup=warmup)
        r = run_testbed(cfg)
        results[shards] = CapacityPoint(
            server=f"{shards}-shard",
            clients=clients,
            throughput=r.throughput,
            fairness=r.fairness,
            response_mean=r.response_mean,
            combined_mean=r.combined_mean,
            syn_drops=r.syn_drops,
            link_utilization=r.link_utilization,
            cpu_utilization=r.cpu_utilization,
        )
    return results


def format_fig3_shards(results: Dict[int, CapacityPoint]) -> str:
    xs = sorted(results)
    series = {
        "COPS-HTTP": [results[s].throughput for s in xs],
    }
    return render_series(
        "shards", xs, series,
        title="FIG 3 (O14 extension) — THROUGHPUT (responses/s) vs "
              "REACTOR SHARDS",
        fmt="{:.1f}")
