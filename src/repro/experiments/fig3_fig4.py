"""Figs 3 and 4: COPS-HTTP vs Apache — throughput and service fairness
versus the number of web clients (1..1024, log-scale x axis).

One sweep produces both figures: Fig 3 plots throughput, Fig 4 plots the
Jain fairness index of per-client response counts, from the same runs
(as in the paper).

Shape targets (paper):

* Apache slightly better under light load (< 32 clients);
* COPS-HTTP higher from ~32 to ~512 clients;
* both saturate beyond ~256 (the network is the bottleneck);
* Apache slightly better at 1024 — "at the expense of fairness":
  its Jain index collapses to ~0.51 while COPS-HTTP stays near 1.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Sequence

from repro.analysis import render_series
from repro.sim.testbed import TestbedConfig, run_testbed

__all__ = ["CapacityPoint", "run_capacity_sweep", "format_fig3",
           "format_fig4", "DEFAULT_CLIENT_COUNTS"]

DEFAULT_CLIENT_COUNTS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


@dataclass
class CapacityPoint:
    server: str
    clients: int
    throughput: float
    fairness: float
    response_mean: float
    combined_mean: float
    syn_drops: int
    link_utilization: float
    cpu_utilization: float


def run_capacity_sweep(
    client_counts: Sequence[int] = DEFAULT_CLIENT_COUNTS,
    servers: Sequence[str] = ("apache", "cops"),
    duration: float = 40.0,
    warmup: float = 10.0,
    base: TestbedConfig | None = None,
) -> Dict[str, List[CapacityPoint]]:
    """The Fig 3/4 sweep: one testbed run per (server, client count)."""
    base = base or TestbedConfig()
    results: Dict[str, List[CapacityPoint]] = {s: [] for s in servers}
    for clients in client_counts:
        for server in servers:
            cfg = replace(base, server=server, clients=clients,
                          duration=duration, warmup=warmup)
            r = run_testbed(cfg)
            results[server].append(CapacityPoint(
                server=server,
                clients=clients,
                throughput=r.throughput,
                fairness=r.fairness,
                response_mean=r.response_mean,
                combined_mean=r.combined_mean,
                syn_drops=r.syn_drops,
                link_utilization=r.link_utilization,
                cpu_utilization=r.cpu_utilization,
            ))
    return results


def _series(results: Dict[str, List[CapacityPoint]], attr: str) -> dict:
    names = {"apache": "Apache", "cops": "COPS-HTTP"}
    return {names.get(s, s): [getattr(p, attr) for p in pts]
            for s, pts in results.items()}


def format_fig3(results: Dict[str, List[CapacityPoint]]) -> str:
    xs = [p.clients for p in next(iter(results.values()))]
    return render_series(
        "clients", xs, _series(results, "throughput"),
        title="FIG 3 — THROUGHPUT (responses/s) vs NUMBER OF WEB CLIENTS",
        fmt="{:.1f}")


def format_fig4(results: Dict[str, List[CapacityPoint]]) -> str:
    xs = [p.clients for p in next(iter(results.values()))]
    return render_series(
        "clients", xs, _series(results, "fairness"),
        title="FIG 4 — SERVICE FAIRNESS (Jain index) vs NUMBER OF WEB CLIENTS",
        fmt="{:.3f}")
