"""Fig 6: response time with and without automatic overload control.

The scenario: CPUs are the bottleneck — "each thread is forced to sleep
for 50 milliseconds when decoding an HTTP request.  The high watermark
and low watermark for the Reactive Event Processor queue length are set
to 20 and 5 respectively.  The number of Web clients ... varies from 1
to 128."

The real :class:`repro.runtime.OverloadController` drives admission.
The paper's observations, asserted by the bench:

* with control, the average response time of *established* connections
  stays low (the queue is bounded);
* without control it grows with the client count;
* throughput is NOT degraded by the control;
* combined response time (including connection-establishment waits) is
  similar either way — postponed clients wait outside instead of inside.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.analysis import render_series
from repro.sim.testbed import TestbedConfig, run_testbed

__all__ = ["Fig6Point", "run_fig6", "format_fig6", "DEFAULT_FIG6_CLIENTS"]

DEFAULT_FIG6_CLIENTS = (1, 4, 16, 32, 64, 128)


@dataclass
class Fig6Point:
    clients: int
    overload_control: bool
    throughput: float
    response_mean: float
    combined_mean: float


def run_fig6(
    client_counts: Sequence[int] = DEFAULT_FIG6_CLIENTS,
    duration: float = 30.0,
    warmup: float = 8.0,
    decode_sleep: float = 0.050,
    high: int = 20,
    low: int = 5,
) -> List[Fig6Point]:
    points = []
    for clients in client_counts:
        for control in (False, True):
            cfg = TestbedConfig(
                server="cops", clients=clients,
                duration=duration, warmup=warmup,
                decode_extra_cpu=decode_sleep,
                overload=control, overload_high=high, overload_low=low,
            )
            r = run_testbed(cfg)
            points.append(Fig6Point(
                clients=clients,
                overload_control=control,
                throughput=r.throughput,
                response_mean=r.response_mean,
                combined_mean=r.combined_mean,
            ))
    return points


def format_fig6(points: List[Fig6Point]) -> str:
    xs = sorted({p.clients for p in points})

    def pick(control: bool, attr: str) -> list:
        by_n = {p.clients: getattr(p, attr)
                for p in points if p.overload_control == control}
        return [by_n.get(n) for n in xs]

    series = {
        "resp (no ctl) ms": [v * 1000 for v in pick(False, "response_mean")],
        "resp (ctl) ms": [v * 1000 for v in pick(True, "response_mean")],
        "combined (no ctl) ms": [v * 1000 for v in pick(False, "combined_mean")],
        "combined (ctl) ms": [v * 1000 for v in pick(True, "combined_mean")],
        "thr (no ctl)/s": pick(False, "throughput"),
        "thr (ctl)/s": pick(True, "throughput"),
    }
    return render_series(
        "clients", xs, series,
        title="FIG 6 — RESPONSE TIME WITH/WITHOUT AUTOMATIC OVERLOAD CONTROL",
        fmt="{:.1f}")
