"""Fig 3 (O16 extension): throughput scaling across worker processes.

The paper's Fig 3 measures capacity of one generated server process;
the O16 deployment extension asks the follow-on question: what does
regenerating the *same* template with ``procs: N`` buy on a multi-core
host?  Python makes the regime choice stark — the GIL serialises
CPU-bound hook work across threads inside one interpreter, so reactor
shards (O14) and Event Processor pools cannot scale a compute-heavy
handle hook.  Worker processes can: each is a whole interpreter with
its own GIL, accepting on the shared ``SO_REUSEPORT`` socket.

The experiment generates the framework at O16 = 1, 2, 4 with a
deliberately CPU-bound hook (iterated SHA-256 over small chunks —
hashlib only releases the GIL above 2047 bytes, so the work *holds*
it, the worst case for threads and the best case for processes) and
drives each build with concurrent closed-loop clients.

On a multi-core host the 4-process build approaches the core count;
on a single core the honest result is ~1.0x (plus supervisor
overhead), which is exactly what ``BENCH_procs.json`` records — the
regression gate compares ratios against the committed baseline, not
against an aspiration the hardware cannot meet.
"""

from __future__ import annotations

import hashlib
import shutil
import socket
import tempfile
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence

from repro.analysis import render_series
from repro.co2p3s.nserver import NSERVER
from repro.co2p3s.template import load_generated_package
from repro.runtime import ServerHooks

__all__ = ["CpuBoundHooks", "ProcsPoint", "run_procs_sweep",
           "format_fig3_procs", "DEFAULT_PROC_COUNTS",
           "PROCS_SWEEP_OPTIONS"]

#: worker-process counts; the largest is the acceptance point
DEFAULT_PROC_COUNTS = (1, 2, 4)

#: the minimal Table 1 column plus O16, which the sweep overrides per
#: point — no codec (raw bytes in and out), no cache, no extras to
#: blur the attribution
PROCS_SWEEP_OPTIONS = {
    "O1": "1",
    "O2": True,
    "O3": False,
    "O4": "Synchronous",
    "O5": "Static",
    "O6": None,
    "O7": False,
    "O8": False,
    "O9": False,
    "O10": "Production",
    "O11": False,
    "O12": False,
}


class CpuBoundHooks(ServerHooks):
    """One CPU-bound hook: iterated SHA-256 over the request line.

    Module-level on purpose — O16 workers re-create their hooks from an
    importable ``module:class`` path in a fresh interpreter.  The chunk
    hashed stays far below hashlib's 2048-byte GIL-release threshold,
    so the work pins the GIL: threads cannot parallelise it, processes
    can.
    """

    rounds = 600

    def handle(self, request: bytes, conn) -> bytes:
        digest = bytes(request)
        for _ in range(self.rounds):
            digest = hashlib.sha256(digest).digest()
        return digest.hex().encode("ascii") + b"\n"


@dataclass
class ProcsPoint:
    """One worker-process-count measurement."""

    procs: int
    throughput: float          # responses/s over all clients
    requests: int
    elapsed: float


def _drive(port: int, clients: int, per_client: int):
    """``clients`` concurrent closed-loop request streams; returns
    (elapsed seconds, responses)."""
    errors: List[BaseException] = []

    def client(i: int) -> None:
        try:
            s = socket.create_connection(("127.0.0.1", port), timeout=30)
            s.settimeout(30)
            s.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            try:
                for n in range(per_client):
                    s.sendall(f"client {i} request {n}\n".encode())
                    buf = b""
                    while not buf.endswith(b"\n"):
                        chunk = s.recv(4096)
                        if not chunk:
                            raise ConnectionError("peer closed mid-reply")
                        buf += chunk
            finally:
                s.close()
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=client, args=(i,))
               for i in range(clients)]
    started = time.monotonic()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.monotonic() - started
    if errors:
        raise errors[0]
    return elapsed, clients * per_client


def run_procs_sweep(
    proc_counts: Sequence[int] = DEFAULT_PROC_COUNTS,
    requests: int = 256,
    clients: int = 8,
) -> Dict[int, ProcsPoint]:
    """Measure responses/s for each O16 value, same CPU-bound workload
    throughout.  One framework generation per point — the option is a
    generation-time choice, exactly like every other Table 1 column."""
    workdir = Path(tempfile.mkdtemp(prefix="fig3_procs_"))
    per_client = max(1, requests // clients)
    results: Dict[int, ProcsPoint] = {}
    try:
        for procs in proc_counts:
            options = dict(PROCS_SWEEP_OPTIONS)
            if procs != 1:
                options["O16"] = procs
            opts = NSERVER.configure(options)
            package = f"fig3_procs_{procs}_fw"
            NSERVER.generate(opts, str(workdir), package=package)
            fw = load_generated_package(str(workdir), package)
            server = fw.Server(CpuBoundHooks(),
                               configuration=fw.ServerConfiguration())
            server.start()
            try:
                _drive(server.port, clients, max(1, per_client // 4))
                elapsed, responses = _drive(server.port, clients,
                                            per_client)
                results[procs] = ProcsPoint(
                    procs=procs,
                    throughput=responses / elapsed,
                    requests=responses,
                    elapsed=elapsed)
            finally:
                server.stop()
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return results


def format_fig3_procs(results: Dict[int, ProcsPoint]) -> str:
    xs = sorted(results)
    series = {"CPU-bound hook": [results[p].throughput for p in xs]}
    out = render_series(
        "worker procs", xs, series,
        title="FIG 3 (O16 extension) — THROUGHPUT (responses/s) OF A "
              "CPU-BOUND HOOK ACROSS WORKER PROCESSES",
        fmt="{:.1f}")
    base = results.get(1)
    if base is not None and base.throughput > 0:
        ratios = ", ".join(
            f"{results[p].throughput / base.throughput:.2f}x at {p}"
            for p in xs)
        out += f"\nspeedup over one process: {ratios} workers"
    return out
