"""Fig 5: differentiated service levels via event scheduling (option O8).

The scenario: an ISP hosts a corporate portal (high priority) and
personal homepages (low priority).  Two groups of clients generate the
two content classes; the server's reactive queue is the real
:class:`repro.runtime.QuotaPriorityQueue` with quota ratio x/y (x =
homepages, y = portal).  File caching is disabled "to make the workload
heavier" and the server host is the paper's dual-processor machine.

The paper's observation, which the bench asserts: the measured
throughput ratio tracks the configured quota ratio with a small gap
(the server controls only its own event queue, not the OS resources).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.analysis import render_table
from repro.sim.testbed import TestbedConfig, run_testbed

__all__ = ["Fig5Point", "run_fig5", "format_fig5", "DEFAULT_RATIOS"]

#: (homepage quota x, portal quota y)
DEFAULT_RATIOS = ((1, 1), (1, 2), (1, 4), (1, 10))


@dataclass
class Fig5Point:
    ratio: Tuple[int, int]
    portal_throughput: float
    home_throughput: float

    @property
    def measured_ratio(self) -> float:
        return (self.portal_throughput / self.home_throughput
                if self.home_throughput else float("inf"))

    @property
    def configured_ratio(self) -> float:
        x, y = self.ratio
        return y / x


def run_fig5(
    ratios: Sequence[Tuple[int, int]] = DEFAULT_RATIOS,
    clients: int = 192,
    duration: float = 30.0,
    warmup: float = 8.0,
) -> Tuple[List[Fig5Point], float]:
    """Returns the per-ratio points plus the portal-only maximum (the
    paper's rightmost column)."""
    classes = {i: ("portal" if i < clients // 2 else "home")
               for i in range(clients)}
    points = []
    for x, y in ratios:
        cfg = TestbedConfig(
            server="cops", clients=clients, duration=duration, warmup=warmup,
            cpus=2,                     # the paper's dual-processor host
            cache_policy=None,          # caching disabled for Fig 5
            client_classes=classes,
            class_priorities={"portal": 1, "home": 0},
            scheduling_quotas={1: y, 0: x},
        )
        r = run_testbed(cfg)
        points.append(Fig5Point(
            ratio=(x, y),
            portal_throughput=r.class_throughput.get("portal", 0.0),
            home_throughput=r.class_throughput.get("home", 0.0),
        ))
    # Rightmost column: max portal throughput with no homepage traffic.
    cfg = TestbedConfig(
        server="cops", clients=clients // 2, duration=duration, warmup=warmup,
        cpus=2, cache_policy=None,
        client_classes={i: "portal" for i in range(clients // 2)},
        class_priorities={"portal": 1},
        scheduling_quotas={1: 1, 0: 1},
    )
    portal_only = run_testbed(cfg).class_throughput.get("portal", 0.0)
    return points, portal_only


def format_fig5(points: List[Fig5Point], portal_only: float) -> str:
    rows = []
    for p in points:
        x, y = p.ratio
        rows.append([f"{x}/{y}",
                     f"{p.home_throughput:.1f}",
                     f"{p.portal_throughput:.1f}",
                     f"{p.configured_ratio:.1f}",
                     f"{p.measured_ratio:.2f}"])
    rows.append(["portal only", "-", f"{portal_only:.1f}", "-", "-"])
    return render_table(
        ["quota x/y", "homepage thr/s", "portal thr/s",
         "configured ratio", "measured ratio"],
        rows,
        title="FIG 5 — SERVICE THROUGHPUT FOR DIFFERENTIATED SERVICE LEVELS",
    )
