"""Fig 3 (O18 extension): select vs epoll under mostly-idle connections.

The paper's Fig 3 regime — thousands of open, mostly-idle HTTP
connections with a small active core — is exactly where the readiness
backend's complexity class shows: the level-triggered ``select``
oracle pays O(registered fds) in the kernel on *every* dispatcher
wake-up, while edge-triggered ``epoll`` pays O(ready).  This
experiment generates COPS-HTTP twice with only option O18 flipped,
parks an idle connection swarm on each server, and measures the
throughput of a small set of keep-alive clients hammering small files
(read-side bound: bodies are tiny, so per-wakeup poll cost dominates).

The measured gap is attributable to the backend alone — same template,
same workload, one option changed — which is the generative-pattern
methodology's point, and the repository gates on it
(``BENCH_poller.json``: epoll >= 1.3x select at the largest swarm).
"""

from __future__ import annotations

import os
import random
import shutil
import socket
import tempfile
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.analysis import render_series
from repro.runtime import available_pollers

__all__ = ["PollerPoint", "IdleSwarm", "run_poller_sweep",
           "format_fig3_poller", "materialise_small_fileset",
           "DEFAULT_IDLE_COUNTS"]

#: mostly-idle swarm sizes; the largest is the acceptance point
DEFAULT_IDLE_COUNTS = (0, 512, 2048)

#: small static bodies: the experiment is about readiness scanning, not
#: byte shovelling
FILE_COUNT = 8
FILE_SIZE = 512


@dataclass
class PollerPoint:
    """One (backend, idle swarm size) measurement."""

    poller: str
    idle_connections: int
    throughput: float          # responses/s over the active clients
    requests: int


def materialise_small_fileset(root: Path, seed: int = 7,
                              requests: int = 300) -> List[str]:
    """Write the small-file tree and return a uniform request sample."""
    rng = random.Random(seed)
    paths: List[str] = []
    for i in range(FILE_COUNT):
        rel = f"f{i}.txt"
        (root / rel).write_bytes(rng.randbytes(FILE_SIZE))
        paths.append("/" + rel)
    return [rng.choice(paths) for _ in range(requests)]


class IdleSwarm:
    """``count`` connected-but-silent sockets parked on the server.

    Under epoll they cost nothing after registration; under select
    every one of them is re-scanned by the kernel on every poll call.
    """

    def __init__(self, port: int, count: int):
        self.sockets: List[socket.socket] = []
        for _ in range(count):
            s = socket.create_connection(("127.0.0.1", port), timeout=10)
            self.sockets.append(s)

    def close(self) -> None:
        for s in self.sockets:
            try:
                s.close()
            except OSError:
                pass
        self.sockets.clear()


def _read_response(sock: socket.socket) -> None:
    """Read one keep-alive HTTP response (headers + Content-Length body)."""
    buf = b""
    while b"\r\n\r\n" not in buf:
        chunk = sock.recv(65536)
        if not chunk:
            raise ConnectionError("peer closed mid-response")
        buf += chunk
    head, body = buf.split(b"\r\n\r\n", 1)
    assert head.startswith(b"HTTP/1.1 200"), head.splitlines()[0]
    length = 0
    for line in head.split(b"\r\n")[1:]:
        name, _, value = line.partition(b":")
        if name.strip().lower() == b"content-length":
            length = int(value.strip())
    while len(body) < length:
        chunk = sock.recv(65536)
        if not chunk:
            raise ConnectionError("peer closed mid-body")
        body += chunk


def _drive(port: int, paths: Sequence[str], clients: int):
    """``clients`` keep-alive closed-loop request streams; returns
    (elapsed seconds, responses)."""
    per_client = len(paths) // clients
    errors: List[BaseException] = []

    def client(i: int) -> None:
        try:
            s = socket.create_connection(("127.0.0.1", port), timeout=30)
            s.settimeout(30)
            s.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            try:
                for path in paths[i * per_client:(i + 1) * per_client]:
                    s.sendall(f"GET {path} HTTP/1.1\r\nHost: f\r\n\r\n"
                              .encode())
                    _read_response(s)
            finally:
                s.close()
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=client, args=(i,))
               for i in range(clients)]
    started = time.monotonic()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.monotonic() - started
    if errors:
        raise errors[0]
    return elapsed, per_client * clients


@contextmanager
def _pinned_backend(name: str):
    """Pin ``REPRO_POLLER`` for a server's whole lifecycle: an
    O18=select build emits no backend choice and would otherwise take
    the platform pick."""
    previous = os.environ.get("REPRO_POLLER")
    os.environ["REPRO_POLLER"] = name
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop("REPRO_POLLER", None)
        else:
            os.environ["REPRO_POLLER"] = previous


def run_poller_sweep(
    idle_counts: Sequence[int] = DEFAULT_IDLE_COUNTS,
    requests: int = 300,
    active_clients: int = 4,
    seed: int = 7,
    pollers: Optional[Sequence[str]] = None,
) -> Dict[str, List[PollerPoint]]:
    """Measure responses/s for O18=select and O18=epoll at each idle
    swarm size, same documents and request sample throughout."""
    from repro.servers.cops_http import build_cops_http

    pollers = tuple(pollers) if pollers is not None else available_pollers()
    workdir = Path(tempfile.mkdtemp(prefix="fig3_poller_"))
    results: Dict[str, List[PollerPoint]] = {}
    try:
        docroot = workdir / "docroot"
        docroot.mkdir()
        paths = materialise_small_fileset(docroot, seed=seed,
                                          requests=requests)
        for poller in pollers:
            with _pinned_backend(poller):
                server, _fw, _report = build_cops_http(
                    str(docroot), dest=str(workdir / poller),
                    package=f"fig3_poller_{poller}_fw", poller=poller)
                server.start()
                points: List[PollerPoint] = []
                try:
                    for idle in idle_counts:
                        swarm = IdleSwarm(server.port, idle)
                        try:
                            _drive(server.port, paths[:len(paths) // 3],
                                   active_clients)  # warmup + drain accepts
                            elapsed, responses = _drive(
                                server.port, paths, active_clients)
                            points.append(PollerPoint(
                                poller=poller,
                                idle_connections=idle,
                                throughput=responses / elapsed,
                                requests=responses))
                        finally:
                            swarm.close()
                finally:
                    server.stop()
                results[poller] = points
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return results


def format_fig3_poller(results: Dict[str, List[PollerPoint]]) -> str:
    names = {"select": "Select (oracle)", "epoll": "Epoll (O18)"}
    xs = [p.idle_connections for p in next(iter(results.values()))]
    series = {names.get(p, p): [pt.throughput for pt in pts]
              for p, pts in results.items()}
    out = render_series(
        "idle conns", xs, series,
        title="FIG 3 (O18 extension) — THROUGHPUT (responses/s) UNDER "
              "MOSTLY-IDLE CONNECTION SWARMS: SELECT vs EPOLL",
        fmt="{:.1f}")
    if {"select", "epoll"} <= results.keys():
        ratios = ", ".join(
            f"{e.throughput / s.throughput:.2f}x at {s.idle_connections}"
            for s, e in zip(results["select"], results["epoll"]))
        out += f"\nepoll/select throughput ratio: {ratios} idle connections"
    return out
