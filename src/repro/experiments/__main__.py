"""Reproduce the paper's tables and figures from the command line.

    python -m repro.experiments table1
    python -m repro.experiments table2 table3 table4
    python -m repro.experiments fig5 --quick
    python -m repro.experiments all            # everything (~2 min)

``--quick`` shrinks durations/client counts for a fast sanity pass.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import (
    format_degradation_cliff,
    format_fig3,
    format_fig3_poller,
    format_fig3_procs,
    format_fig3_shards,
    format_fig3_zerocopy,
    format_fig4,
    format_fig5,
    format_fig6,
    format_table1,
    format_table2,
    format_table3,
    format_table4,
    run_capacity_sweep,
    run_degradation_cliff,
    run_fig5,
    run_fig6,
    run_poller_sweep,
    run_procs_sweep,
    run_shard_sweep,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_zerocopy_sweep,
)

EXPERIMENTS = ("table1", "table2", "table3", "table4",
               "fig3", "fig4", "fig5", "fig6", "fig3-shards",
               "fig3-zerocopy", "fig3-poller", "fig3-procs",
               "fig6-cliff")


def run_one(name: str, quick: bool, cache: dict) -> str:
    if name == "table1":
        return format_table1(run_table1())
    if name == "table2":
        return format_table2(run_table2())
    if name == "table3":
        return format_table3(run_table3())
    if name == "table4":
        return format_table4(run_table4())
    if name in ("fig3", "fig4"):
        if "sweep" not in cache:
            counts = (1, 8, 64, 256, 1024) if quick else \
                (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)
            cache["sweep"] = run_capacity_sweep(
                client_counts=counts,
                duration=15.0 if quick else 40.0,
                warmup=5.0 if quick else 10.0)
        sweep = cache["sweep"]
        return format_fig3(sweep) if name == "fig3" else format_fig4(sweep)
    if name == "fig3-shards":
        results = run_shard_sweep(
            shard_counts=(1, 2, 4) if quick else (1, 2, 4, 8),
            clients=256,
            duration=10.0 if quick else 40.0,
            warmup=3.0 if quick else 10.0)
        return format_fig3_shards(results)
    if name == "fig3-zerocopy":
        results = run_zerocopy_sweep(
            client_counts=(1, 2) if quick else (1, 2, 4),
            requests=40 if quick else 120)
        return format_fig3_zerocopy(results)
    if name == "fig3-poller":
        results = run_poller_sweep(
            idle_counts=(0, 256) if quick else (0, 512, 2048),
            requests=120 if quick else 300)
        return format_fig3_poller(results)
    if name == "fig3-procs":
        results = run_procs_sweep(
            proc_counts=(1, 2) if quick else (1, 2, 4),
            requests=96 if quick else 256)
        return format_fig3_procs(results)
    if name == "fig5":
        points, portal_only = run_fig5(
            ratios=((1, 1), (1, 4)) if quick else ((1, 1), (1, 2), (1, 4), (1, 10)),
            clients=176 if quick else 192,
            duration=15.0 if quick else 30.0,
            warmup=4.0 if quick else 8.0)
        return format_fig5(points, portal_only)
    if name == "fig6":
        points = run_fig6(
            client_counts=(8, 64) if quick else (1, 4, 16, 32, 64, 128),
            duration=15.0 if quick else 30.0,
            warmup=4.0 if quick else 8.0)
        return format_fig6(points)
    if name == "fig6-cliff":
        points = run_degradation_cliff(
            client_counts=(16, 64) if quick else (16, 32, 64, 96),
            duration=10.0 if quick else 20.0,
            warmup=3.0 if quick else 6.0)
        return format_degradation_cliff(points)
    raise ValueError(name)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the paper's tables and figures")
    parser.add_argument("experiments", nargs="+",
                        choices=EXPERIMENTS + ("all",))
    parser.add_argument("--quick", action="store_true",
                        help="smaller sweeps for a fast sanity pass")
    args = parser.parse_args(argv)

    names = list(EXPERIMENTS) if "all" in args.experiments \
        else list(dict.fromkeys(args.experiments))
    cache: dict = {}
    for name in names:
        started = time.monotonic()
        output = run_one(name, args.quick, cache)
        elapsed = time.monotonic() - started
        print(output)
        print(f"[{name}: {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
