"""Graceful degradation vs the overload cliff (template option O17).

The scenario extends Fig 6's CPU-bound setup (50 ms decode, watermarks
20/5) far past saturation and scores each run by **goodput**: responses
per second whose *client-experienced* time — response time plus the
amortized connection-establishment wait — met a deadline.  A response
the client had stopped waiting for is not good.

Three variants tell the story:

* ``none`` — no admission control at all: the reactive queue grows
  without bound, response times blow through the deadline, goodput
  falls off a cliff;
* ``postpone`` — the paper's O9 silent postpone: established
  connections stay fast (the Fig 6 result), but waiting clients pile
  up in the kernel backlog and SYN-retransmit backoff, so the
  *combined* time explodes and goodput falls off the same cliff;
* ``degradation`` — the O17 plane: overload produces explicit cheap
  503 + ``Retry-After`` rejections that keep draining the backlog,
  the per-client token buckets keep the shedding fair, and CoDel
  sojourn drops bound in-queue waiting.  Admitted clients stay inside
  the deadline, so goodput holds near its peak at any overload.

``tune_watermark`` is the offline counterpart of the live AIMD
controller: coordinate hill-climbing of the overload high watermark
against the simulated testbed's goodput.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.analysis import render_series
from repro.runtime import hill_climb
from repro.sim.testbed import TestbedConfig, run_testbed

__all__ = [
    "CliffPoint",
    "DEFAULT_CLIFF_CLIENTS",
    "VARIANTS",
    "run_degradation_cliff",
    "format_degradation_cliff",
    "goodput_retention",
    "tune_watermark",
]

DEFAULT_CLIFF_CLIENTS = (16, 32, 64, 96)

#: admission-control variants, weakest first
VARIANTS = ("none", "postpone", "degradation")


@dataclass
class CliffPoint:
    clients: int
    variant: str
    throughput: float
    goodput: float
    response_p99: float
    combined_mean: float
    shed_total: int
    syn_drops: int


def _cliff_config(
    variant: str,
    clients: int,
    duration: float,
    warmup: float,
    decode_sleep: float,
    deadline: float,
    high: int,
    low: int,
) -> TestbedConfig:
    if variant not in VARIANTS:
        raise ValueError(f"unknown variant {variant!r}")
    return TestbedConfig(
        server="cops", clients=clients,
        duration=duration, warmup=warmup,
        decode_extra_cpu=decode_sleep,
        overload=(variant != "none"),
        overload_high=high, overload_low=low,
        degradation=(variant == "degradation"),
        goodput_deadline=deadline,
    )


def run_degradation_cliff(
    client_counts: Sequence[int] = DEFAULT_CLIFF_CLIENTS,
    duration: float = 20.0,
    warmup: float = 6.0,
    decode_sleep: float = 0.050,
    deadline: float = 0.5,
    high: int = 20,
    low: int = 5,
    variants: Sequence[str] = VARIANTS,
) -> List[CliffPoint]:
    points = []
    for clients in client_counts:
        for variant in variants:
            r = run_testbed(_cliff_config(
                variant, clients, duration, warmup,
                decode_sleep, deadline, high, low))
            points.append(CliffPoint(
                clients=clients,
                variant=variant,
                throughput=r.throughput,
                goodput=r.goodput,
                response_p99=r.response_p99,
                combined_mean=r.combined_mean,
                shed_total=r.shed_total,
                syn_drops=r.syn_drops,
            ))
    return points


def goodput_retention(points: Sequence[CliffPoint], variant: str) -> float:
    """Goodput at the deepest overload as a fraction of the variant's
    peak goodput anywhere in the sweep (1.0 = perfectly graceful)."""
    by_n = {p.clients: p.goodput for p in points if p.variant == variant}
    if not by_n:
        return 0.0
    peak = max(by_n.values())
    return by_n[max(by_n)] / peak if peak > 0 else 0.0


def format_degradation_cliff(points: Sequence[CliffPoint]) -> str:
    xs = sorted({p.clients for p in points})
    variants = [v for v in VARIANTS
                if any(p.variant == v for p in points)]

    def pick(variant: str, attr: str) -> list:
        by_n = {p.clients: getattr(p, attr)
                for p in points if p.variant == variant}
        return [by_n.get(n) for n in xs]

    series = {}
    for variant in variants:
        series[f"goodput ({variant})/s"] = pick(variant, "goodput")
    for variant in variants:
        series[f"thr ({variant})/s"] = pick(variant, "throughput")
    if any(p.variant == "degradation" for p in points):
        series["shed (degradation)"] = pick("degradation", "shed_total")
    retention = ", ".join(
        f"{v}={goodput_retention(points, v):.0%}" for v in variants)
    return render_series(
        "clients", xs, series,
        title="O17 — GOODPUT UNDER OVERLOAD: GRACEFUL VS CLIFF "
              f"[retention at max load: {retention}]",
        fmt="{:.1f}")


def tune_watermark(
    clients: int = 64,
    duration: float = 8.0,
    warmup: float = 3.0,
    decode_sleep: float = 0.050,
    deadline: float = 0.5,
    initial: int = 20,
    lo: int = 4,
    hi: int = 64,
    budget: int = 8,
) -> Tuple[int, float]:
    """Hill-climb the overload high watermark against sim goodput.

    The offline half of the adaptive-control story: the same knob the
    live :class:`repro.runtime.AdaptiveController` retunes by AIMD is
    searched here against the deterministic testbed, returning
    ``(best_high, best_goodput)``."""

    def evaluate(high: int) -> float:
        return run_testbed(_cliff_config(
            "degradation", clients, duration, warmup,
            decode_sleep, deadline,
            high=high, low=max(1, high // 4))).goodput

    return hill_climb(evaluate, initial=initial, lo=lo, hi=hi,
                      steps=(16, 8, 4, 2, 1), budget=budget)
