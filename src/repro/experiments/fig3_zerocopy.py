"""Fig 3 (O15 extension): buffered vs zero-copy write path, real sockets.

Unlike the simulated capacity sweep behind Figs 3/4 (whose testbed
models per-request CPU, not per-byte copy cost), this experiment runs
the *generated* COPS-HTTP framework twice — once per O15 value — and
drives both over real sockets with a large-file Zipf workload, where
the copying write path's per-partial-send re-buffering is visible.

Both servers are generated from the same template with only option O15
flipped; the measured gap is therefore attributable to the write path
alone, which is the point of the generative-pattern methodology.
"""

from __future__ import annotations

import random
import shutil
import socket
import tempfile
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence

from repro.analysis import render_series

__all__ = ["WritePathPoint", "run_zerocopy_sweep", "format_fig3_zerocopy",
           "materialise_large_fileset", "DEFAULT_WRITE_PATH_CLIENTS"]

DEFAULT_WRITE_PATH_CLIENTS = (1, 2, 4)

#: Large static bodies (the regime O15 targets): a handful of files per
#: size class, Zipf-weighted towards the big ones so most bytes on the
#: wire come from multi-segment, partial-send responses.
FILE_SIZES = (65536, 262144, 2097152)
FILES_PER_SIZE = 4


@dataclass
class WritePathPoint:
    """One (write path, client count) measurement."""

    write_path: str
    clients: int
    throughput: float          # responses/s
    megabytes_per_sec: float
    requests: int


def materialise_large_fileset(root: Path, seed: int = 7,
                              requests: int = 60) -> List[str]:
    """Write the large-file tree under ``root`` and return a Zipf-ish
    request path sample (big files weighted heaviest)."""
    rng = random.Random(seed)
    paths: List[str] = []
    weights: List[float] = []
    for rank, size in enumerate(FILE_SIZES):
        for i in range(FILES_PER_SIZE):
            rel = f"class{rank}/file{i}.bin"
            target = root / rel
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_bytes(rng.randbytes(size))
            paths.append("/" + rel)
            # Zipf over size classes, uniform within a class.
            weights.append((rank + 1) / (i + 1))
    return rng.choices(paths, weights=weights, k=requests)


def _get(port: int, path: str) -> int:
    """One closed-loop GET; returns the number of body+head bytes read."""
    s = socket.create_connection(("127.0.0.1", port), timeout=30)
    s.settimeout(30)
    try:
        s.sendall(f"GET {path} HTTP/1.1\r\nHost: f\r\n"
                  "Connection: close\r\n\r\n".encode())
        received = 0
        first = b""
        while True:
            chunk = s.recv(65536)
            if not chunk:
                break
            if not first:
                first = chunk[:15]
            received += len(chunk)
        assert first.startswith(b"HTTP/1.1 200"), first
        return received
    finally:
        s.close()


def _drive(port: int, paths: Sequence[str], clients: int):
    """``clients`` concurrent closed-loop request streams; returns
    (elapsed seconds, responses, bytes received)."""
    per_client = len(paths) // clients
    totals = [0] * clients
    errors: List[BaseException] = []

    def client(i: int) -> None:
        try:
            for path in paths[i * per_client:(i + 1) * per_client]:
                totals[i] += _get(port, path)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=client, args=(i,))
               for i in range(clients)]
    started = time.monotonic()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.monotonic() - started
    if errors:
        raise errors[0]
    return elapsed, per_client * clients, sum(totals)


def run_zerocopy_sweep(
    client_counts: Sequence[int] = DEFAULT_WRITE_PATH_CLIENTS,
    requests: int = 60,
    seed: int = 7,
) -> Dict[str, List[WritePathPoint]]:
    """Measure responses/s for O15=buffered and O15=zerocopy at each
    client count, against the same documents and request sample."""
    from repro.servers.cops_http import build_cops_http

    workdir = Path(tempfile.mkdtemp(prefix="fig3_zerocopy_"))
    results: Dict[str, List[WritePathPoint]] = {}
    try:
        docroot = workdir / "docroot"
        docroot.mkdir()
        paths = materialise_large_fileset(docroot, seed=seed,
                                          requests=requests)
        for write_path in ("buffered", "zerocopy"):
            server, _fw, _report = build_cops_http(
                str(docroot), dest=str(workdir / write_path),
                package=f"fig3_{write_path}_fw", write_path=write_path)
            server.start()
            points: List[WritePathPoint] = []
            try:
                for clients in client_counts:
                    elapsed, responses, received = _drive(
                        server.port, paths, clients)
                    points.append(WritePathPoint(
                        write_path=write_path,
                        clients=clients,
                        throughput=responses / elapsed,
                        megabytes_per_sec=received / elapsed / 1e6,
                        requests=responses))
            finally:
                server.stop()
            results[write_path] = points
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return results


def format_fig3_zerocopy(results: Dict[str, List[WritePathPoint]]) -> str:
    names = {"buffered": "Buffered", "zerocopy": "Zero-copy"}
    xs = [p.clients for p in next(iter(results.values()))]
    series = {names.get(w, w): [p.throughput for p in pts]
              for w, pts in results.items()}
    out = render_series(
        "clients", xs, series,
        title="FIG 3 (O15 extension) — THROUGHPUT (responses/s): "
              "BUFFERED vs ZERO-COPY WRITE PATH",
        fmt="{:.1f}")
    if {"buffered", "zerocopy"} <= results.keys():
        ratios = ", ".join(
            f"{z.throughput / b.throughput:.2f}x at {b.clients}"
            for b, z in zip(results["buffered"], results["zerocopy"]))
        out += f"\nzerocopy/buffered throughput ratio: {ratios} clients"
    return out
