"""COPS-Mail: the mail server the paper names as another N-Server use.

Same recipe as COPS-FTP: reuse the protocol library
(:mod:`repro.smtp`), generate the event-driven framework from the
template, and write a page of hook methods.  The interesting framing
detail: SMTP's DATA mode changes the unit of work from a command line
to a whole dot-terminated message — the ``split_request`` hook consults
per-connection session state.
"""

from __future__ import annotations

import tempfile
from typing import Optional

from repro.co2p3s.nserver import NSERVER
from repro.co2p3s.template import load_generated_package
from repro.runtime import ServerHooks
from repro.smtp import MailStore, SmtpSession

__all__ = ["MAIL_SERVER_OPTIONS", "MailServerHooks", "build_mail_server"]

#: Table-1 column for a mail server: codec on (SMTP replies are built
#: from session state), synchronous completions (delivery is an
#: in-memory store), idle shutdown on (SMTP clients that stall are
#: dropped), logging on (mail servers log).
MAIL_SERVER_OPTIONS = {
    "O1": "1",
    "O2": True,
    "O3": True,
    "O4": "Synchronous",
    "O5": "Static",
    "O6": None,
    "O7": True,
    "O8": False,
    "O9": False,
    "O10": "Production",
    "O11": False,
    "O12": True,
}


class MailServerHooks(ServerHooks):
    """The hand-written part of COPS-Mail."""

    def __init__(self, store: Optional[MailStore] = None,
                 hostname: str = "cops-mail"):
        self.store = store if store is not None else MailStore()
        self.hostname = hostname

    # -- lifecycle --------------------------------------------------------
    def on_connect(self, conn) -> None:
        conn.context["smtp"] = SmtpSession(self.store,
                                           hostname=self.hostname)

    def server_greeting(self, conn) -> bytes:
        return conn.context["smtp"].greeting()

    # -- framing: per-session (line vs DATA block) ---------------------------
    def split_request(self, data: bytes):
        """SMTP framing is *stateful* (line mode vs DATA mode), so it
        lives on the per-connection hook clone installed by
        :class:`_ConnectionBoundHooks`; reaching this method means the
        hooks were used without that wrapper."""
        raise NotImplementedError(
            "use build_mail_server(), which installs per-connection framing")

    # -- the three steps ----------------------------------------------------------
    def decode(self, raw: bytes, conn) -> bytes:
        return raw

    def handle(self, unit: bytes, conn):
        session = conn.context["smtp"]
        reply = session.handle(unit)
        if session.closed:
            conn.close_after_flush = True
        return reply

    def encode(self, result, conn) -> bytes:
        return result


class _ConnectionBoundHooks(MailServerHooks):
    """Hooks specialised per connection so framing can see the session.

    The generated framework passes the same hooks object to every
    Communicator; SMTP framing is stateful, so each connection gets a
    lightweight clone whose ``split_request`` closes over its session.
    """

    def on_connect(self, conn) -> None:
        super().on_connect(conn)
        session = conn.context["smtp"]
        conn.hooks = _PerConnectionHooks(self, session)


class _PerConnectionHooks(ServerHooks):
    def __init__(self, parent: MailServerHooks, session: SmtpSession):
        self.parent = parent
        self.session = session

    def split_request(self, data: bytes):
        return self.session.split_unit(data)

    def decode(self, raw: bytes, conn) -> bytes:
        return raw

    def handle(self, unit: bytes, conn):
        reply = self.session.handle(unit)
        if self.session.closed:
            conn.close_after_flush = True
        return reply

    def encode(self, result, conn) -> bytes:
        return result

    def server_greeting(self, conn) -> bytes:
        return self.session.greeting()


def build_mail_server(
    store: Optional[MailStore] = None,
    options: Optional[dict] = None,
    dest: Optional[str] = None,
    package: str = "cops_mail_fw",
    host: str = "127.0.0.1",
    port: int = 0,
    **config_overrides,
):
    """Generate the COPS-Mail framework and return the assembled server.

    Returns ``(server, store, framework_module)``.
    """
    store = store if store is not None else MailStore()
    opts = NSERVER.configure(options or MAIL_SERVER_OPTIONS)
    dest = dest or tempfile.mkdtemp(prefix="cops_mail_")
    NSERVER.generate(opts, dest, package=package)
    fw = load_generated_package(dest, package)
    configuration = fw.ServerConfiguration(host=host, port=port,
                                           **config_overrides)
    server = fw.Server(_ConnectionBoundHooks(store=store),
                       configuration=configuration)
    return server, store, fw
