"""Time server: the paper's example of a *trivial* application the same
template supports ("ranging from trivial applications (e.g., Time
server) to those as sophisticated ... as Web servers").

Daytime-style protocol: any request line gets the current time; the
option set is the minimal one — no codec (Fig 2's three-step cycle),
no pool features, synchronous completions.
"""

from __future__ import annotations

import tempfile
import time
from typing import Optional

from repro.co2p3s.nserver import NSERVER
from repro.co2p3s.template import load_generated_package
from repro.runtime import ServerHooks

__all__ = ["TimeServerHooks", "TIME_SERVER_OPTIONS", "build_time_server"]

#: The minimal Table 1 column a time server needs.
TIME_SERVER_OPTIONS = {
    "O1": "1",
    "O2": True,
    "O3": False,            # Fig 2: no encode/decode steps
    "O4": "Synchronous",
    "O5": "Static",
    "O6": None,
    "O7": True,             # drop idle clients
    "O8": False,
    "O9": False,
    "O10": "Production",
    "O11": False,
    "O12": False,
}


class TimeServerHooks(ServerHooks):
    """One hook method: any line in, the time out (no codec steps)."""

    def __init__(self, clock=time.time):
        self.clock = clock

    def handle(self, request: bytes, conn) -> bytes:
        stamp = time.strftime("%Y-%m-%d %H:%M:%S",
                              time.gmtime(self.clock()))
        return stamp.encode("ascii") + b"\n"


def build_time_server(dest: Optional[str] = None,
                      package: str = "time_server_fw",
                      host: str = "127.0.0.1", port: int = 0,
                      **config_overrides):
    """Generate the time-server framework and return the server.

    Returns ``(server, framework_module, generation_report)``.
    """
    opts = NSERVER.configure(TIME_SERVER_OPTIONS)
    dest = dest or tempfile.mkdtemp(prefix="time_server_")
    report = NSERVER.generate(opts, dest, package=package)
    fw = load_generated_package(dest, package)
    configuration = fw.ServerConfiguration(host=host, port=port,
                                           **config_overrides)
    server = fw.Server(TimeServerHooks(), configuration=configuration)
    return server, fw, report
