"""The O17 application surface of COPS-HTTP.

:mod:`repro.servers.cops_http` is Table 4's "other application code" —
the hand-written part of the *paper's* COPS-HTTP, measured against the
paper's NCSS counts.  The graceful-degradation extension (template
option O17) adds an application surface of its own — finding the plane,
building shed responses, serving stale under brownout, reporting in
``?auto`` — that no base build ever executes, exactly as O17=No emits
zero generated code.  It lives here so the extension stays out of the
paper-comparison measurement the same way it stays out of the generated
base framework; the hooks in ``cops_http`` call in when a plane exists.
"""

from __future__ import annotations

from repro import http

__all__ = [
    "bound_payload",
    "degradation_plane",
    "degradation_report",
    "shed_response",
    "stale_payload",
]


def degradation_plane(conn):
    """The O17 degradation plane, wherever this framework keeps it:
    generated builds hang a ``Degradation`` component off the reactor;
    the hand-wired :class:`~repro.runtime.server.ReactorServer` exposes
    the same attributes itself.  None when the build has no plane
    (O17=No leaves no call site behind)."""
    reactor = getattr(conn, "reactor", None)
    plane = getattr(reactor, "degradation", None)
    if plane is not None:
        return plane
    server = conn.context.get("server")
    if server is not None and getattr(server, "shedding", None) is not None:
        return server
    return None


def shed_response(request, decision):
    """A well-formed 503 with ``Retry-After`` for one shed request."""
    headers = http.Headers([
        ("Content-Type", "text/plain; charset=utf-8"),
        ("Retry-After", str(max(1, int(round(decision.retry_after))))),
        ("Connection", "close"),
    ])
    if decision.reason:
        headers.set("X-Shed-Reason", decision.reason)
    response = http.HttpResponse(
        status=503, headers=headers,
        body=b"503 Service Unavailable\r\n",
        version=request.version,
        head_only=request.method == "HEAD")
    response._close_after = True
    return response


def stale_payload(conn, path):
    """The cache plane's current payload for ``path`` (no loader, no
    revalidation), or None when nothing is cached."""
    file_io = getattr(conn.reactor, "compute_request_event_handler", None)
    cache = getattr(file_io, "cache", None)
    if cache is None:
        return None
    entry = cache.cache.get(path)
    return entry.payload if entry is not None else None


def bound_payload(payload, brownout):
    """Apply the brownout response cap to ``payload`` when one is
    active, accounting the truncation on the controller."""
    if (brownout is not None and payload
            and isinstance(payload, (bytes, bytearray, memoryview))):
        cap = brownout.response_cap()
        if cap is not None and len(payload) > cap:
            payload = bytes(payload[:cap])
            brownout.bounded()
    return payload


def degradation_report(plane) -> str:
    """Extra ``?auto`` lines for the O17 plane, in the same
    ``Key: value`` shape ``mod_status`` consumers parse."""
    lines = []
    shedding = getattr(plane, "shedding", None)
    if shedding is not None:
        status = shedding.status()
        lines.append(f"ShedTotal: {status['shed_total']}")
        for reason, count in sorted(status["shed_by_reason"].items()):
            lines.append(f"Shed_{reason}: {count}")
    brownout = getattr(plane, "brownout", None)
    if brownout is not None:
        lines.append(f"BrownoutLevel: {brownout.level:.2f}")
        lines.append(f"BrownoutStaleServed: {brownout.stale_served}")
        lines.append(f"BrownoutBounded: {brownout.responses_bounded}")
    breaker = getattr(plane, "breaker", None)
    if breaker is not None:
        lines.append(f"BreakerState: {breaker.state}")
        lines.append(f"BreakerTrips: {breaker.trips}")
    adaptive = getattr(plane, "adaptive", None)
    if adaptive is not None:
        status = adaptive.status()
        lines.append(f"AdaptiveHigh: {status['high']}")
        lines.append(f"AdaptiveAdjustments: {status['adjustments']}")
    return "".join(line + "\n" for line in lines)
