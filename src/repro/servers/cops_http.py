"""COPS-HTTP: the paper's high-performance static-content web server.

Built exactly the paper's way: the N-Server template generates the
framework (Table 1, COPS-HTTP column: one dispatcher thread, separate
Event Processor pool, asynchronous completion events emulating
non-blocking disk I/O, LRU file cache), and the application supplies
only the hook methods below plus the HTTP protocol library
(:mod:`repro.http`).

The handle hook is asynchronous: a GET issues an emulated non-blocking
file read and returns :data:`PENDING`; the completion event (carrying an
Asynchronous Completion Token that remembers the request) builds the
response and finishes the request on the connection.
"""

from __future__ import annotations

import tempfile
from typing import Optional

from repro import http
from repro.servers import http_degradation as o17
from repro.co2p3s.nserver import COPS_HTTP_OPTIONS, NSERVER
from repro.co2p3s.template import load_generated_package
from repro.runtime import AsynchronousCompletionToken, PENDING, ServerHooks

__all__ = ["CopsHttpHooks", "build_cops_http", "main"]


class _Garbage(bytes):
    """Unframeable input passed through to the Decode step, carrying
    the framing error so its status survives the trip — an oversized
    Content-Length must stay a 413, not get re-parsed into a served
    request (a smuggling vector the conformance sweep caught)."""

    error: Optional[http.BadRequest] = None


class CopsHttpHooks(ServerHooks):
    """The hand-written part of COPS-HTTP (Table 4's "other application
    code"): HTTP semantics on top of the generated framework."""

    index_file = "index.html"
    #: Apache ``mod_status``-style endpoint; answered only when the
    #: framework was generated with O11=Yes (``?auto`` = machine format).
    status_path = "/server-status"

    def __init__(self, default_priority: int = 0):
        self.default_priority = default_priority

    # -- framing -------------------------------------------------------
    def split_request(self, data: bytes):
        """HTTP framing: head + Content-Length body."""
        try:
            return http.split_request(data)
        except http.BadRequest as exc:
            # Let decode() see the garbage and answer with an error.
            garbage = _Garbage(data)
            garbage.error = exc
            return garbage, b""

    # -- Decode Request ---------------------------------------------------
    def decode(self, raw: bytes, conn):
        if isinstance(raw, _Garbage):
            return raw.error  # the framing error, status intact
        try:
            request = http.parse_request(raw)
        except http.BadRequest as exc:
            return exc  # handled below; connection answers and closes
        try:
            request.validate()
            return request
        except http.BadRequest as exc:
            # The request parsed, so the method is known: an error
            # answering a HEAD must not carry the error page's body.
            exc.head_only = request.method == "HEAD"
            return exc

    # -- Handle Request -----------------------------------------------------
    def handle(self, request, conn):
        if isinstance(request, http.BadRequest):
            return self._error(conn, request.status, close=True,
                               head_only=getattr(request, "head_only",
                                                 False))
        if request.method not in ("GET", "HEAD"):
            # Supported-but-unimplemented verb: 501 on a live connection.
            return self._error(conn, 501, version=request.version,
                               close=not request.keep_alive)
        if request.path == self.status_path:
            return self._server_status(request, conn)
        path = request.path
        if path.endswith("/"):
            path += self.index_file
        head_only = request.method == "HEAD"
        keep_alive = request.keep_alive
        version = request.version

        # O17: per-request priority shedding — under a tripped
        # watermark, classes below the policy floor answer 503 without
        # ever touching the file I/O plane.
        plane = o17.degradation_plane(conn)
        shedding = getattr(plane, "shedding", None)
        if shedding is not None:
            decision = shedding.admit_request(
                self.classify_request(request),
                getattr(conn.handle, "trace_id", 0))
            if not decision.admitted:
                return o17.shed_response(request, decision)

        # O17 brownout: above the stale threshold, answer from whatever
        # the cache plane already holds — no disk, no revalidation.
        brownout = getattr(plane, "brownout", None)
        if brownout is not None and brownout.serve_stale:
            stale = o17.stale_payload(conn, path)
            if stale is not None:
                brownout.served_stale()
                return self._file_response(
                    path, stale, head_only, keep_alive, version,
                    brownout=brownout)

        # The order ticket pairs the disk completion with *this* request:
        # pipelined reads finish out of order (worker threads, inline
        # cache hits) and the reply must not attach to whichever request
        # happens to head the queue.
        ticket = conn.current_ticket()
        act = AsynchronousCompletionToken(
            context=(path, head_only, keep_alive, version, ticket),
            on_complete=lambda event: self._file_ready(conn, event),
        )
        conn.reactor.compute_request_event_handler.read_file(
            path, act, priority=conn.priority)
        return PENDING

    def classify_request(self, request) -> str:
        """O17 request class, priority-ordered: ``status`` (operator
        traffic) > ``page`` (HTML) > ``asset`` (everything else, the
        bulk bytes that shed first under pressure)."""
        if request.path == self.status_path:
            return "status"
        if request.path.endswith("/") or request.path.endswith(".html"):
            return "page"
        return "asset"

    def _file_response(self, path, payload, head_only, keep_alive, version,
                       brownout=None):
        """Build the 200 for a served file, applying the brownout
        response cap when one is active."""
        payload = o17.bound_payload(payload, brownout)
        headers = http.Headers([
            ("Content-Type", http.guess_type(path)),
        ])
        if not keep_alive:
            headers.set("Connection", "close")
        elif version == "HTTP/1.0":
            # HTTP/1.0 defaults to close: staying open must be echoed,
            # or the client hangs up after the first response.
            headers.set("Connection", "keep-alive")
        response = http.HttpResponse(status=200, headers=headers,
                                     body=payload, version=version,
                                     head_only=head_only)
        response._close_after = not keep_alive
        return response

    def _file_ready(self, conn, event) -> None:
        path, head_only, keep_alive, version, ticket = event.token.context
        if not event.ok:
            # O17: a failing disk (or an open breaker) can still be
            # browned out — answer stale from the cache plane rather
            # than 404ing content we have in memory.
            plane = o17.degradation_plane(conn)
            brownout = getattr(plane, "brownout", None)
            if brownout is not None and brownout.serve_stale:
                stale = o17.stale_payload(conn, path)
                if stale is not None:
                    brownout.served_stale()
                    conn.complete_request(self._file_response(
                        path, stale, head_only, keep_alive, version,
                        brownout=brownout), ticket)
                    return
            response = http.error_response(404, version=version,
                                           close=not keep_alive,
                                           head_only=head_only)
            if keep_alive and version == "HTTP/1.0":
                response.headers.set("Connection", "keep-alive")
            response._close_after = not keep_alive
        else:
            plane = o17.degradation_plane(conn)
            response = self._file_response(
                path, event.payload, head_only, keep_alive, version,
                brownout=getattr(plane, "brownout", None))
        conn.complete_request(response, ticket)

    def _server_status(self, request, conn):
        """The ``/server-status`` surface: HTML report, the Apache
        ``mod_status`` machine-readable format with ``?auto``, or the
        recent-request trace report with ``?trace``.

        The observability layer only exists when the framework was
        generated with O11=Yes; any other build answers 404 — the page,
        like every O11 call site, leaves no trace in an O11=No server.
        """
        observability = getattr(conn.reactor, "observability", None)
        keep_alive = request.keep_alive
        if observability is None:
            return self._error(conn, 404, version=request.version,
                               close=not keep_alive,
                               head_only=request.method == "HEAD")
        query = request.query.split("&")
        auto = "auto" in query
        if "trace" in query:
            body = observability.trace_report()
            content_type = "text/plain; charset=utf-8"
        else:
            body = observability.status_report(auto=auto)
            content_type = ("text/plain; charset=utf-8" if auto
                            else "text/html; charset=utf-8")
            if auto:
                plane = o17.degradation_plane(conn)
                if plane is not None:
                    body += o17.degradation_report(plane)
        headers = http.Headers([("Content-Type", content_type)])
        if not keep_alive:
            headers.set("Connection", "close")
        elif request.version == "HTTP/1.0":
            headers.set("Connection", "keep-alive")
        response = http.HttpResponse(status=200, headers=headers,
                                     body=body.encode("utf-8"),
                                     version=request.version,
                                     head_only=request.method == "HEAD")
        response._close_after = not keep_alive
        return response

    def _error(self, conn, status: int, version: str = "HTTP/1.1",
               close: bool = False, head_only: bool = False):
        response = http.error_response(status, version=version, close=close,
                                       head_only=head_only)
        if not close and version == "HTTP/1.0":
            response.headers.set("Connection", "keep-alive")
        response._close_after = close
        return response

    # -- Encode Reply ---------------------------------------------------------
    def encode(self, result, conn):
        """Serialise the response: segments on the zero-copy write path
        (O15=zerocopy builds give every Communicator the shared header
        pool), one concatenated ``bytes`` otherwise."""
        if getattr(result, "_close_after", False):
            conn.close_after_flush = True
        pool = getattr(conn, "buffer_pool", None)
        if pool is not None:
            return result.encode_segments(pool=pool)
        return result.encode()

    # -- event scheduling hook (Fig 5: 13 added lines in the paper) -------------
    def classify_priority(self, conn) -> int:
        return self.default_priority


class PriorityByPeerHooks(CopsHttpHooks):
    """The Fig 5 scheduling policy: the peer's address decides whether a
    connection is corporate-portal (high priority) or personal-homepage
    traffic.  This subclass is the analogue of the paper's "only 13
    lines of code are added to COPS-HTTP"."""

    def __init__(self, portal_peers, portal_priority: int = 1,
                 homepage_priority: int = 0):
        super().__init__()
        self.portal_peers = set(portal_peers)
        self.portal_priority = portal_priority
        self.homepage_priority = homepage_priority

    def classify_priority(self, conn) -> int:
        peer = conn.handle.name.split(":")[0]
        if peer in self.portal_peers:
            return self.portal_priority
        return self.homepage_priority


def build_cops_http(
    document_root: str,
    options: Optional[dict] = None,
    hooks: Optional[CopsHttpHooks] = None,
    dest: Optional[str] = None,
    package: str = "cops_http_fw",
    host: str = "127.0.0.1",
    port: int = 0,
    shards: int = 1,
    procs: int = 1,
    write_path: str = "buffered",
    degradation: bool = False,
    poller: Optional[str] = None,
    **config_overrides,
):
    """Generate the COPS-HTTP framework and return a started-able Server.

    ``shards`` > 1 regenerates the framework with option O14 (reactor
    shards): N reactors behind the primary's listening endpoint, each
    with its own event sources, Event Processor pool and scheduler
    queue.  Pass ``shard_policy=...`` as a config override to pick the
    connection-placement policy.

    ``procs`` > 1 regenerates the framework with option O16 (worker
    processes): the Server becomes a process supervisor forking N
    worker interpreters, each running its own (possibly O14-sharded)
    reactor on a shared ``SO_REUSEPORT`` listen socket, with crash
    respawn and zero-downtime rolling restart.  Hooks must then be
    importable by module path — they are re-created inside each
    worker — so pass a module-level hooks class (or none).

    ``write_path="zerocopy"`` regenerates with option O15: pooled
    header buffers, cached bodies as memoryview segments, and a
    scatter-gather send loop instead of the copying write path.

    ``degradation=True`` regenerates with option O17: explicit
    prioritized load shedding (503 + ``Retry-After`` instead of silent
    postpone), per-client rate limiting, brownout, and a circuit-broken
    file I/O plane.

    ``poller="epoll"`` regenerates with option O18: the edge-triggered
    ``select.epoll`` readiness backend with batched accepts;
    ``poller="select"`` pins the portable level-triggered oracle.
    ``None`` leaves O18 at whatever ``options`` says (the runtime then
    picks the platform default, overridable via ``REPRO_POLLER``).

    Returns ``(server, framework_module, generation_report)``.
    """
    option_dict = dict(options or COPS_HTTP_OPTIONS)
    if shards != 1:
        option_dict["O14"] = shards
    if procs != 1:
        option_dict["O16"] = procs
    if write_path != "buffered":
        option_dict["O15"] = write_path
    if degradation:
        # O17 rides on O9: the shedding policy consults the overload
        # controller, so the degradation build always has one.
        option_dict["O9"] = True
        option_dict["O17"] = True
    if poller is not None:
        option_dict["O18"] = poller
    opts = NSERVER.configure(option_dict)
    dest = dest or tempfile.mkdtemp(prefix="cops_http_")
    report = NSERVER.generate(opts, dest, package=package)
    fw = load_generated_package(dest, package)
    configuration = fw.ServerConfiguration(
        host=host, port=port, document_root=document_root, **config_overrides)
    server = fw.Server(hooks or CopsHttpHooks(), configuration=configuration)
    return server, fw, report


def main(argv=None) -> int:
    """``python -m repro.servers.cops_http --root DIR [--shards N]``."""
    import argparse, time

    parser = argparse.ArgumentParser(
        prog="cops-http",
        description="COPS-HTTP: the generated static-content web server.")
    parser.add_argument("--root", required=True,
                        help="document root to serve")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="listen port (0 = ephemeral)")
    parser.add_argument("--shards", type=int, default=1,
                        choices=(1, 2, 4, 8),
                        help="reactor shards (template option O14)")
    parser.add_argument("--procs", type=int, default=1,
                        choices=(1, 2, 4, 8),
                        help="worker processes (template option O16); "
                             "SIGHUP rolls them with zero downtime")
    parser.add_argument("--policy", default="round-robin",
                        choices=("round-robin", "least-connections",
                                 "connection-hash"),
                        help="shard placement policy (O14>1 builds only)")
    parser.add_argument("--observability", action="store_true",
                        help="generate with O11=Yes (/server-status)")
    parser.add_argument("--write-path", default="buffered",
                        choices=("buffered", "zerocopy"),
                        help="response write path (template option O15)")
    parser.add_argument("--degradation", action="store_true",
                        help="generate with O17=Yes (graceful degradation)")
    parser.add_argument("--poller", choices=("select", "epoll"),
                        help="readiness backend (template option O18; "
                             "default: platform pick)")
    args = parser.parse_args(argv)

    option_dict = dict(COPS_HTTP_OPTIONS, O11=args.observability)
    overrides = {"shard_policy": args.policy} if args.shards != 1 else {}
    server, _fw, _report = build_cops_http(
        args.root, options=option_dict, host=args.host, port=args.port,
        shards=args.shards, procs=args.procs,
        write_path=args.write_path,
        degradation=args.degradation, poller=args.poller, **overrides)
    server.start()
    if args.procs != 1:
        # Operator signal plane: SIGHUP = rolling restart, SIGTERM =
        # drain and stop, SIGUSR2 = flight-recorder dumps per worker.
        server.deployment.install_signals()
    shape = (f"{args.shards} shards ({args.policy})"
             if args.shards != 1 else "single reactor")
    if args.procs != 1:
        shape += f", {args.procs} worker processes"
    if args.write_path != "buffered":
        shape += f", {args.write_path} write path"
    if args.degradation:
        shape += ", graceful degradation"
    if args.poller:
        shape += f", {args.poller} poller"
    print(f"COPS-HTTP serving {args.root} on "
          f"{args.host}:{server.port} — {shape}", flush=True)
    try:
        while True:
            time.sleep(1.0)
            # A SIGTERM drain runs on its own thread; leave the
            # foreground loop once it has stopped the deployment.
            if (args.procs != 1
                    and not server.deployment.supervisor.running):
                break
    except KeyboardInterrupt:
        server.stop()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
