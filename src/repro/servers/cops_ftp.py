"""COPS-FTP: the paper's event-driven FTP server.

Table 3's story reproduced: the bulk of the FTP functionality is
*reused* from an existing library (:mod:`repro.ftp`, our stand-in for
Apache FTPServer), the framework is *generated* from the N-Server
template (Table 1, COPS-FTP column: synchronous completions, dynamic
thread allocation, idle-connection shutdown), and a small amount of
*added* code — this module — adapts the reused session machine onto the
event-driven framework.

Data connections use passive mode: PASV opens a one-shot data listener;
the actual byte transfer runs on a helper thread (data transfers are the
blocking operations the dynamic Event Processor pool absorbs, which is
why the paper's COPS-FTP selects O5=Dynamic).
"""

from __future__ import annotations

import socket
import tempfile
import threading
from typing import Optional

from repro.co2p3s.nserver import COPS_FTP_OPTIONS, NSERVER
from repro.co2p3s.template import load_generated_package
from repro.ftp import FtpSession, UserRegistry, VirtualFS
from repro.runtime import PENDING, ServerHooks

__all__ = ["CopsFtpHooks", "build_cops_ftp", "default_ftp_fs"]


def default_ftp_fs() -> VirtualFS:
    """A small default tree so an out-of-the-box server has content."""
    fs = VirtualFS()
    fs.makedirs("/pub")
    fs.write_file("/pub/README", b"COPS-FTP (repro) anonymous area.\n")
    return fs


class _DataChannel:
    """One-shot passive-mode data listener + transfer executor."""

    def __init__(self, host: str = "127.0.0.1", timeout: float = 5.0):
        self.listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self.listener.bind((host, 0))
        self.listener.listen(1)
        self.listener.settimeout(timeout)
        self.host, self.port = self.listener.getsockname()

    def run_transfer(self, action, on_done) -> None:
        """Accept the data connection and move the bytes (helper thread)."""
        ok = True
        try:
            data_sock, _ = self.listener.accept()
            try:
                if action.kind == "send":
                    data_sock.sendall(action.payload)
                else:
                    chunks = []
                    while True:
                        chunk = data_sock.recv(65536)
                        if not chunk:
                            break
                        chunks.append(chunk)
                    action.sink(b"".join(chunks))
            finally:
                data_sock.close()
        except OSError:
            ok = False
        finally:
            self.close()
            on_done(ok)

    def close(self) -> None:
        try:
            self.listener.close()
        except OSError:
            pass


class CopsFtpHooks(ServerHooks):
    """The added code of Table 3: adapts the reused FTP session machine
    to the generated event-driven framework."""

    def __init__(self, fs: Optional[VirtualFS] = None,
                 users: Optional[UserRegistry] = None,
                 data_host: str = "127.0.0.1"):
        self.fs = fs if fs is not None else default_ftp_fs()
        self.users = users if users is not None else UserRegistry()
        self.data_host = data_host

    # -- connection lifecycle ----------------------------------------------
    def on_connect(self, conn) -> None:
        conn.context["ftp"] = FtpSession(
            self.fs, self.users, on_pasv=lambda: self._open_pasv(conn))

    def on_close(self, conn) -> None:
        channel = conn.context.pop("ftp_data", None)
        if channel is not None:
            channel.close()
        session = conn.context.get("ftp")
        if session is not None and session.user is not None and not session.closed:
            session.users.session_closed(session.user)

    def server_greeting(self, conn) -> bytes:
        return conn.context["ftp"].greeting()

    def _open_pasv(self, conn):
        old = conn.context.get("ftp_data")
        if old is not None:
            old.close()
        channel = _DataChannel(host=self.data_host)
        conn.context["ftp_data"] = channel
        return channel.host, channel.port

    # -- framing: CRLF (tolerating bare LF) command lines --------------------
    def split_request(self, data: bytes):
        if b"\n" not in data:
            return None
        line, rest = data.split(b"\n", 1)
        return line + b"\n", rest

    # -- Decode Request ----------------------------------------------------------
    def decode(self, raw: bytes, conn) -> bytes:
        return raw

    # -- Handle Request ------------------------------------------------------------
    def handle(self, line: bytes, conn):
        session = conn.context["ftp"]
        result = session.handle_command(line)
        if result.transfer is not None:
            channel = conn.context.pop("ftp_data", None)
            if channel is None:
                # Data channel vanished between PASV and the transfer.
                from repro.ftp.replies import reply

                return reply(425)
            # Send the 150 intermediate reply *before* the transfer thread
            # can race in with the 226 completion; the closing reply then
            # arrives through the framework's pending-completion path so
            # control-connection replies stay ordered.
            conn.send_bytes(self.encode(result, conn))
            threading.Thread(
                target=channel.run_transfer,
                args=(result.transfer,
                      lambda ok: self._transfer_done(conn, session, ok)),
                daemon=True,
            ).start()
            return PENDING
        if result.close:
            conn.close_after_flush = True
        return result

    def _transfer_done(self, conn, session, ok: bool) -> None:
        if not conn.closed:
            conn.complete_request(session.transfer_complete(ok))

    # -- Encode Reply -----------------------------------------------------------------
    def encode(self, result, conn) -> bytes:
        if isinstance(result, (bytes, bytearray)):
            return bytes(result)
        return result.wire


def build_cops_ftp(
    fs: Optional[VirtualFS] = None,
    users: Optional[UserRegistry] = None,
    options: Optional[dict] = None,
    dest: Optional[str] = None,
    package: str = "cops_ftp_fw",
    host: str = "127.0.0.1",
    port: int = 0,
    **config_overrides,
):
    """Generate the COPS-FTP framework and return the assembled server.

    Returns ``(server, framework_module, generation_report)``.
    """
    opts = NSERVER.configure(options or COPS_FTP_OPTIONS)
    dest = dest or tempfile.mkdtemp(prefix="cops_ftp_")
    report = NSERVER.generate(opts, dest, package=package)
    fw = load_generated_package(dest, package)
    configuration = fw.ServerConfiguration(host=host, port=port,
                                           **config_overrides)
    server = fw.Server(CopsFtpHooks(fs=fs, users=users),
                       configuration=configuration)
    return server, fw, report
