"""The applications built from the N-Server template: COPS-HTTP,
COPS-FTP, and the trivial Time server."""

from repro.servers.cops_ftp import CopsFtpHooks, build_cops_ftp, default_ftp_fs
from repro.servers.cops_http import (
    CopsHttpHooks,
    PriorityByPeerHooks,
    build_cops_http,
)
from repro.servers.mail_server import (
    MAIL_SERVER_OPTIONS,
    MailServerHooks,
    build_mail_server,
)
from repro.servers.time_server import (
    TIME_SERVER_OPTIONS,
    TimeServerHooks,
    build_time_server,
)

__all__ = [
    "CopsFtpHooks",
    "CopsHttpHooks",
    "MAIL_SERVER_OPTIONS",
    "MailServerHooks",
    "PriorityByPeerHooks",
    "TIME_SERVER_OPTIONS",
    "TimeServerHooks",
    "build_cops_ftp",
    "build_cops_http",
    "build_mail_server",
    "build_time_server",
    "default_ftp_fs",
]
