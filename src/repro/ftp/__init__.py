"""FTP protocol library: replies, virtual filesystem, users, and the
control-connection session state machine.

Plays the role Table 3 assigns to the reused Apache FTPServer code base:
an existing FTP implementation that COPS-FTP (``repro.servers.cops_ftp``)
adapts onto the event-driven generated framework.
"""

from repro.ftp.auth import AuthError, User, UserRegistry
from repro.ftp.replies import REPLY_TEXT, multiline_reply, reply
from repro.ftp.session import FtpSession, SessionResult, TransferAction
from repro.ftp.threaded_server import ThreadedFtpServer
from repro.ftp.vfs import DirNode, FileNode, VfsError, VirtualFS

__all__ = [
    "ThreadedFtpServer",
    "AuthError",
    "DirNode",
    "FileNode",
    "FtpSession",
    "REPLY_TEXT",
    "SessionResult",
    "TransferAction",
    "User",
    "UserRegistry",
    "VfsError",
    "VirtualFS",
    "multiline_reply",
    "reply",
]
