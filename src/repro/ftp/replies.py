"""FTP reply codes (RFC 959) and reply formatting."""

from __future__ import annotations

__all__ = ["REPLY_TEXT", "reply", "multiline_reply"]

REPLY_TEXT = {
    125: "Data connection already open; transfer starting.",
    150: "File status okay; about to open data connection.",
    200: "Command okay.",
    202: "Command not implemented, superfluous at this site.",
    211: "System status.",
    213: "File status.",
    214: "Help message.",
    215: "UNIX Type: L8",
    220: "Service ready for new user.",
    221: "Service closing control connection.",
    226: "Closing data connection. Requested file action successful.",
    227: "Entering Passive Mode.",
    230: "User logged in, proceed.",
    250: "Requested file action okay, completed.",
    257: "Pathname created.",
    331: "User name okay, need password.",
    350: "Requested file action pending further information.",
    421: "Service not available, closing control connection.",
    425: "Can't open data connection.",
    426: "Connection closed; transfer aborted.",
    450: "Requested file action not taken.",
    500: "Syntax error, command unrecognized.",
    501: "Syntax error in parameters or arguments.",
    502: "Command not implemented.",
    503: "Bad sequence of commands.",
    530: "Not logged in.",
    550: "Requested action not taken.",
    553: "Requested action not taken. File name not allowed.",
}


def reply(code: int, text: str | None = None) -> bytes:
    """One-line reply: ``CODE text\\r\\n``."""
    body = text if text is not None else REPLY_TEXT.get(code, "")
    return f"{code} {body}\r\n".encode("latin-1")


def multiline_reply(code: int, lines: list) -> bytes:
    """RFC 959 multiline form: ``CODE-first ... CODE last``."""
    if not lines:
        return reply(code)
    if len(lines) == 1:
        return reply(code, lines[0])
    out = [f"{code}-{lines[0]}"]
    out.extend(f" {line}" for line in lines[1:-1])
    out.append(f"{code} {lines[-1]}")
    return ("\r\n".join(out) + "\r\n").encode("latin-1")
