"""FTP control-connection session state machine (RFC 959 subset).

Transport-agnostic: the session consumes one command line at a time and
returns a :class:`SessionResult` — reply bytes for the control
connection, an optional :class:`TransferAction` describing data-channel
work, and a close flag.  The surrounding server (event-driven COPS-FTP,
or a plain test driver) owns sockets; the session owns protocol state:
login, working directory, transfer mode, rename sequencing.

This package as a whole plays the role Table 3 assigns to the "reused"
Apache FTPServer code: an existing, self-contained FTP implementation
that COPS-FTP adapts to an event-driven architecture.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.ftp.auth import AuthError, User, UserRegistry
from repro.ftp.replies import multiline_reply, reply
from repro.ftp.vfs import VfsError, VirtualFS

__all__ = ["FtpSession", "SessionResult", "TransferAction"]

FEATURES = ["PASV", "SIZE", "UTF8"]


@dataclass
class TransferAction:
    """Data-channel work the driver must perform.

    ``kind`` is ``"send"`` (payload holds the bytes to ship: RETR file
    contents or LIST text) or ``"receive"`` (``sink`` consumes uploaded
    bytes when the client finishes).  After moving the data, the driver
    calls :meth:`FtpSession.transfer_complete` for the closing reply.
    """

    kind: str
    payload: bytes = b""
    sink: Optional[Callable[[bytes], None]] = None
    path: str = ""


@dataclass
class SessionResult:
    replies: List[bytes] = field(default_factory=list)
    transfer: Optional[TransferAction] = None
    close: bool = False

    @property
    def wire(self) -> bytes:
        return b"".join(self.replies)


class FtpSession:
    """Per-connection protocol state machine."""

    def __init__(
        self,
        fs: VirtualFS,
        users: UserRegistry,
        on_pasv: Optional[Callable[[], Tuple[str, int]]] = None,
    ):
        self.fs = fs
        self.users = users
        self.on_pasv = on_pasv
        self.user: Optional[User] = None
        self._pending_user: Optional[str] = None
        self.cwd = "/"
        self.type = "A"             # A = ASCII, I = binary
        self.passive = False
        self.active_target: Optional[Tuple[str, int]] = None
        self._rename_from: Optional[str] = None
        self.closed = False
        self.transfers = 0

    # -- helpers -----------------------------------------------------------
    def greeting(self) -> bytes:
        return reply(220, "COPS-FTP (repro) service ready.")

    @property
    def logged_in(self) -> bool:
        return self.user is not None

    def _resolve(self, arg: str) -> str:
        return self.fs.join(self.cwd, arg)

    def _require_login(self) -> Optional[SessionResult]:
        if not self.logged_in:
            return SessionResult([reply(530)])
        return None

    def _require_write(self, path: str) -> Optional[SessionResult]:
        denied = self._require_login()
        if denied:
            return denied
        if not self.user.writable:
            return SessionResult([reply(550, "Permission denied.")])
        home = self.fs.normalize(self.user.home)
        if home != "/" and not (path == home or path.startswith(home + "/")):
            return SessionResult([reply(550, "Permission denied.")])
        return None

    # -- entry point -------------------------------------------------------
    def handle_command(self, line: bytes) -> SessionResult:
        """Process one CRLF-terminated control-connection line."""
        if self.closed:
            return SessionResult([], close=True)
        try:
            text = line.decode("latin-1").rstrip("\r\n")
        except UnicodeDecodeError:  # pragma: no cover - latin-1 total
            return SessionResult([reply(500)])
        if not text.strip():
            return SessionResult([reply(500)])
        verb, _, arg = text.partition(" ")
        verb = verb.upper().strip()
        arg = arg.strip()
        handler = getattr(self, f"_cmd_{verb.lower()}", None)
        if handler is None:
            return SessionResult([reply(500, f"Command {verb!r} not understood.")])
        if verb != "RNTO" and self._rename_from is not None:
            self._rename_from = None  # RNFR must be immediately followed by RNTO
        return handler(arg)

    def transfer_complete(self, ok: bool = True) -> bytes:
        """Closing reply after the driver moved the data."""
        self.transfers += 1
        return reply(226) if ok else reply(426)

    # -- access / session commands ----------------------------------------------
    def _cmd_user(self, arg: str) -> SessionResult:
        if not arg:
            return SessionResult([reply(501, "Missing user name.")])
        self._pending_user = arg
        self.user = None
        return SessionResult([reply(331, f"Password required for {arg}.")])

    def _cmd_pass(self, arg: str) -> SessionResult:
        if self._pending_user is None:
            return SessionResult([reply(503, "Login with USER first.")])
        try:
            user = self.users.authenticate(self._pending_user, arg)
        except AuthError as exc:
            self._pending_user = None
            return SessionResult([reply(530, f"Login incorrect: {exc}.")])
        self.user = user
        self._pending_user = None
        self.cwd = self.fs.normalize(user.home)
        if not self.fs.is_dir(self.cwd):
            self.fs.makedirs(self.cwd)
        self.users.session_opened(user)
        return SessionResult([reply(230, f"User {user.name} logged in.")])

    def _cmd_quit(self, arg: str) -> SessionResult:
        self.closed = True
        if self.user is not None:
            self.users.session_closed(self.user)
        return SessionResult([reply(221)], close=True)

    def _cmd_noop(self, arg: str) -> SessionResult:
        return SessionResult([reply(200)])

    def _cmd_syst(self, arg: str) -> SessionResult:
        return SessionResult([reply(215)])

    def _cmd_feat(self, arg: str) -> SessionResult:
        return SessionResult([multiline_reply(211, ["Features:", *FEATURES, "End"])])

    def _cmd_help(self, arg: str) -> SessionResult:
        verbs = sorted(name[5:].upper() for name in dir(self)
                       if name.startswith("_cmd_"))
        return SessionResult([multiline_reply(214, ["Recognized commands:",
                                                    " ".join(verbs), "Done"])])

    def _cmd_type(self, arg: str) -> SessionResult:
        code = arg.upper().split(" ")[0] if arg else ""
        if code in ("A", "I"):
            self.type = code
            return SessionResult([reply(200, f"Type set to {code}.")])
        return SessionResult([reply(501, f"Unsupported type {arg!r}.")])

    def _cmd_mode(self, arg: str) -> SessionResult:
        if arg.upper() == "S":
            return SessionResult([reply(200)])
        return SessionResult([reply(502, "Only stream mode supported.")])

    def _cmd_stru(self, arg: str) -> SessionResult:
        if arg.upper() == "F":
            return SessionResult([reply(200)])
        return SessionResult([reply(502, "Only file structure supported.")])

    # -- directory commands --------------------------------------------------------
    def _cmd_pwd(self, arg: str) -> SessionResult:
        denied = self._require_login()
        if denied:
            return denied
        return SessionResult([reply(257, f'"{self.cwd}" is current directory.')])

    def _cmd_cwd(self, arg: str) -> SessionResult:
        denied = self._require_login()
        if denied:
            return denied
        target = self._resolve(arg or "/")
        if not self.fs.is_dir(target):
            return SessionResult([reply(550, f"{arg}: no such directory.")])
        self.cwd = target
        return SessionResult([reply(250, f"Directory changed to {target}.")])

    def _cmd_cdup(self, arg: str) -> SessionResult:
        return self._cmd_cwd("..")

    def _cmd_mkd(self, arg: str) -> SessionResult:
        if not arg:
            return SessionResult([reply(501)])
        target = self._resolve(arg)
        denied = self._require_write(target)
        if denied:
            return denied
        try:
            self.fs.mkdir(target)
        except VfsError as exc:
            return SessionResult([reply(550, str(exc))])
        return SessionResult([reply(257, f'"{target}" created.')])

    def _cmd_rmd(self, arg: str) -> SessionResult:
        if not arg:
            return SessionResult([reply(501)])
        target = self._resolve(arg)
        denied = self._require_write(target)
        if denied:
            return denied
        try:
            self.fs.rmdir(target)
        except VfsError as exc:
            return SessionResult([reply(550, str(exc))])
        return SessionResult([reply(250)])

    def _cmd_dele(self, arg: str) -> SessionResult:
        if not arg:
            return SessionResult([reply(501)])
        target = self._resolve(arg)
        denied = self._require_write(target)
        if denied:
            return denied
        try:
            self.fs.delete(target)
        except VfsError as exc:
            return SessionResult([reply(550, str(exc))])
        return SessionResult([reply(250)])

    def _cmd_rnfr(self, arg: str) -> SessionResult:
        if not arg:
            return SessionResult([reply(501)])
        denied = self._require_login()
        if denied:
            return denied
        target = self._resolve(arg)
        if not self.fs.exists(target):
            return SessionResult([reply(550, f"{arg}: not found.")])
        self._rename_from = target
        return SessionResult([reply(350, "Ready for RNTO.")])

    def _cmd_rnto(self, arg: str) -> SessionResult:
        if self._rename_from is None:
            return SessionResult([reply(503, "RNFR required first.")])
        if not arg:
            return SessionResult([reply(501)])
        src, self._rename_from = self._rename_from, None
        dst = self._resolve(arg)
        denied = self._require_write(dst)
        if denied:
            return denied
        try:
            self.fs.rename(src, dst)
        except VfsError as exc:
            return SessionResult([reply(553, str(exc))])
        return SessionResult([reply(250)])

    def _cmd_size(self, arg: str) -> SessionResult:
        denied = self._require_login()
        if denied:
            return denied
        try:
            return SessionResult([reply(213, str(self.fs.size(self._resolve(arg))))])
        except VfsError as exc:
            return SessionResult([reply(550, str(exc))])

    def _cmd_stat(self, arg: str) -> SessionResult:
        denied = self._require_login()
        if denied:
            return denied
        lines = [f"COPS-FTP status for {self.user.name}",
                 f"Working directory: {self.cwd}",
                 f"Transfer type: {self.type}",
                 "End of status"]
        return SessionResult([multiline_reply(211, lines)])

    # -- data channel setup -----------------------------------------------------------
    def _cmd_pasv(self, arg: str) -> SessionResult:
        denied = self._require_login()
        if denied:
            return denied
        if self.on_pasv is None:
            return SessionResult([reply(502, "Passive mode unavailable.")])
        host, port = self.on_pasv()
        self.passive = True
        self.active_target = None
        h = host.replace(".", ",")
        return SessionResult([reply(227, f"Entering Passive Mode "
                                         f"({h},{port // 256},{port % 256}).")])

    def _cmd_port(self, arg: str) -> SessionResult:
        denied = self._require_login()
        if denied:
            return denied
        parts = arg.split(",")
        if len(parts) != 6:
            return SessionResult([reply(501, "Malformed PORT.")])
        try:
            nums = [int(p) for p in parts]
            if not all(0 <= n <= 255 for n in nums):
                raise ValueError
        except ValueError:
            return SessionResult([reply(501, "Malformed PORT.")])
        host = ".".join(str(n) for n in nums[:4])
        port = nums[4] * 256 + nums[5]
        self.active_target = (host, port)
        self.passive = False
        return SessionResult([reply(200, "PORT command successful.")])

    def _data_ready(self) -> bool:
        return self.passive or self.active_target is not None

    # -- transfers --------------------------------------------------------------------
    def _cmd_list(self, arg: str) -> SessionResult:
        return self._listing(arg, long_format=True)

    def _cmd_nlst(self, arg: str) -> SessionResult:
        return self._listing(arg, long_format=False)

    def _listing(self, arg: str, long_format: bool) -> SessionResult:
        denied = self._require_login()
        if denied:
            return denied
        if not self._data_ready():
            return SessionResult([reply(425, "Use PASV or PORT first.")])
        target = self._resolve(arg) if arg else self.cwd
        try:
            if long_format:
                lines = self.fs.list_long(target)
            else:
                lines = self.fs.listdir(target)
        except VfsError as exc:
            return SessionResult([reply(550, str(exc))])
        payload = ("\r\n".join(lines) + ("\r\n" if lines else "")).encode("latin-1")
        return SessionResult(
            [reply(150, "Opening data connection for listing.")],
            transfer=TransferAction(kind="send", payload=payload, path=target),
        )

    def _cmd_retr(self, arg: str) -> SessionResult:
        denied = self._require_login()
        if denied:
            return denied
        if not arg:
            return SessionResult([reply(501)])
        if not self._data_ready():
            return SessionResult([reply(425, "Use PASV or PORT first.")])
        target = self._resolve(arg)
        try:
            data = self.fs.read_file(target)
        except VfsError as exc:
            return SessionResult([reply(550, str(exc))])
        return SessionResult(
            [reply(150, f"Opening data connection for {arg} "
                        f"({len(data)} bytes).")],
            transfer=TransferAction(kind="send", payload=data, path=target),
        )

    def _cmd_stor(self, arg: str) -> SessionResult:
        return self._store(arg, append=False)

    def _cmd_appe(self, arg: str) -> SessionResult:
        return self._store(arg, append=True)

    def _store(self, arg: str, append: bool) -> SessionResult:
        if not arg:
            return SessionResult([reply(501)])
        if not self._data_ready():
            return SessionResult([reply(425, "Use PASV or PORT first.")])
        target = self._resolve(arg)
        denied = self._require_write(target)
        if denied:
            return denied

        def sink(data: bytes, _target=target, _append=append) -> None:
            if _append:
                self.fs.append_file(_target, data)
            else:
                self.fs.write_file(_target, data)

        return SessionResult(
            [reply(150, f"Ready to receive {arg}.")],
            transfer=TransferAction(kind="receive", sink=sink, path=target),
        )

    def _cmd_abor(self, arg: str) -> SessionResult:
        return SessionResult([reply(226, "No transfer to abort.")])

    def _cmd_rest(self, arg: str) -> SessionResult:
        return SessionResult([reply(502, "Restart not supported.")])
