"""FTP user registry and authentication."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["User", "UserRegistry", "AuthError"]


class AuthError(Exception):
    """Login failure."""


@dataclass
class User:
    name: str
    password: Optional[str] = None     # None -> any password (anonymous)
    home: str = "/"
    writable: bool = True
    #: max concurrent sessions for this user (None = unlimited)
    max_sessions: Optional[int] = None


class UserRegistry:
    """User database plus live-session accounting."""

    def __init__(self, allow_anonymous: bool = True):
        self._users: Dict[str, User] = {}
        self._live: Dict[str, int] = {}
        if allow_anonymous:
            self.add(User(name="anonymous", password=None,
                          home="/pub", writable=False))

    def add(self, user: User) -> None:
        self._users[user.name.lower()] = user

    def remove(self, name: str) -> None:
        self._users.pop(name.lower(), None)

    def get(self, name: str) -> Optional[User]:
        return self._users.get(name.lower())

    def known(self, name: str) -> bool:
        return name.lower() in self._users

    def authenticate(self, name: str, password: str) -> User:
        """Return the user on success; raise :class:`AuthError` otherwise."""
        user = self.get(name)
        if user is None:
            raise AuthError(f"unknown user {name!r}")
        if user.password is not None and user.password != password:
            raise AuthError("bad password")
        if (user.max_sessions is not None
                and self._live.get(user.name, 0) >= user.max_sessions):
            raise AuthError("too many sessions")
        return user

    # -- session accounting -------------------------------------------------
    def session_opened(self, user: User) -> None:
        self._live[user.name] = self._live.get(user.name, 0) + 1

    def session_closed(self, user: User) -> None:
        n = self._live.get(user.name, 0)
        if n <= 1:
            self._live.pop(user.name, None)
        else:
            self._live[user.name] = n - 1

    def live_sessions(self, name: str) -> int:
        return self._live.get(name, 0)
