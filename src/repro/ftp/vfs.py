"""In-memory virtual filesystem for the FTP server.

Keeps FTP sessions hermetic: tests and examples never touch the real
disk.  Paths are POSIX-style; each node is a directory (dict of
children) or a file (bytes).
"""

from __future__ import annotations

import posixpath
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Union

__all__ = ["VfsError", "VirtualFS", "FileNode", "DirNode"]


class VfsError(Exception):
    """Filesystem operation failure with an FTP-friendly message."""


@dataclass
class FileNode:
    data: bytes = b""
    mtime: float = field(default_factory=time.time)

    @property
    def size(self) -> int:
        return len(self.data)


@dataclass
class DirNode:
    children: Dict[str, Union["DirNode", FileNode]] = field(default_factory=dict)
    mtime: float = field(default_factory=time.time)


class VirtualFS:
    """POSIX-path in-memory filesystem."""

    def __init__(self):
        self.root = DirNode()

    # -- path plumbing ---------------------------------------------------
    @staticmethod
    def normalize(path: str) -> str:
        """Absolute, ``..``-collapsed form of ``path``."""
        if not path.startswith("/"):
            path = "/" + path
        norm = posixpath.normpath(path)
        return "/" if norm in (".", "//") else norm

    @staticmethod
    def join(cwd: str, path: str) -> str:
        """Resolve ``path`` relative to ``cwd`` (absolute paths win)."""
        if path.startswith("/"):
            return VirtualFS.normalize(path)
        return VirtualFS.normalize(posixpath.join(cwd, path))

    def _walk(self, path: str) -> Union[DirNode, FileNode]:
        node: Union[DirNode, FileNode] = self.root
        for part in self.normalize(path).strip("/").split("/"):
            if not part:
                continue
            if not isinstance(node, DirNode) or part not in node.children:
                raise VfsError(f"no such file or directory: {path}")
            node = node.children[part]
        return node

    def _parent_of(self, path: str) -> tuple:
        norm = self.normalize(path)
        if norm == "/":
            raise VfsError("cannot operate on /")
        parent_path, name = posixpath.split(norm)
        parent = self._walk(parent_path)
        if not isinstance(parent, DirNode):
            raise VfsError(f"not a directory: {parent_path}")
        return parent, name

    # -- queries -----------------------------------------------------------
    def exists(self, path: str) -> bool:
        try:
            self._walk(path)
            return True
        except VfsError:
            return False

    def is_dir(self, path: str) -> bool:
        try:
            return isinstance(self._walk(path), DirNode)
        except VfsError:
            return False

    def is_file(self, path: str) -> bool:
        try:
            return isinstance(self._walk(path), FileNode)
        except VfsError:
            return False

    def size(self, path: str) -> int:
        node = self._walk(path)
        if not isinstance(node, FileNode):
            raise VfsError(f"not a regular file: {path}")
        return node.size

    def listdir(self, path: str) -> List[str]:
        node = self._walk(path)
        if not isinstance(node, DirNode):
            raise VfsError(f"not a directory: {path}")
        return sorted(node.children)

    def list_long(self, path: str) -> List[str]:
        """ls -l style lines for LIST."""
        node = self._walk(path)
        if isinstance(node, FileNode):
            name = posixpath.basename(self.normalize(path))
            return [_long_line(name, node)]
        return [_long_line(name, child)
                for name, child in sorted(node.children.items())]

    # -- mutations -----------------------------------------------------------
    def mkdir(self, path: str) -> None:
        parent, name = self._parent_of(path)
        if name in parent.children:
            raise VfsError(f"already exists: {path}")
        parent.children[name] = DirNode()

    def makedirs(self, path: str) -> None:
        norm = self.normalize(path)
        built = ""
        for part in norm.strip("/").split("/"):
            if not part:
                continue
            built += "/" + part
            if not self.exists(built):
                self.mkdir(built)

    def rmdir(self, path: str) -> None:
        parent, name = self._parent_of(path)
        node = parent.children.get(name)
        if not isinstance(node, DirNode):
            raise VfsError(f"not a directory: {path}")
        if node.children:
            raise VfsError(f"directory not empty: {path}")
        del parent.children[name]

    def write_file(self, path: str, data: bytes) -> None:
        parent, name = self._parent_of(path)
        existing = parent.children.get(name)
        if isinstance(existing, DirNode):
            raise VfsError(f"is a directory: {path}")
        parent.children[name] = FileNode(data=bytes(data))

    def append_file(self, path: str, data: bytes) -> None:
        if self.is_file(path):
            node = self._walk(path)
            node.data += bytes(data)
            node.mtime = time.time()
        else:
            self.write_file(path, data)

    def read_file(self, path: str) -> bytes:
        node = self._walk(path)
        if not isinstance(node, FileNode):
            raise VfsError(f"not a regular file: {path}")
        return node.data

    def delete(self, path: str) -> None:
        parent, name = self._parent_of(path)
        node = parent.children.get(name)
        if node is None:
            raise VfsError(f"no such file: {path}")
        if isinstance(node, DirNode):
            raise VfsError(f"is a directory: {path}")
        del parent.children[name]

    def rename(self, src: str, dst: str) -> None:
        src_parent, src_name = self._parent_of(src)
        if src_name not in src_parent.children:
            raise VfsError(f"no such file or directory: {src}")
        dst_parent, dst_name = self._parent_of(dst)
        if dst_name in dst_parent.children:
            raise VfsError(f"already exists: {dst}")
        dst_parent.children[dst_name] = src_parent.children.pop(src_name)

    def walk(self, path: str = "/") -> Iterator[str]:
        """Yield every path under ``path`` (depth-first)."""
        node = self._walk(path)
        base = self.normalize(path)
        yield base
        if isinstance(node, DirNode):
            for name in sorted(node.children):
                child_path = posixpath.join(base, name)
                yield from self.walk(child_path)


def _long_line(name: str, node: Union[DirNode, FileNode]) -> str:
    if isinstance(node, DirNode):
        mode, size = "drwxr-xr-x", 4096
    else:
        mode, size = "-rw-r--r--", node.size
    stamp = time.strftime("%b %d %H:%M", time.localtime(node.mtime))
    return f"{mode} 1 ftp ftp {size:>12d} {stamp} {name}"
