"""Thread-per-connection FTP server (the pre-adaptation architecture).

This is the conventional multiprogramming server the COPS-FTP exercise
starts from — the role Apache FTPServer's connection handling plays in
Table 3.  The event-driven COPS-FTP *replaces* this module's blocking
driver (Table 3's "removed code") while *reusing* the session machine,
VFS and user registry, and *adding* the thin adapter in
``repro.servers.cops_ftp``.

It is also a useful baseline on its own: same protocol behaviour, one
OS thread per control connection.
"""

from __future__ import annotations

import socket
import threading
from typing import Optional

from repro.ftp.auth import UserRegistry
from repro.ftp.session import FtpSession
from repro.ftp.vfs import VirtualFS

__all__ = ["ThreadedFtpServer"]


class ThreadedFtpServer:
    """Blocking, thread-per-connection FTP server."""

    def __init__(self, fs: Optional[VirtualFS] = None,
                 users: Optional[UserRegistry] = None,
                 host: str = "127.0.0.1", port: int = 0,
                 max_connections: int = 64):
        self.fs = fs if fs is not None else VirtualFS()
        self.users = users if users is not None else UserRegistry()
        self.host = host
        self._requested_port = port
        self.max_connections = max_connections
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._running = threading.Event()
        self._threads: list = []
        self.connections_served = 0

    @property
    def port(self) -> int:
        if self._listener is None:
            raise RuntimeError("server not started")
        return self._listener.getsockname()[1]

    # -- lifecycle -------------------------------------------------------
    def start(self) -> None:
        if self._running.is_set():
            return
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((self.host, self._requested_port))
        self._listener.listen(self.max_connections)
        self._listener.settimeout(0.2)
        self._running.set()
        self._accept_thread = threading.Thread(target=self._accept_loop,
                                               daemon=True,
                                               name="ftp-accept")
        self._accept_thread.start()

    def stop(self) -> None:
        if not self._running.is_set():
            return
        self._running.clear()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
        if self._listener is not None:
            self._listener.close()
        for t in list(self._threads):
            t.join(timeout=2.0)

    def __enter__(self) -> "ThreadedFtpServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- connection handling --------------------------------------------------
    def _accept_loop(self) -> None:
        while self._running.is_set():
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            if threading.active_count() > self.max_connections + 8:
                conn.close()  # crude connection cap
                continue
            t = threading.Thread(target=self._serve, args=(conn,),
                                 daemon=True, name="ftp-conn")
            self._threads.append(t)
            t.start()

    def _serve(self, conn: socket.socket) -> None:
        self.connections_served += 1
        pasv_listener: dict = {"sock": None}

        def open_pasv():
            if pasv_listener["sock"] is not None:
                pasv_listener["sock"].close()
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self.host, 0))
            listener.listen(1)
            listener.settimeout(5.0)
            pasv_listener["sock"] = listener
            return listener.getsockname()

        session = FtpSession(self.fs, self.users, on_pasv=open_pasv)
        conn.settimeout(30.0)
        try:
            conn.sendall(session.greeting())
            buf = b""
            while self._running.is_set():
                if b"\n" not in buf:
                    try:
                        chunk = conn.recv(4096)
                    except socket.timeout:
                        break
                    if not chunk:
                        break
                    buf += chunk
                    continue
                line, buf = buf.split(b"\n", 1)
                result = session.handle_command(line + b"\n")
                conn.sendall(result.wire)
                if result.transfer is not None:
                    ok = self._run_transfer(pasv_listener, result.transfer)
                    conn.sendall(session.transfer_complete(ok))
                if result.close:
                    break
        except OSError:
            pass
        finally:
            if pasv_listener["sock"] is not None:
                pasv_listener["sock"].close()
            if session.user is not None and not session.closed:
                self.users.session_closed(session.user)
            conn.close()
            me = threading.current_thread()
            if me in self._threads:
                self._threads.remove(me)

    def _run_transfer(self, pasv_listener: dict, action) -> bool:
        listener = pasv_listener.pop("sock", None)
        pasv_listener["sock"] = None
        if listener is None:
            return False
        try:
            data_sock, _ = listener.accept()
        except (socket.timeout, OSError):
            listener.close()
            return False
        try:
            if action.kind == "send":
                data_sock.sendall(action.payload)
            else:
                chunks = []
                while True:
                    chunk = data_sock.recv(65536)
                    if not chunk:
                        break
                    chunks.append(chunk)
                action.sink(b"".join(chunks))
            return True
        except OSError:
            return False
        finally:
            data_sock.close()
            listener.close()
