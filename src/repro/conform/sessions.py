"""Seeded, fault-injected client sessions for the conformance sweep.

A :class:`Session` is one connection's worth of client behaviour: an
ordered list of :class:`Step` actions (send bytes — whole, in odd
chunks, or trickled — or slam the connection shut with an RST).  The
generator is fully deterministic from its seed: path popularity comes
from the Zipf sampler the workload plane already uses, and client-side
perturbations (trickle, odd chunk boundaries, abrupt resets) are drawn
from a :class:`repro.faults.FaultSchedule`, so a failing session
replays bit-for-bit from ``(seed, index)``.

Two invariants keep replay deterministic against a real server:

* every session ends with a close-marked request (or an abrupt reset),
  so the checker reads to EOF instead of guessing quiescence;
* a bare-LF-framed request only ever appears as the *final* request —
  mixing bare-LF frames into a pipeline would make the implementation's
  CRLF-first framing depend on recv boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.faults import FaultSchedule, FaultSpec
from repro.workload.zipf import ZipfSampler

__all__ = ["Session", "Step", "directed_sessions", "generate_sessions",
           "request_bytes"]


@dataclass
class Step:
    """One client action on the wire."""

    kind: str                     # "send" | "reset"
    data: bytes = b""
    #: send one byte at a time with a small delay (slow-loris shape)
    trickle: bool = False

    def describe(self) -> str:
        if self.kind == "reset":
            return "reset"
        mode = "trickle" if self.trickle else "send"
        return f"{mode}[{len(self.data)}B] {self.data[:48]!r}"


@dataclass
class Session:
    """One connection's scripted client behaviour."""

    name: str
    steps: List[Step] = field(default_factory=list)
    #: judge only the parseable response prefix: set when the client's
    #: own behaviour (e.g. sending past a mid-upload rejection) makes a
    #: kernel RST race against buffered response bytes possible
    lenient: bool = False

    @property
    def payload(self) -> bytes:
        """Every byte the client offers, in order — the model's input."""
        return b"".join(s.data for s in self.steps if s.kind == "send")

    @property
    def resets(self) -> bool:
        return any(s.kind == "reset" for s in self.steps)

    def describe(self) -> str:
        lines = [f"session {self.name}:"]
        lines += [f"  {i}: {step.describe()}"
                  for i, step in enumerate(self.steps)]
        return "\n".join(lines)


def request_bytes(method: str = "GET", target: str = "/",
                  version: str = "HTTP/1.1",
                  headers: Optional[Sequence[tuple]] = None,
                  body: bytes = b"", close: bool = False,
                  host: Optional[str] = "conform",
                  bare_lf: bool = False) -> bytes:
    """Serialise one request; ``host=None`` omits the Host header."""
    eol = b"\n" if bare_lf else b"\r\n"
    lines = [f"{method} {target} {version}".encode("latin-1")]
    if host is not None:
        lines.append(b"Host: " + host.encode("latin-1"))
    for name, value in headers or ():
        lines.append(f"{name}: {value}".encode("latin-1"))
    if body:
        lines.append(b"Content-Length: " + str(len(body)).encode())
    if close:
        lines.append(b"Connection: close")
    return eol.join(lines) + eol + eol + body


def _get(target: str, close: bool = False, head: bool = False,
         version: str = "HTTP/1.1") -> bytes:
    keep10 = [] if close or version == "HTTP/1.1" else \
        [("Connection", "keep-alive")]
    return request_bytes("HEAD" if head else "GET", target,
                         version=version, headers=keep10, close=close)


#: request recipes that exercise the model's error surface; each is a
#: complete close-marked exchange, safe as the final request of any
#: session.  (name, bytes) — the name feeds the session ident.
def _malformed_menu() -> List[tuple]:
    return [
        ("garbage", b"<<<not-http>>>\r\n\r\n"),
        ("badversion", request_bytes("GET", "/", version="HTTP/2.0")),
        ("nohost", request_bytes("GET", "/index.html", host=None)),
        ("colonless",
         b"GET / HTTP/1.1\r\nHost: c\r\nBroken header line\r\n\r\n"),
        ("post", request_bytes("POST", "/index.html", body=b"a=1",
                               close=True)),
        ("brew", request_bytes("BREW", "/coffee", close=True)),
        ("badtarget", request_bytes("GET", "no-slash", close=True)),
        ("badcl",
         b"GET /index.html HTTP/1.1\r\nHost: c\r\n"
         b"Content-Length: 12abc\r\n\r\n"),
        ("pluscl",
         b"GET /index.html HTTP/1.1\r\nHost: c\r\n"
         b"Content-Length: +5\r\n\r\nhello"),
        ("conflictcl",
         b"GET /index.html HTTP/1.1\r\nHost: c\r\nContent-Length: 5\r\n"
         b"Content-Length: 6\r\n\r\nhello!"),
        ("hugecl",
         b"GET /index.html HTTP/1.1\r\nHost: c\r\n"
         b"Content-Length: 99999999999\r\n\r\n"),
        ("traversal", _get("/../../etc/passwd", close=True)),
        ("enctraversal", _get("/%2e%2e/%2e%2e/etc/passwd", close=True)),
        ("headmissing", _get("/no-such-file.html", close=True, head=True)),
        ("barelf",
         request_bytes("GET", "/", version="HTTP/1.0", bare_lf=True)),
        ("bighead", b"A" * (64 * 1024 + 512)),
    ]


def directed_sessions(paths: Sequence[str]) -> List[Session]:
    """The fixed session set every corner must pass: one session per
    error-surface recipe plus the canonical happy paths.  Coverage of
    the model's whole status surface never depends on the random
    draw."""
    existing = paths[0] if paths else "/index.html"
    sessions = [
        Session(name="d-ok", steps=[Step("send", _get(existing, close=True))]),
        Session(name="d-head-ok",
                steps=[Step("send", _get(existing, close=True, head=True))]),
        Session(name="d-root",
                steps=[Step("send", _get("/", close=True))]),
        Session(name="d-status",
                steps=[Step("send", _get("/server-status", close=True))]),
        Session(name="d-missing",
                steps=[Step("send", _get("/no-such-file.html", close=True))]),
        Session(name="d-pipeline",
                steps=[Step("send", _get(existing) + _get("/")
                       + _get(existing, close=True, head=True))]),
    ]
    sessions += [Session(name=f"d-{name}", steps=[Step("send", data)],
                         lenient=(name == "bighead"))
                 for name, data in _malformed_menu()]
    return sessions


def generate_sessions(seed: int, paths: Sequence[str], count: int,
                      malformed: bool = True,
                      zipf_alpha: float = 1.0) -> List[Session]:
    """``count`` deterministic random sessions over ``paths``.

    Roughly a third of the sessions end in a malformed exchange (when
    ``malformed``), a few abandon the connection with an RST, and the
    rest are well-formed GET/HEAD traffic in pipelined, chunked and
    trickled shapes.  Identical ``(seed, paths, count)`` always yields
    identical sessions.
    """
    import random

    rng = random.Random(seed)
    sampler = ZipfSampler(len(paths), alpha=zipf_alpha, seed=seed)
    # Client-side perturbations ride the same seeded fault machinery
    # the server-side plane uses: one decision stream per session.
    schedule = FaultSchedule(
        FaultSpec(send_reset=0.08, partial_write=0.25,
                  partial_write_bytes=7),
        seed=seed)
    menu = _malformed_menu()
    sessions: List[Session] = []
    for index in range(count):
        stream = schedule.next_stream("conform")
        pick = lambda: paths[sampler.sample()]  # noqa: E731
        n_requests = rng.randint(1, 4)
        requests = []
        for i in range(n_requests - 1):
            requests.append(_get(
                pick(), head=rng.random() < 0.25,
                version="HTTP/1.0" if rng.random() < 0.2 else "HTTP/1.1"))
        tags = ["ok"]
        if malformed and index % 3 == 1:
            name, final = menu[index % len(menu)]
            tags = [name]
            requests.append(final)
        else:
            requests.append(_get(pick(), close=True,
                                 head=rng.random() < 0.2))
        payload = b"".join(requests)

        decision = schedule.decide("send", stream)
        steps: List[Step]
        if decision == "reset":
            # keep a prefix, then slam the door: the server must
            # survive and the next session must still be served
            cut = rng.randint(1, max(1, len(payload) - 1))
            steps = [Step("send", payload[:cut]), Step("reset")]
            tags.append("reset")
        elif decision == "partial":
            # odd chunk boundaries across the whole payload
            steps = []
            rest = payload
            while rest:
                cut = min(len(rest), rng.randint(1, 23))
                steps.append(Step("send", rest[:cut]))
                rest = rest[cut:]
            tags.append("chunked")
        elif rng.random() < 0.15 and len(payload) < 512:
            steps = [Step("send", payload, trickle=True)]
            tags.append("trickle")
        elif len(requests) > 1 and rng.random() < 0.5:
            steps = [Step("send", r) for r in requests]
            tags.append("seq")
        else:
            steps = [Step("send", payload)]
            tags.append("pipelined")
        sessions.append(Session(
            name=f"s{index:03d}-{'-'.join(tags)}", steps=steps))
    return sessions
