"""Executable model of the COPS-HTTP wire behaviour.

A side-effect-free function from *what the client sent* (one
connection's request byte stream) plus a virtual filesystem to the
*set* of acceptable response streams, expressed as one
:class:`Expectation` per request with explicit equivalence rules.

The model is written independently of :mod:`repro.http` — it has its
own tiny parser — so a bug shared between the library and the servers
cannot hide from the differential checker.  Where the implementation's
behaviour is intentionally loose, the looseness is part of the model:

* header order, ``Date`` and ``Server`` values are never compared;
* under the ``shed`` freedom (an O17 build), any exchange may instead
  be answered with a well-formed 503 carrying ``Retry-After >= 1`` and
  ``Connection: close`` — after which the connection is done;
* under an active brownout response cap, a 200 body may be the exact
  cap-length prefix of the file (``Content-Length`` must agree);
* under the ``faults`` freedom (an O13 run with a fault plane
  installed), a response stream may be cut short at any point — the
  checker validates the parseable prefix and tolerates the rest.

Everything else — status codes, framing, body bytes, Content-Length
consistency, close semantics, HEAD bodilessness — is checked exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple
from urllib.parse import unquote

__all__ = [
    "Expectation",
    "Freedoms",
    "ModelOptions",
    "ModelVFS",
    "ParsedResponse",
    "Verdict",
    "expected_exchanges",
    "parse_one_response",
    "parse_responses",
]

#: mirror of the implementation's framing guard rails
MAX_HEAD_BYTES = 64 * 1024
MAX_BODY_BYTES = 16 * 1024 * 1024

SUPPORTED_METHODS = ("GET", "HEAD", "POST", "PUT", "DELETE", "OPTIONS",
                     "TRACE")
STATUS_PATH = "/server-status"
INDEX_FILE = "index.html"


@dataclass
class ModelOptions:
    """The option-matrix facts the model's behaviour depends on.

    Most options (threading shape, cache policy, shards, write path)
    are *transparent* — the whole point of the conformance plane is
    that they must not change wire behaviour.  Only the ones with an
    application surface appear here.
    """

    #: O11: /server-status exists (else it 404s like any missing file)
    observability: bool = False


@dataclass
class Freedoms:
    """Tolerated deviations from the canonical exchange, as data."""

    #: O17 build: 503 + Retry-After may replace any exchange
    shed: bool = False
    #: O17 brownout level (0 disables both stale serving and the cap)
    brownout_level: float = 0.0
    brownout_bound_threshold: float = 0.5
    brownout_max_response: int = 65536
    #: a fault plane is injecting: streams may be cut short anywhere
    faults: bool = False

    def response_cap(self) -> Optional[int]:
        """The brownout response-size cap, mirroring
        :class:`repro.runtime.degradation.BrownoutController`."""
        level = min(max(self.brownout_level, 0.0), 1.0)
        bound = self.brownout_bound_threshold
        if level < bound:
            return None
        frac = 1.0 if bound >= 1.0 else (level - bound) / (1.0 - bound)
        return max(int(self.brownout_max_response * (1.0 - 0.75 * frac)),
                   1024)


class ModelVFS:
    """The virtual filesystem the model resolves paths against.

    Maps absolute slash-paths (``"/index.html"``) to payload bytes.
    Resolution mirrors the served stack: percent-decoding happens in
    the request model, trailing-slash index rewriting in
    :func:`expected_exchanges`, and this class applies the lexical
    ``..`` containment rule — a path that climbs out of the root is
    unresolvable, exactly as the document-root loader refuses it.
    """

    def __init__(self, files: Dict[str, bytes]):
        self.files = {self._canonical(path): data
                      for path, data in files.items()}

    @staticmethod
    def _canonical(path: str) -> str:
        return "/" + "/".join(p for p in path.split("/") if p)

    def resolve(self, path: str) -> Optional[bytes]:
        """Payload for ``path``, or None (a 404: missing file, a
        directory, or a traversal that escapes the root)."""
        stack: List[str] = []
        for part in path.split("/"):
            if part in ("", "."):
                continue
            if part == "..":
                if not stack:
                    return None
                stack.pop()
                continue
            stack.append(part)
        return self.files.get("/" + "/".join(stack))


# ---------------------------------------------------------------------------
# request-side model: byte stream -> expectations


@dataclass
class Verdict:
    """One expectation judged against one real response."""

    outcome: str            # "ok" | "shed" | "mismatch"
    reason: Optional[str]   # human detail for mismatches
    closes: bool            # the connection is done after this exchange
    #: stable mismatch category — the last segment of a divergence ident
    kind: str = "ok"


@dataclass
class Expectation:
    """What the model owes for one request, plus its equivalence rules."""

    label: str                      # "GET /index.html" — stable ident part
    status: int
    closes: bool
    head_only: bool = False
    #: exact body bytes (pre-cap) for content responses; None = unchecked
    body: Optional[bytes] = None
    require_content_type: bool = False
    freedoms: Freedoms = field(default_factory=Freedoms)

    def _allowed_lengths(self) -> Optional[List[int]]:
        if self.body is None:
            return None
        allowed = [len(self.body)]
        cap = self.freedoms.response_cap()
        if cap is not None and len(self.body) > cap:
            allowed.append(cap)
        return allowed

    def check(self, resp: "ParsedResponse") -> Verdict:
        """Judge ``resp``; header order, Date and Server never matter
        because the comparison is on the parsed form."""
        freedoms = self.freedoms
        if freedoms.shed and resp.status == 503 and self.status != 503:
            retry = resp.header("Retry-After")
            if (retry is not None and retry.isdigit() and int(retry) >= 1
                    and resp.closes):
                return Verdict("shed", None, True)
            return Verdict(
                "mismatch",
                "shed 503 must carry Retry-After >= 1 and Connection: close",
                True, kind="shed-shape")
        if resp.status != self.status:
            return Verdict(
                "mismatch",
                f"status {resp.status}, model expects {self.status}",
                True, kind="status")
        if resp.content_length_conflict:
            return Verdict("mismatch",
                           "conflicting Content-Length values in response",
                           True, kind="cl-conflict")
        if self.require_content_type and resp.header("Content-Type") is None:
            return Verdict("mismatch", "200 without Content-Type", True,
                           kind="content-type")
        allowed = self._allowed_lengths()
        if allowed is not None:
            declared = resp.header("Content-Length")
            if declared is None or not declared.isdigit():
                return Verdict("mismatch",
                               f"unusable Content-Length {declared!r}", True,
                               kind="content-length")
            if int(declared) not in allowed:
                return Verdict(
                    "mismatch",
                    f"Content-Length {declared} not in allowed {allowed}",
                    True, kind="content-length")
            if not self.head_only and self.body is not None:
                if resp.body != self.body[:len(resp.body)]:
                    return Verdict("mismatch",
                                   "body differs from modelled payload",
                                   True, kind="body")
                if len(resp.body) not in allowed:
                    return Verdict(
                        "mismatch",
                        f"body length {len(resp.body)} not in {allowed}",
                        True, kind="body-length")
        if resp.closes and not self.closes:
            return Verdict("mismatch",
                           "connection close on a keep-alive exchange",
                           True, kind="close")
        return Verdict("ok", None, self.closes or resp.closes)


def _header_lines(head: bytes) -> List[bytes]:
    return head.replace(b"\r\n", b"\n").split(b"\n")


def _content_length_of(head: bytes) -> Tuple[Optional[int], Optional[str]]:
    """(length, error) for a request head under the strict rules:
    every Content-Length value must be pure digits, duplicates must
    agree.  ``error`` is "bad" or "conflict" when violated."""
    values: List[bytes] = []
    for line in _header_lines(head)[1:]:
        name, colon, value = line.partition(b":")
        if colon and name.strip().lower() == b"content-length":
            values.append(value.strip())
    if not values:
        return 0, None
    if any(not v.isdigit() for v in values):
        return None, "bad"
    numbers = {int(v) for v in values}
    if len(numbers) > 1:
        return None, "conflict"
    return numbers.pop(), None


def _split_model(data: bytes):
    """Mirror of the framing step.  Returns None (incomplete), an int
    status (framing error: the whole connection answers it and
    closes), or ``(request_bytes, remainder)``."""
    end = data.find(b"\r\n\r\n")
    if end == -1:
        end_lf = data.find(b"\n\n")
        if end_lf == -1:
            if len(data) > MAX_HEAD_BYTES:
                return 414
            return None
        head_end = end_lf + 2
    else:
        head_end = end + 4
    length, error = _content_length_of(data[:head_end])
    if error is not None:
        return 400
    if length > MAX_BODY_BYTES:
        return 413
    total = head_end + length
    if len(data) < total:
        return None
    return data[:total], data[total:]


def _keep_alive(version: str, connection: Optional[str]) -> bool:
    value = (connection or "").lower()
    if version == "HTTP/1.1":
        return value != "close"
    return value == "keep-alive"


def _error(label: str, status: int, closes: bool, freedoms: Freedoms,
           head_only: bool = False) -> Expectation:
    return Expectation(label=label, status=status, closes=closes,
                       head_only=head_only, freedoms=freedoms)


def _evaluate(req: bytes, vfs: ModelVFS, options: ModelOptions,
              freedoms: Freedoms) -> Expectation:
    """One complete request's bytes -> the owed Expectation."""
    sep = b"\r\n\r\n" if b"\r\n\r\n" in req else b"\n\n"
    head, _, _body = req.partition(sep)
    lines = _header_lines(head)
    first = lines[0].split()
    label = b" ".join(first[:2]).decode("latin-1", "replace") or "<empty>"
    if not lines[0].strip() or len(first) != 3:
        return _error(label, 400, True, freedoms)
    try:
        method = first[0].decode("ascii").upper()
        target = first[1].decode("ascii")
        version = first[2].decode("ascii").upper()
    except UnicodeDecodeError:
        return _error(label, 400, True, freedoms)
    headers: List[Tuple[str, str]] = []
    for line in lines[1:]:
        if not line.strip():
            continue
        name, colon, value = line.partition(b":")
        if not colon or not name.strip():
            return _error(label, 400, True, freedoms)
        headers.append((name.strip().decode("latin-1").lower(),
                        value.strip().decode("latin-1")))
    label = f"{method} {target}"
    head_only = method == "HEAD"

    def header(name: str) -> Optional[str]:
        for key, value in headers:
            if key == name:
                return value
        return None

    # protocol validation (mirrors HttpRequest.validate; all close)
    if method not in SUPPORTED_METHODS:
        return _error(label, 501, True, freedoms)
    if version not in ("HTTP/1.0", "HTTP/1.1"):
        return _error(label, 505, True, freedoms, head_only)
    if version == "HTTP/1.1" and header("host") is None:
        return _error(label, 400, True, freedoms, head_only)
    if not target.startswith("/") and target != "*":
        return _error(label, 400, True, freedoms, head_only)

    keep_alive = _keep_alive(version, header("connection"))
    if method not in ("GET", "HEAD"):
        # supported-but-unimplemented verb: 501 on a live connection
        return _error(label, 501, not keep_alive, freedoms)
    path = unquote(target.split("?", 1)[0])
    if path == STATUS_PATH:
        if not options.observability:
            return _error(label, 404, not keep_alive, freedoms, head_only)
        return Expectation(label=label, status=200, closes=not keep_alive,
                           head_only=head_only, require_content_type=True,
                           freedoms=freedoms)
    if path.endswith("/"):
        path += INDEX_FILE
    payload = vfs.resolve(path)
    if payload is None:
        return _error(label, 404, not keep_alive, freedoms, head_only)
    return Expectation(label=label, status=200, closes=not keep_alive,
                       head_only=head_only, body=payload,
                       require_content_type=True, freedoms=freedoms)


def expected_exchanges(stream: bytes, vfs: ModelVFS,
                       options: Optional[ModelOptions] = None,
                       freedoms: Optional[Freedoms] = None
                       ) -> List[Expectation]:
    """The model function: one connection's request bytes -> the
    ordered expectations the server owes.

    Generation stops at the first close-marked exchange (later
    pipelined requests *may* still be answered — the checker tolerates
    that tail but requires nothing of it) and at a trailing incomplete
    request (the model owes nothing for bytes that never framed)."""
    options = options or ModelOptions()
    freedoms = freedoms or Freedoms()
    expectations: List[Expectation] = []
    rest = stream
    while rest:
        split = _split_model(rest)
        if split is None:
            break
        if isinstance(split, int):
            expectations.append(
                _error("<framing>", split, True, freedoms))
            break
        req, rest = split
        expectation = _evaluate(req, vfs, options, freedoms)
        expectations.append(expectation)
        if expectation.closes:
            break
    return expectations


# ---------------------------------------------------------------------------
# response-side model: byte stream -> parsed responses


@dataclass
class ParsedResponse:
    """One wire response in parsed (order-insensitive) form."""

    version: str
    status: int
    headers: List[Tuple[str, str]]
    body: bytes
    content_length_conflict: bool = False

    def header(self, name: str) -> Optional[str]:
        lowered = name.lower()
        for key, value in self.headers:
            if key.lower() == lowered:
                return value
        return None

    @property
    def closes(self) -> bool:
        value = (self.header("Connection") or "").lower()
        if value == "close":
            return True
        return self.version == "HTTP/1.0" and value != "keep-alive"


def parse_one_response(data: bytes, head_only: bool = False):
    """Parse one response off the front of ``data``.

    Returns ``(ParsedResponse, remainder)``, None when the bytes are an
    incomplete prefix of a response, or an error string when they can
    never parse.  ``head_only`` responses declare a Content-Length but
    carry no body bytes."""
    end = data.find(b"\r\n\r\n")
    if end == -1:
        if len(data) > MAX_HEAD_BYTES:
            return "response head never terminates"
        return None
    head, rest = data[:end], data[end + 4:]
    lines = head.split(b"\r\n")
    status_parts = lines[0].split(None, 2)
    if len(status_parts) < 2:
        return f"unparseable status line {lines[0][:60]!r}"
    try:
        version = status_parts[0].decode("ascii")
        status = int(status_parts[1])
    except (UnicodeDecodeError, ValueError):
        return f"unparseable status line {lines[0][:60]!r}"
    if not version.startswith("HTTP/1."):
        return f"bad response version {version!r}"
    headers: List[Tuple[str, str]] = []
    for line in lines[1:]:
        name, colon, value = line.partition(b":")
        if not colon or not name.strip():
            return f"unparseable response header {line[:60]!r}"
        headers.append((name.strip().decode("latin-1"),
                        value.strip().decode("latin-1")))
    lengths = {value for key, value in headers
               if key.lower() == "content-length"}
    conflict = len(lengths) > 1
    declared = 0
    if lengths and not conflict:
        value = lengths.pop()
        if not value.isdigit():
            return f"non-numeric Content-Length {value!r}"
        declared = int(value)
    body = b""
    if not head_only and not conflict:
        if len(rest) < declared:
            return None
        body, rest = rest[:declared], rest[declared:]
    return ParsedResponse(version=version, status=status, headers=headers,
                          body=body,
                          content_length_conflict=conflict), rest


def parse_responses(stream: bytes, head_flags: List[bool]):
    """Parse a whole connection's response bytes in lockstep with the
    per-exchange ``head_flags``.  Returns ``(responses, remainder,
    error)`` where ``remainder`` holds unconsumed bytes and ``error``
    a parse-failure description (None when the stream is clean)."""
    responses: List[ParsedResponse] = []
    rest = stream
    for head_only in head_flags:
        if not rest:
            break
        parsed = parse_one_response(rest, head_only=head_only)
        if parsed is None:
            return responses, rest, None
        if isinstance(parsed, str):
            return responses, rest, parsed
        resp, rest = parsed
        responses.append(resp)
    return responses, rest, None
