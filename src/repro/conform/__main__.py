"""``python -m repro.conform`` — the conformance sweep CLI.

Replays the seeded session set (directed error-surface sessions plus
random Zipf traffic) against every option-matrix corner and judges the
response streams against the executable model.  Divergences suppressed
in ``conform-baseline.toml`` are *explained*; anything else fails the
run, and the first unexplained divergence's session is shrunk to a
1-minimal reproducer and printed.

* ``--corners smoke`` (default): the PR gate corner set.
* ``--corners full``: adds the combination corners and quadruples the
  random session count — allowed to be slower, runs on main.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import tempfile
from typing import List, Optional

from repro.lint.baseline import Baseline, find_baseline, load_baseline

from repro.conform.checker import (
    DEFAULT_FILES,
    DEFAULT_PATHS,
    Corner,
    Divergence,
    _build_corner_server,
    check_session,
    corner_matrix,
    replay_session,
    run_corner,
    shrink_session,
)
from repro.conform.model import ModelVFS
from repro.conform.sessions import Session, directed_sessions, \
    generate_sessions

CONFORM_BASELINE = "conform-baseline.toml"


def _resolve_baseline(args) -> Optional[Baseline]:
    if args.no_baseline:
        return None
    if args.baseline:
        return load_baseline(args.baseline)
    return find_baseline(name=CONFORM_BASELINE)


def _apply_baseline(divergences: List[Divergence],
                    baseline: Optional[Baseline]) -> None:
    if baseline is None:
        return
    for divergence in divergences:
        divergence.suppressed = baseline.reason_for(divergence.ident)


def _shrink_and_describe(corner: Corner, divergence: Divergence,
                         sessions: List[Session], workdir: str) -> str:
    """Shrink the failing session to a 1-minimal reproducer against a
    fresh server for the same corner (fresh package name, so the
    original's generated module is left alone)."""
    session = next((s for s in sessions if s.name == divergence.session),
                   None)
    if session is None:
        return "(session not in the replayed set; no shrink)"
    shrink_corner = dataclasses.replace(corner, name=f"{corner.name}-shrink")
    vfs = ModelVFS(DEFAULT_FILES)
    server, _plane = _build_corner_server(
        shrink_corner, tempfile.mkdtemp(prefix="conform_shrink_"),
        DEFAULT_FILES)
    server.start()
    try:
        def failing(candidate: Session) -> bool:
            stream = replay_session("127.0.0.1", server.port, candidate)
            found = check_session(candidate, stream, vfs, corner.model,
                                  corner.freedoms, corner.name)
            return any(d.kind == divergence.kind for d in found)

        minimal = shrink_session(session, failing)
    finally:
        server.stop()
    return minimal.describe()


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.conform",
        description="model-based conformance sweep across the "
                    "N-Server option matrix")
    parser.add_argument("--corners", choices=("smoke", "full"),
                        default="smoke",
                        help="corner set: smoke = the PR gate (default)")
    parser.add_argument("--corner", action="append", dest="only",
                        metavar="NAME",
                        help="run only the named corner(s)")
    parser.add_argument("--seed", type=int, default=2005,
                        help="session-generator seed (default 2005)")
    parser.add_argument("--sessions", type=int, default=None,
                        help="random sessions per corner on top of the "
                             "directed set (default 12 smoke / 48 full)")
    parser.add_argument("--baseline",
                        help=f"explicit {CONFORM_BASELINE} path")
    parser.add_argument("--no-baseline", action="store_true",
                        help="report every divergence, suppressing nothing")
    parser.add_argument("--no-shrink", action="store_true",
                        help="skip shrinking the first unexplained failure")
    parser.add_argument("--verbose", "-v", action="store_true",
                        help="list suppressed divergences and corner detail")
    parser.add_argument("--poller", default=None,
                        choices=("select", "epoll"),
                        help="pin the readiness backend (template option "
                             "O18) for every corner; default: each "
                             "corner's own options")
    args = parser.parse_args(argv)

    if args.poller is not None:
        # Pin the runtime default too: an O18=select build emits no
        # backend choice at all and would otherwise take the platform
        # pick, defeating a --poller select oracle run on Linux.
        import os
        os.environ["REPRO_POLLER"] = args.poller

    baseline = _resolve_baseline(args)
    corners = corner_matrix(args.corners)
    if args.only:
        corners = [c for c in corners if c.name in set(args.only)]
        if not corners:
            parser.error(f"no corner named {args.only}")
    count = args.sessions if args.sessions is not None else (
        48 if args.corners == "full" else 12)
    sessions = directed_sessions(DEFAULT_PATHS) + generate_sessions(
        args.seed, DEFAULT_PATHS, count)

    backend = f", {args.poller} poller" if args.poller else ""
    print(f"conformance sweep: {len(corners)} corner(s), "
          f"{len(sessions)} session(s), seed {args.seed}{backend}")
    unexplained: List[Divergence] = []
    explained = 0
    first_failure = None
    for corner in corners:
        result = run_corner(corner, sessions, poller=args.poller)
        _apply_baseline(result.divergences, baseline)
        live = [d for d in result.divergences if d.suppressed is None]
        quiet = [d for d in result.divergences if d.suppressed is not None]
        explained += len(quiet)
        unexplained.extend(live)
        status = "ok" if not live else f"{len(live)} DIVERGENT"
        print(f"  {corner.name:<18} {result.exchanges:>4} exchanges  "
              f"{status}")
        if args.verbose:
            print(f"      {corner.description}")
            for divergence in quiet:
                print(f"      suppressed {divergence.ident}: "
                      f"{divergence.suppressed}")
        for divergence in live:
            print(f"      {divergence.ident}")
            print(f"        {divergence.detail}")
            if first_failure is None:
                first_failure = (corner, divergence)

    print(f"\n{len(unexplained)} unexplained divergence(s), "
          f"{explained} explained by "
          f"{baseline.path if baseline else 'no baseline'}")
    if first_failure is not None and not args.no_shrink:
        corner, divergence = first_failure
        print(f"\nshrinking {divergence.session} ({divergence.kind}) "
              f"on corner {corner.name}:")
        print(_shrink_and_describe(corner, divergence, sessions,
                                   tempfile.gettempdir()))
    return 1 if unexplained else 0


if __name__ == "__main__":
    sys.exit(main())
