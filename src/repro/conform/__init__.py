"""Model-based conformance plane (ROADMAP: "model-based conformance
testing").

The paper's claim is that every option-matrix corner of the generated
N-Server behaves correctly by construction.  The lint plane (PR 6)
audits *code shape*; this plane checks *wire semantics*: an executable
model of the COPS-HTTP protocol behaviour (:mod:`repro.conform.model`)
is replayed differentially against real generated servers across a
sweep of option corners (:mod:`repro.conform.checker`), driven by
seeded, fault-injected client sessions
(:mod:`repro.conform.sessions`).

The model is deliberately *loose* where the spec is loose: tolerated
freedoms (header order, Date/Server values, 503 + ``Retry-After`` under
shed, truncated-but-consistent bodies under brownout, cut-short streams
under injected faults) are explicit equivalence rules, not byte
equality.  Divergences carry stable idents and can be justified in
``conform-baseline.toml`` — the same suppress-with-reason workflow as
the lint plane.  ``python -m repro.conform`` runs the sweep.
"""

from repro.conform.model import (
    Expectation,
    Freedoms,
    ModelOptions,
    ModelVFS,
    ParsedResponse,
    expected_exchanges,
    parse_responses,
)
from repro.conform.sessions import (
    Session,
    Step,
    directed_sessions,
    generate_sessions,
)
from repro.conform.checker import (
    Corner,
    Divergence,
    check_session,
    corner_matrix,
    run_corner,
    shrink_session,
)

__all__ = [
    "Corner",
    "Divergence",
    "Expectation",
    "Freedoms",
    "ModelOptions",
    "ModelVFS",
    "ParsedResponse",
    "Session",
    "Step",
    "check_session",
    "corner_matrix",
    "directed_sessions",
    "expected_exchanges",
    "generate_sessions",
    "parse_responses",
    "run_corner",
    "shrink_session",
]
