"""Differential conformance checker: model vs generated servers.

For each option-matrix :class:`Corner` the checker generates a real
COPS-HTTP framework (exactly as an application would), starts it on an
ephemeral port, replays seeded client sessions against it, and judges
every captured response stream against the executable model.  A
disagreement becomes a :class:`Divergence` with a stable ident that
``conform-baseline.toml`` can suppress with a justification; anything
unsuppressed fails the sweep.

Failing sessions shrink: :func:`shrink_session` re-runs a failing
session with one unit removed at a time (units are request frames, not
raw steps) until it is 1-minimal, so the reproducer that lands in a bug
report is the smallest client behaviour that still diverges.
"""

from __future__ import annotations

import os
import select
import socket
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.conform import model as conform_model
from repro.conform.model import (
    Expectation,
    Freedoms,
    ModelOptions,
    ModelVFS,
    expected_exchanges,
    parse_one_response,
)
from repro.conform.sessions import (
    Session,
    Step,
    directed_sessions,
    generate_sessions,
)
from repro.faults import FaultPlane, FaultSpec, abrupt_reset, trickle_send

__all__ = [
    "Corner",
    "CornerResult",
    "Divergence",
    "DEFAULT_FILES",
    "DEFAULT_PATHS",
    "check_session",
    "corner_matrix",
    "replay_session",
    "run_corner",
    "shrink_session",
]


# ---------------------------------------------------------------------------
# the shared virtual filesystem


def _pattern(n: int, tag: bytes) -> bytes:
    unit = tag + b"-0123456789abcdef\n"
    return (unit * (n // len(unit) + 1))[:n]


#: the document tree every corner serves; the model resolves against
#: the same mapping, so content disagreements are real divergences
DEFAULT_FILES: Dict[str, bytes] = {
    "/index.html": b"<html><body>conform index</body></html>\n",
    "/a.html": b"<html><body>page a</body></html>\n",
    "/b.html": _pattern(1900, b"pageB"),
    "/data.txt": _pattern(1200, b"data"),
    "/assets/logo.png": bytes(range(256)) * 3,
    "/sub/index.html": b"<html><body>sub index</body></html>\n",
    "/big.bin": _pattern(6000, b"big"),
}

#: request targets in Zipf popularity order (note ``/sub/`` exercises
#: the trailing-slash index rewrite on every corner)
DEFAULT_PATHS = ["/index.html", "/a.html", "/data.txt", "/sub/",
                 "/assets/logo.png", "/b.html", "/big.bin",
                 "/no-such-file.html"]


def materialise(files: Dict[str, bytes], root: str) -> None:
    """Write the virtual tree to a real document root."""
    for path, data in files.items():
        full = os.path.join(root, path.lstrip("/"))
        os.makedirs(os.path.dirname(full), exist_ok=True)
        with open(full, "wb") as fh:
            fh.write(data)


# ---------------------------------------------------------------------------
# corners


@dataclass
class Corner:
    """One option-matrix point the sweep checks."""

    name: str
    description: str
    #: template options (None = the COPS-HTTP defaults)
    options: Optional[dict] = None
    #: extra ``build_cops_http`` keyword arguments (shards=, write_path=,
    #: degradation=)
    build: dict = field(default_factory=dict)
    #: ServerConfiguration overrides
    config: dict = field(default_factory=dict)
    model: ModelOptions = field(default_factory=ModelOptions)
    freedoms: Freedoms = field(default_factory=Freedoms)
    #: install a fault plane with this spec before start (O13 corners)
    fault_spec: Optional[FaultSpec] = None
    fault_seed: int = 7
    #: set the O17 brownout to this level once the server is built
    brownout_level: Optional[float] = None
    #: serialise session replay (admission-stateful corners)
    sequential: bool = False
    smoke: bool = True


def corner_matrix(which: str = "smoke") -> List[Corner]:
    """The option corners the sweep replays against.

    ``smoke`` is the PR gate (every corner marked smoke); ``full`` adds
    the combination corners.  Import here, not at module top: the
    checker is importable without triggering framework generation
    machinery.
    """
    from repro.co2p3s.nserver import (
        COPS_HTTP_DEGRADATION_OPTIONS,
        COPS_HTTP_OBSERVABILITY_OPTIONS,
        COPS_HTTP_OPTIONS,
        COPS_HTTP_RESILIENCE_OPTIONS,
    )

    fault_spec = FaultSpec(
        recv_reset=0.04, recv_eagain=0.1, partial_read=0.25,
        partial_read_bytes=5,
        send_reset=0.04, send_eagain=0.1, partial_write=0.2,
        partial_write_bytes=9,
        disk_error=0.12)
    observ = ModelOptions(observability=True)
    shed = Freedoms(shed=True)
    corners = [
        Corner("base", "paper defaults (Table 1 COPS-HTTP column)"),
        Corner("obs", "O11 observability: /server-status exists",
               options=dict(COPS_HTTP_OBSERVABILITY_OPTIONS), model=observ),
        Corner("resilience", "O11+O13 supervision and deadlines",
               options=dict(COPS_HTTP_RESILIENCE_OPTIONS), model=observ),
        Corner("overload", "O9 accept-postpone overload control",
               options=dict(COPS_HTTP_OPTIONS, O9=True)),
        Corner("sharded", "O14=4 reactor shards behind one accept plane",
               build={"shards": 4}),
        Corner("procs", "O16=2 worker processes on one SO_REUSEPORT "
               "socket; each must be conversation-identical to the "
               "single-process build", build={"procs": 2}),
        Corner("zerocopy", "O15 scatter-gather write path",
               build={"write_path": "zerocopy"}),
        Corner("degradation", "O9+O11+O17 graceful degradation, quiet",
               options=dict(COPS_HTTP_DEGRADATION_OPTIONS),
               build={"degradation": True}, model=observ, freedoms=shed),
        Corner("shed", "O17 with a one-token client budget: every "
               "connection after the first answers the canned 503",
               options=dict(COPS_HTTP_DEGRADATION_OPTIONS),
               build={"degradation": True},
               config={"shed_rate": 0.001, "shed_burst": 1.0},
               model=observ, freedoms=shed, sequential=True),
        Corner("brownout", "O17 brownout at level 0.6: stale serving on, "
               "response cap engaged",
               options=dict(COPS_HTTP_DEGRADATION_OPTIONS),
               build={"degradation": True},
               config={"brownout_max_response": 2048},
               model=observ,
               freedoms=Freedoms(shed=True, brownout_level=0.6,
                                 brownout_max_response=2048),
               brownout_level=0.6, sequential=True),
        Corner("faulty", "O13 under a seeded socket+disk fault schedule",
               options=dict(COPS_HTTP_RESILIENCE_OPTIONS), model=observ,
               freedoms=Freedoms(faults=True), fault_spec=fault_spec),
    ]
    if which == "full":
        corners += [
            Corner("sharded-zerocopy", "O14=4 + O15 combined",
                   build={"shards": 4, "write_path": "zerocopy"},
                   smoke=False),
            Corner("degraded-sharded", "O17 across O14=2 shards",
                   options=dict(COPS_HTTP_DEGRADATION_OPTIONS),
                   build={"degradation": True, "shards": 2},
                   model=observ, freedoms=shed, smoke=False),
            Corner("brownout-max", "O17 brownout saturated (level 1.0)",
                   options=dict(COPS_HTTP_DEGRADATION_OPTIONS),
                   build={"degradation": True},
                   config={"brownout_max_response": 2048},
                   model=observ,
                   freedoms=Freedoms(shed=True, brownout_level=1.0,
                                     brownout_max_response=2048),
                   brownout_level=1.0, sequential=True, smoke=False),
            Corner("faulty-sharded", "O13 faults across O14=2 shards",
                   options=dict(COPS_HTTP_RESILIENCE_OPTIONS),
                   build={"shards": 2}, model=observ,
                   freedoms=Freedoms(faults=True), fault_spec=fault_spec,
                   smoke=False),
        ]
    return corners


# ---------------------------------------------------------------------------
# replay


class _PeerClosed(Exception):
    pass


def replay_session(host: str, port: int, session: Session,
                   idle_timeout: float = 1.5,
                   deadline: float = 15.0) -> bytes:
    """Run one session against a live server; returns the captured
    response byte stream (empty on connect failure or reset)."""
    try:
        sock = socket.create_connection((host, port), timeout=5.0)
    except OSError:
        return b""
    collected = bytearray()

    def drain_ready() -> None:
        # opportunistic read between sends: a server that answers and
        # closes mid-upload (413/414) would otherwise race an RST past
        # the response bytes still in our receive buffer
        while True:
            ready, _, _ = select.select([sock], [], [], 0)
            if not ready:
                return
            got = sock.recv(65536)
            if not got:
                raise _PeerClosed
            collected.extend(got)

    try:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        for step in session.steps:
            if step.kind == "reset":
                abrupt_reset(sock)
                return bytes(collected)
            try:
                if step.trickle:
                    trickle_send(sock, step.data, chunk=16, delay=0.002)
                else:
                    for off in range(0, len(step.data), 4096):
                        sock.sendall(step.data[off:off + 4096])
                        drain_ready()
            except (_PeerClosed, OSError):
                break
        end = time.monotonic() + deadline
        sock.settimeout(idle_timeout)
        while time.monotonic() < end:
            try:
                got = sock.recv(65536)
            except socket.timeout:
                break
            except OSError:
                break
            if not got:
                break
            collected += got
    finally:
        try:
            sock.close()
        except OSError:
            pass
    return bytes(collected)


# ---------------------------------------------------------------------------
# judging


@dataclass
class Divergence:
    """One disagreement between the model and a real server."""

    ident: str
    corner: str
    session: str
    kind: str
    detail: str
    #: justification from conform-baseline.toml, when suppressed
    suppressed: Optional[str] = None

    @classmethod
    def build(cls, corner: str, session: str, label: str, kind: str,
              detail: str) -> "Divergence":
        return cls(ident=f"conform:{corner}:{session}:{label}:{kind}",
                   corner=corner, session=session, kind=kind, detail=detail)


def check_session(session: Session, stream: bytes, vfs: ModelVFS,
                  options: ModelOptions, freedoms: Freedoms,
                  corner_name: str = "corner") -> List[Divergence]:
    """Judge one captured response ``stream`` against the model.

    Reset sessions are survival-only (the client tore the connection
    down without reading).  Under the ``faults`` freedom — or a
    session marked lenient — the parseable prefix is judged strictly
    and the first anomaly ends checking without a divergence."""
    if session.resets:
        return []
    lenient = freedoms.faults or getattr(session, "lenient", False)
    expectations = expected_exchanges(session.payload, vfs, options,
                                      freedoms)
    divergences: List[Divergence] = []
    rest = stream
    closed = False
    for expectation in expectations:
        parsed = parse_one_response(rest, head_only=expectation.head_only)
        if parsed is None:
            if lenient or closed:
                return divergences
            divergences.append(Divergence.build(
                corner_name, session.name, expectation.label,
                "missing-response",
                f"stream ended with {len(rest)} unparseable trailing "
                f"byte(s): {rest[:60]!r}"))
            return divergences
        if isinstance(parsed, str):
            if lenient:
                return divergences
            divergences.append(Divergence.build(
                corner_name, session.name, expectation.label,
                "unparseable-response", parsed))
            return divergences
        resp, rest = parsed
        if expectation.head_only and freedoms.shed and resp.status == 503 \
                and rest and not rest.startswith(b"HTTP/1."):
            # The accept-level canned rejection knows nothing about the
            # request it answers: its 503 carries a body even when that
            # request was a HEAD.  Consume the declared length before
            # judging the rest of the stream.
            declared = resp.header("Content-Length") or ""
            if declared.isdigit() and len(rest) >= int(declared):
                rest = rest[int(declared):]
        if expectation.head_only and rest and \
                not rest.startswith(b"HTTP/1."):
            if lenient:
                return divergences
            divergences.append(Divergence.build(
                corner_name, session.name, expectation.label,
                "head-carries-body",
                f"bytes after a HEAD response: {rest[:60]!r}"))
            return divergences
        verdict = expectation.check(resp)
        if verdict.outcome == "mismatch":
            if lenient:
                return divergences
            divergences.append(Divergence.build(
                corner_name, session.name, expectation.label,
                verdict.kind, verdict.reason or verdict.kind))
            return divergences
        if verdict.outcome == "shed" or verdict.closes:
            # whole-connection shed or a close-marked exchange: later
            # pipelined responses are a tolerated tail
            closed = True
            break
    if rest and not closed and not lenient:
        divergences.append(Divergence.build(
            corner_name, session.name, "<tail>", "extra-bytes",
            f"{len(rest)} byte(s) beyond the modelled exchanges: "
            f"{rest[:60]!r}"))
    return divergences


# ---------------------------------------------------------------------------
# driving a corner


@dataclass
class CornerResult:
    corner: Corner
    sessions: int = 0
    exchanges: int = 0
    divergences: List[Divergence] = field(default_factory=list)
    #: the server still answered after the whole session set
    survived: bool = True

    @property
    def clean(self) -> bool:
        return not self.divergences and self.survived


def _build_corner_server(corner: Corner, workdir: str,
                         files: Dict[str, bytes],
                         poller: Optional[str] = None):
    from repro.servers.cops_http import build_cops_http

    docroot = os.path.join(workdir, "docroot")
    if not os.path.isdir(docroot):
        os.makedirs(docroot)
        materialise(files, docroot)
    dest = os.path.join(workdir, f"fw_{corner.name.replace('-', '_')}")
    package = f"conform_{corner.name.replace('-', '_')}_fw"
    plane = (FaultPlane(corner.fault_spec, seed=corner.fault_seed)
             if corner.fault_spec is not None else None)
    server, fw, _report = build_cops_http(
        docroot, options=corner.options, dest=dest, package=package,
        poller=poller, **corner.build, **corner.config)
    if plane is not None:
        plane.install(server)
    if corner.brownout_level is not None:
        server.reactor.degradation.brownout.set_level(corner.brownout_level)
    return server, plane


def _probe_alive(host: str, port: int) -> bool:
    probe = Session(name="probe", steps=[Step(
        "send", b"GET /index.html HTTP/1.1\r\nHost: probe\r\n"
                b"Connection: close\r\n\r\n")])
    for _ in range(5):
        if replay_session(host, port, probe, idle_timeout=0.5):
            return True
        time.sleep(0.05)
    return False


def run_corner(corner: Corner, sessions: Sequence[Session],
               files: Optional[Dict[str, bytes]] = None,
               workdir: Optional[str] = None,
               concurrency: int = 4,
               poller: Optional[str] = None) -> CornerResult:
    """Replay ``sessions`` against a freshly generated server for
    ``corner`` and judge every stream against the model.

    ``poller`` pins the readiness backend (template option O18) for the
    corner's generated framework; ``None`` keeps the corner's own
    options (and the runtime's platform pick) untouched.
    """
    files = files if files is not None else DEFAULT_FILES
    workdir = workdir or tempfile.mkdtemp(prefix=f"conform_{corner.name}_")
    vfs = ModelVFS(files)
    result = CornerResult(corner=corner, sessions=len(sessions))
    server, _plane = _build_corner_server(corner, workdir, files,
                                          poller=poller)
    server.start()
    try:
        host, port = "127.0.0.1", server.port
        if corner.sequential or concurrency <= 1:
            streams = [replay_session(host, port, s) for s in sessions]
        else:
            with ThreadPoolExecutor(max_workers=concurrency) as pool:
                streams = list(pool.map(
                    lambda s: replay_session(host, port, s), sessions))
        for session, stream in zip(sessions, streams):
            found = check_session(session, stream, vfs, corner.model,
                                  corner.freedoms, corner.name)
            result.exchanges += len(expected_exchanges(
                session.payload, vfs, corner.model, corner.freedoms))
            result.divergences.extend(found)
        result.survived = _probe_alive(host, port)
        if not result.survived:
            result.divergences.append(Divergence.build(
                corner.name, "<post>", "<probe>", "server-dead",
                "server stopped answering after the session sweep"))
    finally:
        server.stop()
    return result


# ---------------------------------------------------------------------------
# shrinking


def _atomize(session: Session) -> List[Step]:
    """Break a session into the smallest removable units: request
    frames inside send steps, plus reset markers."""
    units: List[Step] = []
    for step in session.steps:
        if step.kind != "send":
            units.append(step)
            continue
        rest = step.data
        while rest:
            split = conform_model._split_model(rest)
            if split is None or isinstance(split, int):
                units.append(Step("send", rest, trickle=step.trickle))
                break
            frame, rest = split
            units.append(Step("send", frame, trickle=step.trickle))
    return units


def shrink_session(session: Session,
                   failing: Callable[[Session], bool],
                   max_attempts: int = 80) -> Session:
    """Greedy ddmin-lite: remove one unit at a time while ``failing``
    still holds; the result is 1-minimal (no single unit can go).

    ``failing`` replays a candidate and reports whether the divergence
    reproduces; it is called at most ``max_attempts`` times."""
    units = _atomize(session)
    attempts = 0
    shrunk = True
    while shrunk and attempts < max_attempts and len(units) > 1:
        shrunk = False
        for i in range(len(units)):
            candidate = Session(name=f"{session.name}-shrink",
                                steps=units[:i] + units[i + 1:])
            attempts += 1
            if failing(candidate):
                units = candidate.steps
                shrunk = True
                break
            if attempts >= max_attempts:
                break
    return Session(name=f"{session.name}-min", steps=units)
