"""SpecWeb99-like static workload.

The paper's Fig 3/4 experiment uses a SpecWeb99 file set: "A file set of
size 204.8 MB is created using the SpecWeb99 suite, with an average file
size of 16 KB."

SpecWeb99's structure, reproduced here:

* files live in directories; each directory holds 36 files in four
  *classes* (9 files per class);
* class sizes: class 0 = 0.1..0.9 KB, class 1 = 1..9 KB, class 2 =
  10..90 KB, class 3 = 100..900 KB (file *i* of a class is ``i`` times
  the class base size);
* class access mix: 35% / 50% / 14% / 1% — giving the ~15 KB mean;
* directory popularity is Zipf; within a class, files are accessed with
  a fixed tent-shaped profile peaking at file 4.

The file set is *synthetic*: only paths and sizes exist (no bytes), so a
204.8 MB set costs a few hundred kilobytes of memory — which is what
lets the simulator's caches run the real replacement code over the real
size distribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.workload.zipf import ZipfSampler

__all__ = ["SpecWebFileSet", "DIRECTORY_BYTES", "CLASS_MIX"]

#: one directory's 36 files: sum_i(i*100B) + sum(i*1KB) + ... for i=1..9
DIRECTORY_BYTES = sum(i * base for base in (100, 1000, 10_000, 100_000)
                      for i in range(1, 10))

#: SpecWeb99 class access mix
CLASS_MIX = (0.35, 0.50, 0.14, 0.01)

#: intra-class file popularity (SpecWeb99's access profile, peaked
#: mid-class; normalised below)
_FILE_PROFILE = np.array([3.9, 5.9, 8.8, 17.7, 25.7, 17.7, 8.8, 5.9, 3.9])


@dataclass(frozen=True)
class _File:
    path: str
    size: int


class SpecWebFileSet:
    """A synthetic SpecWeb99-style file set.

    ``total_mb`` controls the number of directories (the paper's run
    uses 204.8 MB ≈ 42 directories of ~4.9 MB each).
    """

    def __init__(self, total_mb: float = 204.8, zipf_alpha: float = 1.0,
                 seed: int = 0):
        if total_mb <= 0:
            raise ValueError("total_mb must be positive")
        self.directories = max(1, round(total_mb * 1024 * 1024
                                        / DIRECTORY_BYTES))
        self.rng = np.random.default_rng(seed)
        self._dir_sampler = ZipfSampler(self.directories, alpha=zipf_alpha,
                                        rng=self.rng)
        self._class_cdf = np.cumsum(CLASS_MIX)
        self._file_cdf = np.cumsum(_FILE_PROFILE / _FILE_PROFILE.sum())
        self._class_base = (100, 1000, 10_000, 100_000)

    # -- inventory ------------------------------------------------------
    @property
    def total_bytes(self) -> int:
        return self.directories * DIRECTORY_BYTES

    @property
    def file_count(self) -> int:
        return self.directories * 36

    def size_of(self, class_id: int, file_id: int) -> int:
        """Size of file ``file_id`` (1..9) in class ``class_id`` (0..3)."""
        if not (0 <= class_id <= 3 and 1 <= file_id <= 9):
            raise ValueError("class_id in 0..3, file_id in 1..9")
        return self._class_base[class_id] * file_id

    def path_of(self, directory: int, class_id: int, file_id: int) -> str:
        return f"/dir{directory:05d}/class{class_id}_{file_id}"

    def files(self) -> List[Tuple[str, int]]:
        """The full (path, size) inventory (large for big sets)."""
        out = []
        for d in range(self.directories):
            for c in range(4):
                for f in range(1, 10):
                    out.append((self.path_of(d, c, f), self.size_of(c, f)))
        return out

    # -- sampling -----------------------------------------------------------
    def sample(self) -> Tuple[str, int]:
        """One access: returns ``(path, size)``."""
        directory = self._dir_sampler.sample()
        class_id = int(np.searchsorted(self._class_cdf, self.rng.random()))
        file_id = 1 + int(np.searchsorted(self._file_cdf, self.rng.random()))
        return (self.path_of(directory, class_id, file_id),
                self.size_of(class_id, file_id))

    def mean_access_size(self, samples: int = 20000) -> float:
        """Empirical mean transferred size (≈ 15-16 KB like the paper)."""
        total = 0
        for _ in range(samples):
            total += self.sample()[1]
        return total / samples
