"""Workload generation: SpecWeb99-like file sets and Zipf sampling."""

from repro.workload.specweb import CLASS_MIX, DIRECTORY_BYTES, SpecWebFileSet
from repro.workload.zipf import ZipfSampler

__all__ = ["CLASS_MIX", "DIRECTORY_BYTES", "SpecWebFileSet", "ZipfSampler"]
