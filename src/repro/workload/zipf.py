"""Zipf-like discrete sampling.

SpecWeb99 accesses files with a Zipf distribution over directories and a
fixed intra-directory popularity profile.  :class:`ZipfSampler`
implements inverse-CDF sampling over ``1/rank**alpha`` weights with a
deterministic numpy RNG.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ZipfSampler"]


class ZipfSampler:
    """Sample ranks 0..n-1 with probability proportional to
    ``1/(rank+1)**alpha``."""

    def __init__(self, n: int, alpha: float = 1.0,
                 rng: np.random.Generator | None = None, seed: int = 0):
        if n < 1:
            raise ValueError("n must be >= 1")
        if alpha < 0:
            raise ValueError("alpha must be >= 0")
        self.n = n
        self.alpha = alpha
        self.rng = rng if rng is not None else np.random.default_rng(seed)
        weights = 1.0 / np.power(np.arange(1, n + 1, dtype=float), alpha)
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]

    def sample(self) -> int:
        u = self.rng.random()
        return int(np.searchsorted(self._cdf, u, side="left"))

    def sample_many(self, k: int) -> np.ndarray:
        u = self.rng.random(k)
        return np.searchsorted(self._cdf, u, side="left")

    def probability(self, rank: int) -> float:
        if rank == 0:
            return float(self._cdf[0])
        return float(self._cdf[rank] - self._cdf[rank - 1])
