"""Testbed assembly: one call builds the simulated hardware, a server
model and N closed-loop clients, runs warm-up plus a measurement
window, and returns the metrics the paper's figures report.

This is the simulated counterpart of the paper's physical testbed (two
Sun E420R servers, 16 Ultra 10 clients, switched Ethernet at an
effective ~100 Mbit/s).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from repro.sim.clients import ClientBehavior, web_client
from repro.sim.core import Simulator
from repro.sim.disk import Disk, OsBufferCache
from repro.sim.link import Link
from repro.sim.metrics import ExperimentMetrics
from repro.sim.servers import (
    EventDrivenServer,
    MpedServer,
    PreforkServer,
    SedaServer,
    ServerParams,
    SpedServer,
)
from repro.workload import SpecWebFileSet

__all__ = ["TestbedConfig", "TestbedResult", "run_testbed"]


@dataclass
class TestbedConfig:
    """Everything one experiment point needs.

    Defaults reproduce the Fig 3/4 setup; the Fig 5/6 harnesses override
    the relevant fields (see ``repro.experiments``).
    """

    __test__ = False  # starts with "Test" but is not a pytest class

    server: str = "cops"    # cops | apache | sped | mped | seda | cluster | sharded
    clients: int = 64
    duration: float = 60.0          # measurement window (simulated s)
    warmup: float = 10.0
    seed: int = 1

    # client behaviour (per paper + calibration)
    requests_per_connection: int = 5
    think_time: float = 0.020
    wan_delay: float = 0.130
    #: client id -> content class (Fig 5 uses {"portal", "home"})
    client_classes: Dict[int, str] = field(default_factory=dict)
    #: content class -> scheduling priority (Fig 5)
    class_priorities: Dict[str, int] = field(default_factory=dict)

    # network
    bandwidth_bps: float = 80e6
    mtu: int = 1500

    # server host
    cpus: int = 4
    backlog: int = 256
    cpu_per_request: float = 0.004
    decode_extra_cpu: float = 0.0

    # workload / storage
    fileset_mb: float = 204.8
    os_buffer_mb: int = 80
    app_cache_mb: int = 20
    zipf_alpha: float = 1.0

    # apache model
    apache_workers: int = 150
    apache_overhead: float = 0.002
    apache_sched_latency: float = 0.0005

    #: clients start uniformly inside this window (prevents lockstep SYNs)
    start_stagger: float = 3.0

    # cops model
    processor_threads: int = 4
    file_io_threads: int = 2
    cache_policy: Optional[str] = "LRU"
    scan_coefficient: float = 3.5e-6
    dispatch_latency: float = 0.003
    scheduling_quotas: Dict[int, int] = field(default_factory=dict)
    overload: bool = False
    overload_high: int = 20
    overload_low: int = 5

    # degradation plane (template option O17; requires ``overload``)
    degradation: bool = False
    shed_rate: float = 5.0          # per-client token-bucket conn/s
    shed_burst: float = 10.0
    shed_retry_after: float = 1.0
    sojourn_deadline: Optional[float] = 0.4
    sojourn_interval: float = 0.1
    adaptive: bool = False          # AIMD watermark retuning on the sim clock
    adaptive_target_p99: float = 0.25
    adaptive_interval: float = 1.0
    #: client-experienced deadline a response must meet to count toward
    #: :attr:`TestbedResult.goodput`
    goodput_deadline: float = 0.5

    # seda model
    seda_threads_per_stage: int = 4

    # cluster model (the paper's distributed future work)
    cluster_nodes: int = 2
    cluster_policy: str = "round-robin"

    # sharded model (template option O14: reactor shards on one host)
    shard_count: int = 4
    shard_policy: str = "round-robin"


@dataclass
class TestbedResult:
    """What one run yields (inputs for the figure benches)."""

    __test__ = False  # starts with "Test" but is not a pytest class

    config: TestbedConfig
    throughput: float
    fairness: float
    total_responses: int
    class_throughput: Dict[str, float]
    response_mean: float
    combined_mean: float
    response_p90: float
    response_p99: float
    #: responses/s whose client-experienced time met ``goodput_deadline``
    goodput: float
    #: explicit shed decisions (0 unless the server runs the O17 plane)
    shed_total: int
    rejected_connections: int
    rejected_requests: int
    adaptive_adjustments: int
    cache_hit_rate: Optional[float]
    os_buffer_hit_rate: float
    syn_drops: int
    connect_wait_mean: float
    link_utilization: float
    cpu_utilization: float


def build_server(cfg: TestbedConfig, sim: Simulator, downlink: Link,
                 disk: Disk):
    params = ServerParams(cpus=cfg.cpus, backlog=cfg.backlog,
                          cpu_per_request=cfg.cpu_per_request,
                          decode_extra_cpu=cfg.decode_extra_cpu)
    if cfg.degradation and cfg.server != "cops":
        raise ValueError(
            "degradation (O17) is modelled for the event-driven server "
            f"only, not {cfg.server!r}")
    if cfg.server == "apache":
        return PreforkServer(sim, downlink, disk, params,
                             workers=cfg.apache_workers,
                             overhead_coefficient=cfg.apache_overhead,
                             sched_latency=cfg.apache_sched_latency)
    if cfg.server == "cops":
        return EventDrivenServer(
            sim, downlink, disk, params,
            processor_threads=cfg.processor_threads,
            file_io_threads=cfg.file_io_threads,
            cache_bytes=cfg.app_cache_mb * 1024 * 1024,
            cache_policy=cfg.cache_policy,
            scan_coefficient=cfg.scan_coefficient,
            dispatch_latency=cfg.dispatch_latency,
            scheduling_quotas=dict(cfg.scheduling_quotas) or None,
            priority_of_class=dict(cfg.class_priorities) or None,
            overload=cfg.overload,
            overload_high=cfg.overload_high,
            overload_low=cfg.overload_low,
            degradation=cfg.degradation,
            shed_rate=cfg.shed_rate,
            shed_burst=cfg.shed_burst,
            shed_retry_after=cfg.shed_retry_after,
            sojourn_deadline=cfg.sojourn_deadline,
            sojourn_interval=cfg.sojourn_interval,
            adaptive=cfg.adaptive,
            adaptive_target_p99=cfg.adaptive_target_p99,
            adaptive_interval=cfg.adaptive_interval,
        )
    if cfg.server == "sped":
        return SpedServer(sim, downlink, disk, params,
                          cache_bytes=cfg.app_cache_mb * 1024 * 1024,
                          scan_coefficient=cfg.scan_coefficient)
    if cfg.server == "mped":
        return MpedServer(sim, downlink, disk, params,
                          cache_bytes=cfg.app_cache_mb * 1024 * 1024,
                          scan_coefficient=cfg.scan_coefficient,
                          helpers=cfg.file_io_threads * 2)
    if cfg.server == "cluster":
        from repro.sim.servers.cluster import ClusterServer

        return ClusterServer(
            sim, downlink, disk, params,
            nodes=cfg.cluster_nodes,
            policy=cfg.cluster_policy,
            processor_threads=cfg.processor_threads,
            file_io_threads=cfg.file_io_threads,
            cache_bytes=cfg.app_cache_mb * 1024 * 1024,
            cache_policy=cfg.cache_policy,
            scan_coefficient=cfg.scan_coefficient,
            dispatch_latency=cfg.dispatch_latency,
        )
    if cfg.server == "sharded":
        from repro.sim.servers.sharded import ShardedServer

        # Same host as "cops": the thread budgets are split across the
        # shards, so the sweep compares shapes, not added hardware.
        shards = cfg.shard_count
        return ShardedServer(
            sim, downlink, disk, params,
            shards=shards,
            policy=cfg.shard_policy,
            processor_threads=max(1, cfg.processor_threads // shards),
            file_io_threads=max(1, cfg.file_io_threads // shards),
            cache_bytes=cfg.app_cache_mb * 1024 * 1024,
            cache_policy=cfg.cache_policy,
            scan_coefficient=cfg.scan_coefficient,
            dispatch_latency=cfg.dispatch_latency,
        )
    if cfg.server == "seda":
        return SedaServer(sim, downlink, disk, params,
                          threads_per_stage=cfg.seda_threads_per_stage,
                          cache_bytes=cfg.app_cache_mb * 1024 * 1024)
    raise ValueError(f"unknown server model {cfg.server!r}")


def run_testbed(cfg: TestbedConfig) -> TestbedResult:
    """Build, warm up, measure, summarise."""
    sim = Simulator()
    downlink = Link(sim, bandwidth_bps=cfg.bandwidth_bps, mtu=cfg.mtu)
    uplink = Link(sim, bandwidth_bps=cfg.bandwidth_bps, mtu=cfg.mtu)
    os_buffer = OsBufferCache(capacity_bytes=cfg.os_buffer_mb * 1024 * 1024)
    disk = Disk(sim, buffer_cache=os_buffer)
    fileset = SpecWebFileSet(cfg.fileset_mb, zipf_alpha=cfg.zipf_alpha,
                             seed=cfg.seed)
    server = build_server(cfg, sim, downlink, disk)
    server.start()

    metrics = ExperimentMetrics(sim, warmup=cfg.warmup)

    import numpy as np

    rng = np.random.default_rng(cfg.seed)

    for client_id in range(cfg.clients):
        content_class = cfg.client_classes.get(client_id, "default")
        behavior = ClientBehavior(
            requests_per_connection=cfg.requests_per_connection,
            think_time=cfg.think_time,
            wan_delay=cfg.wan_delay,
            content_class=content_class,
            priority=cfg.class_priorities.get(content_class, 0),
            start_offset=float(rng.uniform(0.0, cfg.start_stagger)),
            rto_jitter=lambda: float(rng.uniform(0.8, 1.2)),
        )
        sim.process(
            web_client(sim, client_id, server, uplink, fileset.sample,
                       metrics, behavior),
            name=f"client-{client_id}",
        )

    sim.run(until=cfg.warmup + cfg.duration)

    duration = cfg.duration
    cache_stats = getattr(server, "cache", None)
    response = metrics.response_summary()
    combined = metrics.combined_summary()
    waits = metrics.connect_waits
    return TestbedResult(
        config=cfg,
        throughput=metrics.throughput(duration),
        fairness=metrics.fairness(range(cfg.clients)),
        total_responses=metrics.total_responses,
        class_throughput={c: metrics.class_throughput(c, duration)
                          for c in metrics.responses_by_class},
        response_mean=response.mean if response else 0.0,
        combined_mean=combined.mean if combined else 0.0,
        response_p90=response.p90 if response else 0.0,
        response_p99=response.p99 if response else 0.0,
        goodput=metrics.goodput(duration, cfg.goodput_deadline),
        shed_total=getattr(server, "shed_total", 0),
        rejected_connections=getattr(server, "rejected_connections", 0),
        rejected_requests=getattr(server, "rejected_requests", 0),
        adaptive_adjustments=(
            server.adaptive.adjustments
            if getattr(server, "adaptive", None) is not None else 0),
        cache_hit_rate=(cache_stats.stats.hit_rate
                        if cache_stats is not None else None),
        os_buffer_hit_rate=os_buffer.stats.hit_rate,
        syn_drops=server.listen.syn_drops,
        connect_wait_mean=(sum(waits) / len(waits)) if waits else 0.0,
        link_utilization=downlink.utilization(cfg.warmup + cfg.duration),
        cpu_utilization=server.cpu.utilization(cfg.warmup + cfg.duration),
    )
