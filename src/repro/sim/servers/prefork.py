"""Apache 1.3-style prefork model: process-per-connection.

"Apache implements the process-per-connection concurrency model and
uses a bounded worker process pool of 150 processes to serve
simultaneous client connections."

Each worker loops: take a connection from the kernel backlog, serve its
requests until the client closes, repeat.  Multiprogramming overhead —
context switching, scheduling, cache pollution — inflates per-request
CPU time as the number of in-service worker processes grows
(:func:`repro.sim.host.multiprogramming_inflation`).
"""

from __future__ import annotations

from repro.sim.host import multiprogramming_inflation
from repro.sim.servers.common import BaseSimServer, ServerParams, SimRequest

__all__ = ["PreforkServer"]


class PreforkServer(BaseSimServer):
    """The Apache baseline of Figs 3 and 4."""

    name = "apache-prefork"

    def __init__(self, sim, link, disk, params: ServerParams | None = None,
                 workers: int = 150, overhead_coefficient: float = 0.002,
                 sched_latency: float = 0.0005, sched_free_processes: int = 16):
        super().__init__(sim, link, disk, params)
        self.workers = workers
        self.overhead_coefficient = overhead_coefficient
        #: run-queue delay each CPU burst suffers per schedulable process
        #: beyond ``sched_free_processes`` (time-slicing wait, not CPU work;
        #: small process counts schedule essentially for free)
        self.sched_latency = sched_latency
        self.sched_free_processes = sched_free_processes
        self.active_workers = 0

    def start(self) -> None:
        for i in range(self.workers):
            self.sim.process(self._worker(), name=f"worker-{i}")

    def _worker(self):
        while True:
            conn = yield self.listen.accept()
            conn.accepted.succeed(self.sim.now)
            self.open_connections += 1
            self.active_workers += 1
            try:
                while True:
                    request = yield conn.requests.get()
                    if request is None:  # client closed
                        break
                    yield from self._serve(request)
            finally:
                self.active_workers -= 1
                self.open_connections -= 1

    def _serve(self, request: SimRequest):
        sched_excess = max(0, self.active_workers - self.sched_free_processes)
        if sched_excess:
            # Scheduling wait: with many runnable processes the worker
            # queues for a time slice before (and between) bursts.
            yield self.sim.timeout(self.sched_latency * sched_excess)
        inflation = multiprogramming_inflation(
            self.active_workers, self.params.cpus, self.overhead_coefficient)
        cpu_time = (self.params.cpu_per_request
                    + self.params.decode_extra_cpu) * inflation
        yield from self.cpu.consume(cpu_time)
        # Apache relies on the OS buffer cache alone (no app-level cache).
        yield from self.disk.read(request.path, request.size)
        yield from self._respond(request)
