"""Simulated server architecture models: the event-driven N-Server
(COPS-HTTP), the Apache-style prefork baseline, and the related-work
architectures (SPED, MPED, SEDA)."""

from repro.sim.servers.common import (
    REQUEST_BYTES,
    BaseSimServer,
    ServerParams,
    SimRequest,
)
from repro.sim.servers.event_driven import EventDrivenServer
from repro.sim.servers.prefork import PreforkServer
from repro.sim.servers.seda import SedaServer
from repro.sim.servers.sharded import SHARD_POLICIES, ShardedServer
from repro.sim.servers.sped import MpedServer, SpedServer

__all__ = [
    "BaseSimServer",
    "EventDrivenServer",
    "MpedServer",
    "PreforkServer",
    "REQUEST_BYTES",
    "SHARD_POLICIES",
    "SedaServer",
    "ServerParams",
    "ShardedServer",
    "SimRequest",
    "SpedServer",
]
