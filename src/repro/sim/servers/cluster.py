"""Distributed N-Server (the paper's future work, section VI).

"The most interesting extension of this work is to support the
generation of distributed N-servers that will serve from a network of
workstations."

Model: N independent event-driven N-Server nodes (each with its own
CPUs, disk and caches) behind an L4 load balancer that assigns incoming
connections to nodes — round-robin or least-connections.  Clients see
one listen queue; the balancer forwards accepted connections into the
chosen node's listen queue, so each node's ordinary acceptor / reactive
machinery runs unchanged (the hook-method application code would be
identical on every node, as the paper requires of the distributed
pattern).
"""

from __future__ import annotations

from typing import List, Optional

from repro.sim.disk import Disk, OsBufferCache
from repro.sim.servers.common import BaseSimServer, ServerParams
from repro.sim.servers.event_driven import EventDrivenServer

__all__ = ["ClusterServer"]


class ClusterServer(BaseSimServer):
    """A load-balanced cluster of event-driven nodes."""

    name = "cops-cluster"

    def __init__(self, sim, link, disk, params: Optional[ServerParams] = None,
                 nodes: int = 2, policy: str = "round-robin",
                 balancer_latency: float = 0.0002, **node_kwargs):
        if nodes < 1:
            raise ValueError("nodes must be >= 1")
        if policy not in ("round-robin", "least-connections"):
            raise ValueError(f"unknown balancing policy {policy!r}")
        super().__init__(sim, link, disk, params)
        self.policy = policy
        self.balancer_latency = balancer_latency
        # Each node is a full event-driven server with its own disk and
        # OS buffer (a workstation), sharing only the client-side link.
        self.nodes: List[EventDrivenServer] = []
        for _ in range(nodes):
            node_disk = Disk(sim, buffer_cache=OsBufferCache(
                capacity_bytes=disk.buffer.cache.capacity))
            self.nodes.append(EventDrivenServer(
                sim, link, node_disk, params, **node_kwargs))
        self._next = 0
        self.assigned_per_node = [0] * nodes

    def start(self) -> None:
        for node in self.nodes:
            node.start()
        self.sim.process(self._balancer(), name="balancer")

    # -- balancing --------------------------------------------------------
    def _pick(self) -> int:
        if self.policy == "round-robin":
            index = self._next
            self._next = (self._next + 1) % len(self.nodes)
            return index
        return min(range(len(self.nodes)),
                   key=lambda i: self.nodes[i].open_connections)

    def _balancer(self):
        while True:
            conn = yield self.listen.accept()
            if self.balancer_latency:
                yield self.sim.timeout(self.balancer_latency)
            index = self._pick()
            self.assigned_per_node[index] += 1
            # Forward into the node's kernel backlog; its acceptor takes
            # over (and triggers conn.accepted).
            if not self.nodes[index].listen.try_syn(conn):
                # Node backlog full: spill to the emptiest node, or drop
                # (clients retransmit) if everyone is full.
                spill = min(range(len(self.nodes)),
                            key=lambda i: self.nodes[i].listen.depth)
                self.nodes[spill].listen.try_syn(conn)

    # -- aggregated stats ----------------------------------------------------
    @property
    def open_connections(self) -> int:  # type: ignore[override]
        return sum(node.open_connections for node in self.nodes)

    @open_connections.setter
    def open_connections(self, value) -> None:
        # BaseSimServer.__init__ assigns 0; per-node counters rule after.
        pass

    @property
    def requests_served_total(self) -> int:
        return sum(node.requests_served for node in self.nodes)

    def node_utilizations(self, elapsed: float) -> List[float]:
        return [node.cpu.utilization(elapsed) for node in self.nodes]
