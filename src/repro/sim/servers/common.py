"""Shared pieces of the simulated server architecture models."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.sim.core import SimEvent, Simulator
from repro.sim.disk import Disk
from repro.sim.host import CpuPool
from repro.sim.link import Link
from repro.sim.tcp import ListenQueue, SimConnection

__all__ = ["SimRequest", "ServerParams", "BaseSimServer", "REQUEST_BYTES"]

#: a typical "GET /path HTTP/1.1" + headers on the wire
REQUEST_BYTES = 350


@dataclass
class SimRequest:
    """One in-flight request inside the simulated server."""

    conn: SimConnection
    path: str
    size: int
    done: SimEvent
    created_at: float
    content_class: str = "default"
    #: the server shed this request after admission (O17 sojourn
    #: deadline): ``done`` fires with a fast 503 instead of the page
    rejected: bool = False
    retry_after: float = 0.0


@dataclass
class ServerParams:
    """Knobs shared by every server model (calibrated in
    ``repro.sim.testbed``; see EXPERIMENTS.md for the rationale)."""

    cpus: int = 4
    backlog: int = 128
    #: CPU seconds to parse + handle one request
    cpu_per_request: float = 0.004
    #: extra CPU per request during the Decode step (Fig 6 makes this
    #: 50 ms to force a CPU bottleneck)
    decode_extra_cpu: float = 0.0


class BaseSimServer:
    """Common state: listen queue, resources, counters."""

    name = "base"

    def __init__(self, sim: Simulator, link: Link, disk: Disk,
                 params: Optional[ServerParams] = None):
        self.sim = sim
        self.link = link
        self.disk = disk
        self.params = params or ServerParams()
        self.cpu = CpuPool(sim, cpus=self.params.cpus)
        self.listen = ListenQueue(sim, backlog=self.params.backlog)
        self.open_connections = 0
        self.requests_served = 0

    def start(self) -> None:
        """Spawn the server's processes; override."""
        raise NotImplementedError

    # -- helpers ------------------------------------------------------------
    def _respond(self, request: SimRequest):
        """Ship the response over the link and complete the request."""
        yield from self.link.transfer(request.size)
        self.requests_served += 1
        request.done.succeed(self.sim.now)
