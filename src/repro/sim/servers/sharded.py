"""Sharded event-driven N-Server (template option O14, simulated).

The simulated counterpart of :class:`repro.runtime.ShardedReactorServer`
and the generated O14 framework: N reactor shards — each with its own
listen backlog, reactive queue, Event Processor pool and file cache —
sharing ONE host (one CPU pool, one OS buffer cache / disk, one link).
This is what distinguishes sharding from the :mod:`cluster
<repro.sim.servers.cluster>` model, whose nodes are separate
workstations with private disks.

A single accept plane on the facade's listen queue places each accepted
connection on a shard (round-robin, least-connections, or a stable hash
of the client) and forwards it into that shard's kernel backlog, where
the shard's ordinary acceptor machinery takes over.
"""

from __future__ import annotations

import zlib
from typing import List, Optional

from repro.sim.servers.common import BaseSimServer, ServerParams
from repro.sim.servers.event_driven import EventDrivenServer

__all__ = ["ShardedServer", "SHARD_POLICIES"]

SHARD_POLICIES = ("round-robin", "least-connections", "connection-hash")


class ShardedServer(BaseSimServer):
    """N reactor shards behind one accept plane, sharing one host."""

    name = "cops-sharded"

    def __init__(self, sim, link, disk, params: Optional[ServerParams] = None,
                 *, shards: int = 4, policy: str = "round-robin",
                 accept_latency: float = 0.0005,
                 cache_bytes: int = 20 * 1024 * 1024, **shard_kwargs):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if policy not in SHARD_POLICIES:
            raise ValueError(f"unknown shard policy {policy!r}")
        super().__init__(sim, link, disk, params)
        self.policy = policy
        self.accept_latency = accept_latency
        # Shards divide the host: the shared CPU pool and disk replace
        # each shard's private ones, and the app-cache budget is split.
        self.shards: List[EventDrivenServer] = []
        for _ in range(shards):
            shard = EventDrivenServer(
                sim, link, disk, params,
                cache_bytes=max(1, cache_bytes // shards), **shard_kwargs)
            shard.cpu = self.cpu
            self.shards.append(shard)
        self._next = 0
        self.assigned_per_shard = [0] * shards

    def start(self) -> None:
        for shard in self.shards:
            shard.start()
        self.sim.process(self._accept_plane(), name="shard-acceptor")

    # -- placement --------------------------------------------------------
    def _pick(self, conn) -> int:
        if self.policy == "round-robin":
            index = self._next
            self._next = (self._next + 1) % len(self.shards)
            return index
        if self.policy == "connection-hash":
            key = str(getattr(conn, "client_id", conn.conn_id)).encode()
            return zlib.crc32(key) % len(self.shards)
        return min(range(len(self.shards)),
                   key=lambda i: self.shards[i].open_connections)

    def _accept_plane(self):
        while True:
            conn = yield self.listen.accept()
            index = self._pick(conn)
            self.assigned_per_shard[index] += 1
            # Hand off into the shard's backlog; its acceptor (with its
            # own overload gate) triggers conn.accepted.
            if not self.shards[index].listen.try_syn(conn):
                spill = min(range(len(self.shards)),
                            key=lambda i: self.shards[i].listen.depth)
                self.shards[spill].listen.try_syn(conn)
            if self.accept_latency:
                yield self.sim.timeout(self.accept_latency)

    # -- aggregated stats ----------------------------------------------------
    @property
    def open_connections(self) -> int:  # type: ignore[override]
        return sum(shard.open_connections for shard in self.shards)

    @open_connections.setter
    def open_connections(self, value) -> None:
        # BaseSimServer.__init__ assigns 0; per-shard counters rule after.
        pass

    @property
    def requests_served_total(self) -> int:
        return sum(shard.requests_served for shard in self.shards)

    @property
    def pending_events(self) -> int:
        return sum(shard.pending_events for shard in self.shards)
