"""SPED and MPED architecture models (section III related work).

* SPED — single-process event-driven (Zeus, Harvest): one process does
  everything; a disk read *blocks the entire server* because there is no
  asynchronous disk I/O.
* MPED — multi-process event-driven (Flash): SPED plus helper processes
  that absorb the blocking disk operations, so the main loop keeps
  serving cache hits while misses are in flight.

The paper notes "Both of these two architectures can be emulated using
the N-Server"; they are included as baselines for the architecture
ablation bench.
"""

from __future__ import annotations

from typing import Optional

from repro.cache import Cache, make_policy
from repro.sim.core import Resource, Store
from repro.sim.servers.common import BaseSimServer, ServerParams, SimRequest

__all__ = ["SpedServer", "MpedServer"]


class SpedServer(BaseSimServer):
    """Single-process event-driven: blocking disk I/O stalls the loop."""

    name = "sped"

    def __init__(self, sim, link, disk, params: Optional[ServerParams] = None,
                 cache_bytes: int = 20 * 1024 * 1024,
                 scan_coefficient: float = 2.0e-6):
        super().__init__(sim, link, disk, params)
        self.cache = Cache(capacity=cache_bytes, policy=make_policy("LRU"))
        self.scan_coefficient = scan_coefficient
        self._events: Store = Store(sim)

    def start(self) -> None:
        self.sim.process(self._acceptor(), name="sped-acceptor")
        self.sim.process(self._main_loop(), name="sped-loop")

    def _acceptor(self):
        while True:
            conn = yield self.listen.accept()
            conn.accepted.succeed(self.sim.now)
            self.open_connections += 1
            self.sim.process(self._pump(conn))

    def _pump(self, conn):
        while True:
            request = yield conn.requests.get()
            if request is None:
                self.open_connections -= 1
                return
            self._events.put(request)

    def _main_loop(self):
        while True:
            request = yield self._events.get()
            yield from self.cpu.consume(
                self.params.cpu_per_request
                + self.scan_coefficient * self.open_connections)
            if self.cache.get(request.path) is None:
                # The single process blocks on the disk: nothing else is
                # served meanwhile — SPED's known weakness.
                yield from self.disk.read(request.path, request.size)
                self.cache.put(request.path, request.size)
            yield from self._respond(request)


class MpedServer(SpedServer):
    """SPED + helper processes for blocking disk operations (Flash)."""

    name = "mped"

    def __init__(self, sim, link, disk, params: Optional[ServerParams] = None,
                 cache_bytes: int = 20 * 1024 * 1024,
                 scan_coefficient: float = 2.0e-6, helpers: int = 4):
        super().__init__(sim, link, disk, params,
                         cache_bytes=cache_bytes,
                         scan_coefficient=scan_coefficient)
        self._helpers = Resource(sim, capacity=helpers)

    def _main_loop(self):
        while True:
            request = yield self._events.get()
            yield from self.cpu.consume(
                self.params.cpu_per_request
                + self.scan_coefficient * self.open_connections)
            if self.cache.get(request.path) is None:
                # Hand the blocking read to a helper; keep serving.
                self.sim.process(self._helper_read(request))
                continue
            yield from self._respond(request)

    def _helper_read(self, request: SimRequest):
        slot = self._helpers.request()
        yield slot
        try:
            yield from self.disk.read(request.path, request.size)
        finally:
            self._helpers.release(slot)
        self.cache.put(request.path, request.size)
        self._events.put(request)
