"""The event-driven N-Server model (simulated COPS-HTTP).

Mirrors the generated COPS-HTTP architecture: an acceptor (with optional
overload control), a dispatcher handing ready events to a reactive Event
Processor pool, an application-level file cache, and a thread pool
emulating non-blocking disk I/O whose completions re-enter the reactive
queue.

Crucially this model runs the *real* feature implementations:

* the reactive queue is a real :class:`repro.runtime.QuotaPriorityQueue`
  (O8, Fig 5) or :class:`repro.runtime.FifoEventQueue`;
* overload control is a real :class:`repro.runtime.OverloadController`
  with the paper's 20/5 watermarks (O9, Fig 6);
* the file cache is a real :class:`repro.cache.Cache` with the LRU
  policy (O6);
* graceful degradation is the real O17 plane on the simulated clock —
  :class:`repro.runtime.SheddingPolicy` (with its per-client
  :class:`repro.runtime.ClientRateLimiter` token buckets) decides the
  accept edge, a :class:`repro.runtime.SojournQueue` drops stale queued
  requests CoDel-style, and the :class:`repro.runtime.AdaptiveController`
  retunes the watermarks by AIMD on the observed p99.

Event-driven overhead is modelled as per-event readiness-scan CPU that
grows with open connections (select/poll walks every handle) plus a
small dispatch latency (poll batching).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cache import Cache, make_policy
from repro.runtime import (
    AdaptiveController,
    ClientRateLimiter,
    FifoEventQueue,
    OverloadController,
    QuotaPriorityQueue,
    ShedDecision,
    SheddingPolicy,
    SojournQueue,
    Watermark,
)
from repro.sim.core import Resource, Store
from repro.sim.servers.common import BaseSimServer, ServerParams, SimRequest

__all__ = ["EventDrivenServer"]


class EventDrivenServer(BaseSimServer):
    """Simulated COPS-HTTP."""

    name = "cops-http"

    def __init__(
        self,
        sim,
        link,
        disk,
        params: Optional[ServerParams] = None,
        *,
        processor_threads: int = 4,
        file_io_threads: int = 2,
        cache_bytes: int = 20 * 1024 * 1024,
        cache_policy: Optional[str] = "LRU",
        scan_coefficient: float = 2.0e-6,
        dispatch_latency: float = 0.002,
        completion_cpu: float = 0.0005,
        scheduling_quotas: Optional[Dict[int, int]] = None,
        priority_of_class: Optional[Dict[str, int]] = None,
        overload: bool = False,
        overload_high: int = 20,
        overload_low: int = 5,
        overload_check: float = 0.005,
        accept_latency: float = 0.001,
        degradation: bool = False,
        shed_rate: float = 5.0,
        shed_burst: float = 10.0,
        shed_retry_after: float = 1.0,
        sojourn_deadline: Optional[float] = 0.4,
        sojourn_interval: float = 0.1,
        reject_cpu: float = 0.0002,
        reject_bytes: int = 512,
        adaptive: bool = False,
        adaptive_target_p99: float = 0.25,
        adaptive_interval: float = 1.0,
    ):
        super().__init__(sim, link, disk, params)
        self.processor_threads = processor_threads
        self.scan_coefficient = scan_coefficient
        self.dispatch_latency = dispatch_latency
        self.completion_cpu = completion_cpu
        self.priority_of_class = priority_of_class or {}
        # Real O8 machinery: quota priority queue when scheduling is on.
        if scheduling_quotas:
            self.queue = QuotaPriorityQueue(scheduling_quotas)
        else:
            self.queue = FifoEventQueue()
        self._tokens = Store(sim)  # wakes sim workers; ordering is the queue's
        # Real O6 machinery: byte-budgeted app cache over (path -> size).
        self.cache: Optional[Cache] = None
        if cache_policy is not None:
            self.cache = Cache(capacity=cache_bytes,
                               policy=make_policy(cache_policy))
        # Real O9 machinery: watermark overload control on the queue.
        self.overload: Optional[OverloadController] = None
        self.overload_check = overload_check
        if overload:
            self.overload = OverloadController()
            self.overload.watch(
                "reactive", probe=lambda: len(self.queue),
                mark=Watermark(high=overload_high, low=overload_low))
        # Real O17 machinery: the degradation plane, on the sim clock.
        self.shedding: Optional[SheddingPolicy] = None
        self.adaptive: Optional[AdaptiveController] = None
        self.reject_cpu = reject_cpu
        self.reject_bytes = reject_bytes
        self.rejected_connections = 0
        self.rejected_requests = 0
        self._latency_window: List[float] = []
        if degradation:
            if self.overload is None:
                raise ValueError(
                    "degradation requires overload control "
                    "(the template's O17 -> O9 constraint)")
            self.shedding = SheddingPolicy(
                overload=self.overload,
                limiter=ClientRateLimiter(
                    rate=shed_rate, burst=shed_burst,
                    clock=lambda: sim.now),
                retry_after=shed_retry_after,
                on_overload="reject")
            if sojourn_deadline:
                self.queue = SojournQueue(
                    self.queue,
                    deadline=sojourn_deadline,
                    interval=sojourn_interval,
                    on_drop=self._on_sojourn_drop,
                    droppable=lambda item: item[0] == "request",
                    clock=lambda: sim.now)
            if adaptive:
                self.adaptive = AdaptiveController(
                    overload=self.overload,
                    latency_probe=self._latency_p99,
                    target_p99=adaptive_target_p99,
                    interval=adaptive_interval)
        self._file_io = Resource(sim, capacity=file_io_threads)
        #: time between consecutive accepts: the acceptor shares the
        #: dispatcher with event processing, so accepts are paced — which
        #: is what lets the watermark trip before a backlog flood gets in
        self.accept_latency = accept_latency

    # -- lifecycle -------------------------------------------------------
    def start(self) -> None:
        self.sim.process(self._acceptor(), name="acceptor")
        for i in range(self.processor_threads):
            self.sim.process(self._processor_worker(), name=f"reactive-{i}")
        if self.adaptive is not None:
            self.sim.process(self._adaptive_loop(), name="adaptive")

    # -- acceptor ----------------------------------------------------------
    def _acceptor(self):
        while True:
            if self.overload is not None and self.shedding is None:
                # Postpone accepts while a watched queue is over its high
                # watermark: connections stay in the kernel backlog and
                # excess SYNs get dropped (the Fig 6 mechanism).
                while not self.overload.accepting():
                    yield self.sim.timeout(self.overload_check)
            conn = yield self.listen.accept()
            if self.shedding is not None and not self._admit(conn):
                # Rejects keep draining the backlog at full speed: the
                # whole point of the cheap write path is that a waiting
                # client costs one canned send instead of a service slot.
                continue
            conn.priority = self.priority_of_class.get(
                getattr(conn, "content_class", "default"), conn.priority)
            conn.accepted.succeed(self.sim.now)
            self.open_connections += 1
            self.sim.process(self._connection_pump(conn))
            if self.accept_latency:
                yield self.sim.timeout(self.accept_latency)

    # -- degradation plane (O17) -----------------------------------------
    def _admit(self, conn) -> bool:
        """The O17 accept gate: explicit prioritized decisions instead
        of the silent postpone latch."""
        decision = self.shedding.admit_accept()
        if not decision.admitted:
            self.shedding.record_rejection(
                decision, f"client={conn.client_id}")
            self.sim.process(self._reject_connection(conn, decision))
            return False
        limited = self.shedding.admit_client(f"client-{conn.client_id}")
        if not limited.admitted:
            self.sim.process(self._reject_connection(conn, limited))
            return False
        return True

    def _reject_connection(self, conn, decision: ShedDecision):
        """Cheap write-path rejection: the client gets the canned 503 +
        Retry-After and a close — no service slot, no disk, no queue."""
        self.rejected_connections += 1
        conn.rejected = True
        conn.retry_after = decision.retry_after
        yield from self.cpu.consume(self.reject_cpu)
        yield from self.link.transfer(self.reject_bytes)
        conn.accepted.succeed(self.sim.now)
        conn.close()

    def _on_sojourn_drop(self, item, sojourn: float) -> None:
        """A queued request blew its sojourn deadline (CoDel): 503 the
        victim instead of serving it uselessly late."""
        _kind, request = item
        self.shedding.record_rejection(
            ShedDecision("reject", "queue-deadline",
                         self.shedding.retry_after),
            f"sojourn={sojourn:.3f}s")
        self.sim.process(self._reject_request(request))

    def _reject_request(self, request: SimRequest):
        self.rejected_requests += 1
        request.rejected = True
        request.retry_after = self.shedding.retry_after
        yield from self.cpu.consume(self.reject_cpu)
        yield from self.link.transfer(self.reject_bytes)
        request.done.succeed(self.sim.now)

    @property
    def shed_total(self) -> int:
        """Every explicit shed decision (accept-edge and sojourn)."""
        return self.shedding.shed_total if self.shedding is not None else 0

    def _latency_p99(self) -> Optional[float]:
        """p99 of the responses completed since the last adaptive step
        (the sim-time stand-in for the O11 latency probe)."""
        window, self._latency_window = self._latency_window, []
        if not window:
            return None
        window.sort()
        return window[min(len(window) - 1, int(0.99 * len(window)))]

    def _adaptive_loop(self):
        """Step the real AIMD controller on the simulated clock (its
        live mode spawns a thread; the sim steps it by hand)."""
        while True:
            yield self.sim.timeout(self.adaptive.interval)
            self.adaptive.step()

    def _connection_pump(self, conn):
        """Per-connection arrival path: request bytes became readable;
        the dispatcher queues a reactive event."""
        while True:
            request = yield conn.requests.get()
            if request is None:
                self.open_connections -= 1
                return
            if self.dispatch_latency:
                yield self.sim.timeout(self.dispatch_latency)
            self._enqueue("request", request, conn.priority)

    def _enqueue(self, kind: str, request: SimRequest, priority: int) -> None:
        self.queue.push((kind, request), priority=priority)
        self._tokens.put(1)

    @property
    def pending_events(self) -> int:
        return len(self.queue)

    # -- reactive event processor --------------------------------------------
    def _processor_worker(self):
        while True:
            yield self._tokens.get()
            item = self.queue.try_pop()
            if item is None:
                continue
            kind, request = item
            if kind == "request":
                yield from self._handle_request(request)
            else:
                yield from self._handle_completion(request)

    def _scan_cpu(self) -> float:
        """Per-event readiness-scan cost: select/poll walks all handles."""
        return self.scan_coefficient * self.open_connections

    def _handle_request(self, request: SimRequest):
        yield from self.cpu.consume(
            self.params.cpu_per_request + self._scan_cpu())
        if self.params.decode_extra_cpu:
            # The Fig 6 CPU-intensive decode: occupies this processor
            # thread (a sleep in the paper's experiment).
            yield self.sim.timeout(self.params.decode_extra_cpu)
        if self.cache is not None and self.cache.get(request.path) is not None:
            # Non-blocking send: the socket write is driven by writable
            # events, not by this processor thread.
            self.sim.process(self._respond(request))
            return
        # App-cache miss: emulated non-blocking file I/O; the completion
        # re-enters the reactive queue at the connection's priority.
        self.sim.process(self._file_read(request))

    def _file_read(self, request: SimRequest):
        slot = self._file_io.request()
        yield slot
        try:
            yield from self.disk.read(request.path, request.size)
        finally:
            self._file_io.release(slot)
        if self.cache is not None:
            self.cache.put(request.path, request.size)
        self._enqueue("completion", request, request.conn.priority)

    def _handle_completion(self, request: SimRequest):
        yield from self.cpu.consume(self.completion_cpu + self._scan_cpu())
        self.sim.process(self._respond(request))
        yield self.sim.timeout(0)

    def _respond(self, request: SimRequest):
        yield from super()._respond(request)
        if self.adaptive is not None:
            self._latency_window.append(self.sim.now - request.created_at)
