"""SEDA architecture model (section III related work).

"In SEDA, an application is modeled as a finite state machine and each
FSM stage is embodied as a self-contained component, which consists of
an event handler, an incoming event queue, and a pool of threads. ...
However, this design suffers from additional thread switching/scheduling
overheads ... when there are more stages used than available
processors."

The model: a pipeline of stages, each with its own queue and thread
pool.  Total threads across stages typically exceed the CPU count, so
every CPU slice pays the multiprogramming inflation — the overhead the
paper contrasts the N-Server's two-processor design against.
"""

from __future__ import annotations

from typing import Optional

from repro.cache import Cache, make_policy
from repro.sim.core import Store
from repro.sim.host import multiprogramming_inflation
from repro.sim.servers.common import BaseSimServer, ServerParams, SimRequest

__all__ = ["SedaServer"]

#: (stage name, share of the per-request CPU cost)
DEFAULT_STAGES = (
    ("parse", 0.35),
    ("cache", 0.15),
    ("handle", 0.35),
    ("send", 0.15),
)


class SedaServer(BaseSimServer):
    """Staged event-driven architecture baseline."""

    name = "seda"

    def __init__(self, sim, link, disk, params: Optional[ServerParams] = None,
                 threads_per_stage: int = 4,
                 cache_bytes: int = 20 * 1024 * 1024,
                 overhead_coefficient: float = 0.004,
                 stages=DEFAULT_STAGES):
        super().__init__(sim, link, disk, params)
        self.threads_per_stage = threads_per_stage
        self.overhead_coefficient = overhead_coefficient
        self.stages = list(stages)
        self.cache = Cache(capacity=cache_bytes, policy=make_policy("LRU"))
        self._queues = {name: Store(sim) for name, _ in self.stages}
        self.total_threads = threads_per_stage * len(self.stages)

    def start(self) -> None:
        self.sim.process(self._acceptor(), name="seda-acceptor")
        for index, (name, share) in enumerate(self.stages):
            for t in range(self.threads_per_stage):
                self.sim.process(self._stage_worker(index, name, share),
                                 name=f"seda-{name}-{t}")

    def _acceptor(self):
        while True:
            conn = yield self.listen.accept()
            conn.accepted.succeed(self.sim.now)
            self.open_connections += 1
            self.sim.process(self._pump(conn))

    def _pump(self, conn):
        first_stage = self.stages[0][0]
        while True:
            request = yield conn.requests.get()
            if request is None:
                self.open_connections -= 1
                return
            self._queues[first_stage].put(request)

    def _inflation(self) -> float:
        # Every stage's threads are schedulable entities: with more
        # stage-threads than CPUs, each slice pays switching overhead.
        return multiprogramming_inflation(
            self.total_threads, self.params.cpus, self.overhead_coefficient)

    def _stage_worker(self, index: int, name: str, share: float):
        downstream = (self.stages[index + 1][0]
                      if index + 1 < len(self.stages) else None)
        queue = self._queues[name]
        while True:
            request = yield queue.get()
            slice_cpu = self.params.cpu_per_request * share * self._inflation()
            yield from self.cpu.consume(slice_cpu)
            if name == "cache" and self.cache.get(request.path) is None:
                yield from self.disk.read(request.path, request.size)
                self.cache.put(request.path, request.size)
            if downstream is not None:
                self._queues[downstream].put(request)
            else:
                yield from self._respond(request)
