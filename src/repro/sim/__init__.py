"""Discrete-event simulation testbed.

Stands in for the paper's physical testbed (Sun E420R servers, Ultra 10
clients, switched Ethernet): simulated hosts with CPUs and context-switch
costs, disks with an OS buffer cache, a shared-bandwidth link, TCP
connection establishment with SYN drops and exponential backoff, and
client workload processes.  Server *architecture models* (event-driven
N-Server, Apache-style prefork, SPED, MPED, SEDA) live in
``repro.sim.servers``.
"""

from repro.sim.core import (
    AllOf,
    AnyOf,
    Interrupt,
    PriorityResource,
    Process,
    Resource,
    SimEvent,
    SimulationError,
    Simulator,
    Store,
    Timeout,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "Interrupt",
    "PriorityResource",
    "Process",
    "Resource",
    "SimEvent",
    "SimulationError",
    "Simulator",
    "Store",
    "Timeout",
]
