"""Server host model: CPUs with multiprogramming overhead.

Two costs the paper's background section names for multiprogramming
concurrency models — "context switching and scheduling, cache misses,
and lock contention" — are modelled as a per-request CPU inflation that
grows with the number of in-service processes.  Event-driven servers pay
a different cost: readiness scanning (select/poll walks every registered
handle), modelled as per-event CPU that grows with open connections.
"""

from __future__ import annotations

from repro.sim.core import Resource, Simulator

__all__ = ["CpuPool"]


class CpuPool:
    """N CPUs; work is FIFO-scheduled via a counted resource."""

    def __init__(self, sim: Simulator, cpus: int = 4):
        if cpus < 1:
            raise ValueError("cpus must be >= 1")
        self.sim = sim
        self.cpus = cpus
        self._res = Resource(sim, capacity=cpus)
        self.busy_time = 0.0

    def consume(self, seconds: float):
        """Process-style CPU burn: ``yield from cpu.consume(t)``."""
        if seconds <= 0:
            return
        req = self._res.request()
        yield req
        try:
            yield self.sim.timeout(seconds)
            self.busy_time += seconds
        finally:
            self._res.release(req)

    @property
    def queue_length(self) -> int:
        return self._res.queue_length

    @property
    def running(self) -> int:
        return self._res.count

    def utilization(self, elapsed: float) -> float:
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / (elapsed * self.cpus))


def multiprogramming_inflation(active_processes: int, cpus: int,
                               coefficient: float = 0.004) -> float:
    """CPU-time inflation factor for a process-per-connection server
    running ``active_processes`` schedulable processes on ``cpus`` CPUs.

    1.0 while everything fits on the CPUs; grows linearly with the
    process count beyond that (context switches, cache pollution,
    run-queue management — the overheads [28]/[13] report).
    """
    excess = max(0, active_processes - cpus)
    return 1.0 + coefficient * excess


__all__.append("multiprogramming_inflation")
