"""Client workload processes.

Reproduces the paper's client behaviour: "establish a connection to the
Web server, issue 5 HTTP requests (to simulate HTTP 1.1 persistent
connections), and then terminate the connection.  To simulate the
wide-area transfer delay, there is a 20 milliseconds pause after
receiving each page".

The configured ``wan_delay`` extends the per-request pause: the paper's
16 physical client machines simulate up to 1024 web clients, and the
per-web-client request rate that makes the network saturate above 256
clients corresponds to a few hundred ms per request cycle.  See
EXPERIMENTS.md ("calibration") for the arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from repro.sim.core import Simulator
from repro.sim.link import Link
from repro.sim.metrics import ExperimentMetrics
from repro.sim.servers.common import REQUEST_BYTES, SimRequest
from repro.sim.tcp import connect

__all__ = ["ClientBehavior", "web_client"]


@dataclass
class ClientBehavior:
    """Per-client workload parameters."""

    requests_per_connection: int = 5
    think_time: float = 0.020
    wan_delay: float = 0.130
    content_class: str = "default"
    priority: int = 0
    #: initial delay before the first connection (staggers client starts
    #: so 1024 clients do not SYN in lockstep at t=0)
    start_offset: float = 0.0
    #: multiplicative jitter for SYN retransmission timeouts
    rto_jitter: Optional[Callable[[], float]] = None


def web_client(
    sim: Simulator,
    client_id: int,
    server,
    uplink: Link,
    sampler: Callable[[], Tuple[str, int]],
    metrics: ExperimentMetrics,
    behavior: Optional[ClientBehavior] = None,
):
    """One closed-loop web client (a sim process generator)."""
    b = behavior or ClientBehavior()
    if b.start_offset > 0:
        yield sim.timeout(b.start_offset)
    while True:
        conn, wait, _attempts = yield from connect(
            sim, server.listen, client_id,
            priority=b.priority, content_class=b.content_class,
            jitter=b.rto_jitter)
        metrics.record_connect(client_id, wait)
        if conn.rejected:
            # O17 fast failure: the server answered a cheap 503 with
            # Retry-After instead of stranding us in the backlog —
            # honour the hint and come back later.
            metrics.record_shed(client_id)
            yield sim.timeout(max(conn.retry_after, b.think_time))
            continue
        amortized_wait = wait / b.requests_per_connection
        for _ in range(b.requests_per_connection):
            path, size = sampler()
            started = sim.now
            yield from uplink.transfer(REQUEST_BYTES)
            request = SimRequest(conn=conn, path=path, size=size,
                                 done=sim.event(), created_at=sim.now,
                                 content_class=b.content_class)
            conn.requests.put(request)
            yield request.done
            if request.rejected:
                # Sojourn-deadline shed: the request came back as a
                # fast 503; drop the connection and back off.
                metrics.record_shed(client_id)
                conn.close()
                yield sim.timeout(max(request.retry_after, b.think_time))
                break
            response_time = sim.now - started
            metrics.record_response(
                client_id, size,
                response_time=response_time,
                combined_time=response_time + amortized_wait,
                content_class=b.content_class)
            yield sim.timeout(b.think_time + b.wan_delay)
        else:
            conn.close()
