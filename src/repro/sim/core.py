"""Discrete-event simulation kernel.

A small, self-contained process-based DES in the style of SimPy: a
:class:`Simulator` owns a virtual clock and a pending-event heap;
*processes* are Python generators that ``yield`` waitable
:class:`SimEvent` objects (timeouts, resource requests, store gets...).

The kernel is deliberately minimal but complete enough to model hosts,
CPUs, disks, network links and TCP connection establishment for the
paper's web-server experiments (Figs 3-6).  It is deterministic: runs
with the same seed and the same process structure replay exactly.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Simulator",
    "SimEvent",
    "Timeout",
    "Process",
    "Interrupt",
    "AllOf",
    "AnyOf",
    "Resource",
    "PriorityResource",
    "Store",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised for kernel misuse (yielding a triggered event twice, ...)."""


class Interrupt(Exception):
    """Thrown into a process that is interrupted while waiting.

    ``cause`` carries an arbitrary payload supplied by the interrupter.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class SimEvent:
    """A one-shot occurrence processes can wait on.

    Life cycle: *pending* -> ``succeed``/``fail`` -> callbacks run at the
    scheduled time.  Multiple processes may wait on the same event.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_triggered", "_scheduled")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: list[Callable[[SimEvent], None]] = []
        self._value: Any = None
        self._ok = True
        self._triggered = False
        self._scheduled = False

    # -- state ---------------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def ok(self) -> bool:
        return self._ok

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("value read before event triggered")
        return self._value

    # -- triggering ----------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "SimEvent":
        """Mark the event successful; callbacks run after ``delay``."""
        self._trigger(value, ok=True, delay=delay)
        return self

    def fail(self, exc: BaseException, delay: float = 0.0) -> "SimEvent":
        """Mark the event failed; waiting processes see ``exc`` raised."""
        if not isinstance(exc, BaseException):
            raise TypeError("fail() needs an exception instance")
        self._trigger(exc, ok=False, delay=delay)
        return self

    def _trigger(self, value: Any, ok: bool, delay: float) -> None:
        if self._triggered:
            raise SimulationError("event triggered twice")
        self._triggered = True
        self._ok = ok
        self._value = value
        self.sim._schedule(self, delay)


class Timeout(SimEvent):
    """An event that fires after a fixed delay."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        super().__init__(sim)
        self._triggered = True
        self._value = value
        sim._schedule(self, delay)


class Process(SimEvent):
    """A running generator; itself an event that fires when it returns."""

    __slots__ = ("generator", "name", "_waiting_on", "_resume")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[SimEvent] = None
        # Bootstrap: run the first step at the current time.
        boot = SimEvent(sim)
        boot.callbacks.append(self._step)
        boot.succeed()

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            return
        wake = SimEvent(self.sim)
        wake.callbacks.append(self._step)
        wake.fail(Interrupt(cause))

    def _step(self, trigger: SimEvent) -> None:
        waited = self._waiting_on
        if waited is not None and trigger is not waited and waited.triggered is False:
            # An interrupt arrived while waiting on another event: detach
            # so the stale wakeup is ignored when that event fires.
            try:
                waited.callbacks.remove(self._step)
            except ValueError:
                pass
        elif waited is not None and trigger is not waited:
            # The waited event fired in the same instant as the interrupt;
            # it will call back later but we are no longer waiting on it.
            try:
                waited.callbacks.remove(self._step)
            except ValueError:
                pass
        self._waiting_on = None
        try:
            if trigger.ok:
                target = self.generator.send(trigger.value)
            else:
                target = self.generator.throw(trigger._value)
        except StopIteration as stop:
            if not self._triggered:
                self.succeed(stop.value)
            return
        except Interrupt as exc:
            if not self._triggered:
                self.fail(exc)
            return
        if not isinstance(target, SimEvent):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}, not a SimEvent"
            )
        self._waiting_on = target
        if target.triggered and target._scheduled is False:
            # Event already processed: resume immediately at current time.
            resume = SimEvent(self.sim)
            resume.callbacks.append(self._step)
            resume._triggered = True
            resume._ok = target._ok
            resume._value = target._value
            self.sim._schedule(resume, 0.0)
        else:
            target.callbacks.append(self._step)


class AllOf(SimEvent):
    """Fires when every child event has fired; value is the list of values."""

    __slots__ = ("_pending", "_children")

    def __init__(self, sim: "Simulator", events: Iterable[SimEvent]):
        super().__init__(sim)
        self._children = list(events)
        self._pending = len(self._children)
        if self._pending == 0:
            self.succeed([])
            return
        for ev in self._children:
            if ev.triggered and not ev._scheduled:
                self._on_child(ev)
            else:
                ev.callbacks.append(self._on_child)

    def _on_child(self, ev: SimEvent) -> None:
        if self._triggered:
            return
        if not ev.ok:
            self.fail(ev._value if isinstance(ev._value, BaseException)
                      else SimulationError("child event failed"))
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([c._value for c in self._children])


class AnyOf(SimEvent):
    """Fires as soon as any child event fires; value is ``(event, value)``."""

    __slots__ = ("_children",)

    def __init__(self, sim: "Simulator", events: Iterable[SimEvent]):
        super().__init__(sim)
        self._children = list(events)
        if not self._children:
            raise SimulationError("AnyOf needs at least one event")
        for ev in self._children:
            if ev.triggered and not ev._scheduled:
                self._on_child(ev)
                break
            ev.callbacks.append(self._on_child)

    def _on_child(self, ev: SimEvent) -> None:
        if self._triggered:
            return
        if ev.ok:
            self.succeed((ev, ev._value))
        else:
            self.fail(ev._value if isinstance(ev._value, BaseException)
                      else SimulationError("child event failed"))


@dataclass(order=True)
class _HeapItem:
    time: float
    seq: int
    event: SimEvent = field(compare=False)


class Simulator:
    """The event loop: virtual clock plus pending-event heap."""

    def __init__(self):
        self._now = 0.0
        self._heap: list[_HeapItem] = []
        self._seq = itertools.count()
        self._processed = 0

    # -- time ----------------------------------------------------------
    @property
    def now(self) -> float:
        return self._now

    @property
    def events_processed(self) -> int:
        return self._processed

    # -- event creation ------------------------------------------------
    def event(self) -> SimEvent:
        return SimEvent(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name)

    def all_of(self, events: Iterable[SimEvent]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[SimEvent]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------
    def _schedule(self, event: SimEvent, delay: float = 0.0) -> None:
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        event._scheduled = True
        heapq.heappush(self._heap, _HeapItem(self._now + delay, next(self._seq), event))

    def call_at(self, when: float, fn: Callable[[], None]) -> SimEvent:
        """Run a bare callback at absolute time ``when``."""
        if when < self._now:
            raise SimulationError(f"call_at({when}) is in the past (now={self._now})")
        ev = Timeout(self, when - self._now)
        ev.callbacks.append(lambda _ev: fn())
        return ev

    def call_in(self, delay: float, fn: Callable[[], None]) -> SimEvent:
        """Run a bare callback after ``delay``."""
        ev = Timeout(self, delay)
        ev.callbacks.append(lambda _ev: fn())
        return ev

    # -- running -------------------------------------------------------
    def step(self) -> None:
        item = heapq.heappop(self._heap)
        self._now = item.time
        event = item.event
        event._scheduled = False
        callbacks, event.callbacks = event.callbacks, []
        self._processed += 1
        for cb in callbacks:
            cb(event)

    def run(self, until: Optional[float] = None) -> None:
        """Run until the heap drains or the clock passes ``until``.

        When ``until`` is given, the clock is left exactly at ``until``
        even if the next event lies beyond it.
        """
        if until is not None and until < self._now:
            raise SimulationError(f"run(until={until}) is in the past")
        while self._heap:
            if until is not None and self._heap[0].time > until:
                self._now = until
                return
            self.step()
        if until is not None:
            self._now = max(self._now, until)

    def run_until_event(self, event: SimEvent, limit: Optional[float] = None) -> Any:
        """Run until ``event`` triggers; returns its value (raises if failed)."""
        while not (event.triggered and not event._scheduled):
            if not self._heap:
                raise SimulationError("event loop drained before target event fired")
            if limit is not None and self._heap[0].time > limit:
                raise SimulationError(f"time limit {limit} hit before event fired")
            self.step()
        if not event.ok:
            value = event._value
            raise value if isinstance(value, BaseException) else SimulationError(str(value))
        return event._value


class _Request(SimEvent):
    """A pending claim on a :class:`Resource` slot."""

    __slots__ = ("resource", "priority", "order")

    def __init__(self, resource: "Resource", priority: float):
        super().__init__(resource.sim)
        self.resource = resource
        self.priority = priority
        self.order = next(resource._order)

    def __enter__(self) -> "_Request":
        return self

    def __exit__(self, *exc_info) -> None:
        self.resource.release(self)


class Resource:
    """A counted FIFO resource (CPU cores, disk arms, worker slots).

    Processes ``yield res.request()`` to acquire a slot and must call
    ``res.release(req)`` (or use the request as a context manager
    together with ``release``) when done.
    """

    def __init__(self, sim: Simulator, capacity: int = 1):
        if capacity < 1:
            raise SimulationError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self._order = itertools.count()
        self._users: set[_Request] = set()
        self._queue: list[tuple[float, int, _Request]] = []

    # -- introspection ---------------------------------------------------
    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    # -- protocol ---------------------------------------------------------
    def request(self, priority: float = 0.0) -> _Request:
        req = _Request(self, priority)
        if len(self._users) < self.capacity and not self._queue:
            self._users.add(req)
            req.succeed(req)
        else:
            heapq.heappush(self._queue, (priority, req.order, req))
        return req

    def release(self, req: _Request) -> None:
        if req in self._users:
            self._users.discard(req)
        elif req.triggered:
            raise SimulationError("releasing a request that was never granted")
        else:
            # Cancel a queued request.
            self._queue = [q for q in self._queue if q[2] is not req]
            heapq.heapify(self._queue)
            return
        self._grant_next()

    def _grant_next(self) -> None:
        while self._queue and len(self._users) < self.capacity:
            _, _, nxt = heapq.heappop(self._queue)
            self._users.add(nxt)
            nxt.succeed(nxt)


class PriorityResource(Resource):
    """Alias kept for call-site clarity: priorities order the wait queue."""


class _Get(SimEvent):
    __slots__ = ()


class Store:
    """An unbounded (or bounded) FIFO buffer of items.

    ``put`` never blocks unless a ``capacity`` is given; ``get`` returns
    an event that fires when an item is available.
    """

    def __init__(self, sim: Simulator, capacity: Optional[int] = None):
        self.sim = sim
        self.capacity = capacity
        self.items: deque = deque()
        self._getters: deque[_Get] = deque()

    def __len__(self) -> int:
        return len(self.items)

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self.items) >= self.capacity

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; False when a bounded store is full."""
        if self.is_full:
            return False
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
        else:
            self.items.append(item)
        return True

    def put(self, item: Any) -> None:
        if not self.try_put(item):
            raise SimulationError("Store full; use try_put for bounded stores")

    def get(self) -> SimEvent:
        ev = _Get(self.sim)
        if self.items:
            ev.succeed(self.items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def cancel_get(self, ev: SimEvent) -> None:
        try:
            self._getters.remove(ev)  # type: ignore[arg-type]
        except ValueError:
            pass
