"""Shared network link model.

Stands in for the paper's switched Ethernet whose "actual network
bandwidth is limited to something slightly higher than 100 MBits/sec"
with a 1500-byte MTU.  Transfers are serialised FIFO on the link
resource at message granularity; per-packet framing overhead reduces the
effective payload rate exactly as the MTU does.  Propagation latency is
added outside the serialisation (it does not occupy the link).
"""

from __future__ import annotations

import math

from repro.sim.core import Resource, Simulator

__all__ = ["Link"]

ETH_HEADER = 40  # Ethernet + IP + TCP framing per packet, bytes


class Link:
    """A FIFO shared-bandwidth link."""

    def __init__(self, sim: Simulator, bandwidth_bps: float = 105e6,
                 mtu: int = 1500, latency: float = 0.0002):
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if mtu <= ETH_HEADER:
            raise ValueError("mtu too small")
        self.sim = sim
        self.bandwidth_bps = bandwidth_bps
        self.mtu = mtu
        self.latency = latency
        self._res = Resource(sim, capacity=1)
        self.bytes_carried = 0
        self.messages = 0

    def serialization_time(self, nbytes: int) -> float:
        """Wire time for ``nbytes`` of payload including packet framing."""
        payload_per_packet = self.mtu - ETH_HEADER
        packets = max(1, math.ceil(nbytes / payload_per_packet))
        wire_bytes = nbytes + packets * ETH_HEADER
        return wire_bytes * 8.0 / self.bandwidth_bps

    def transfer(self, nbytes: int):
        """Process-style transfer: ``yield from link.transfer(n)``."""
        req = self._res.request()
        yield req
        try:
            yield self.sim.timeout(self.serialization_time(nbytes))
        finally:
            self._res.release(req)
        self.bytes_carried += nbytes
        self.messages += 1
        if self.latency:
            yield self.sim.timeout(self.latency)

    @property
    def queue_length(self) -> int:
        return self._res.queue_length

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` spent serialising, reconstructed from
        the bytes carried (close enough for reporting)."""
        if elapsed <= 0:
            return 0.0
        payload_per_packet = self.mtu - ETH_HEADER
        packets = max(1, math.ceil(self.bytes_carried / payload_per_packet))
        wire = self.bytes_carried + packets * ETH_HEADER
        return min(1.0, wire * 8.0 / self.bandwidth_bps / elapsed)
