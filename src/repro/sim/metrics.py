"""Measurement collection for the simulated experiments.

Collects what the paper's figures report: per-client response counts
(Fig 4's fairness input), throughput (Fig 3, Fig 5 per content class),
and response / combined response times (Fig 6).  Recording only starts
after the warm-up time, matching "Both Web servers were warmed up
before the experiment."
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis import jain_index, summarize

__all__ = ["ExperimentMetrics"]


class ExperimentMetrics:
    """Accumulates per-request observations from client processes."""

    def __init__(self, sim, warmup: float = 0.0):
        self.sim = sim
        self.warmup = warmup
        self.responses_by_client: Dict[int, int] = defaultdict(int)
        self.bytes_by_client: Dict[int, int] = defaultdict(int)
        self.responses_by_class: Dict[str, int] = defaultdict(int)
        self.sheds_by_client: Dict[int, int] = defaultdict(int)
        self.response_times: List[float] = []
        self.combined_times: List[float] = []
        self.connect_waits: List[float] = []
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None

    @property
    def recording(self) -> bool:
        return self.sim.now >= self.warmup

    def record_response(self, client_id: int, nbytes: int,
                        response_time: float, combined_time: float,
                        content_class: str = "default") -> None:
        if not self.recording:
            return
        if self.started_at is None:
            self.started_at = self.sim.now
        self.finished_at = self.sim.now
        self.responses_by_client[client_id] += 1
        self.bytes_by_client[client_id] += nbytes
        self.responses_by_class[content_class] += 1
        self.response_times.append(response_time)
        self.combined_times.append(combined_time)

    def record_connect(self, client_id: int, wait: float) -> None:
        if self.recording:
            self.connect_waits.append(wait)

    def record_shed(self, client_id: int) -> None:
        """The client received an explicit rejection (O17: a 503 at the
        accept edge or a sojourn-deadline drop)."""
        if self.recording:
            self.sheds_by_client[client_id] += 1

    # -- summaries --------------------------------------------------------
    @property
    def total_responses(self) -> int:
        return sum(self.responses_by_client.values())

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_by_client.values())

    @property
    def total_sheds(self) -> int:
        return sum(self.sheds_by_client.values())

    def throughput(self, duration: float) -> float:
        """Responses per second over the measurement window."""
        return self.total_responses / duration if duration > 0 else 0.0

    def goodput(self, duration: float, deadline: float) -> float:
        """Responses per second whose *client-experienced* time (the
        combined response time, including the amortized connection
        wait) met the deadline.  This is the graceful-vs-cliff metric:
        a response the client had stopped waiting for is not good."""
        if duration <= 0:
            return 0.0
        good = sum(1 for t in self.combined_times if t <= deadline)
        return good / duration

    def class_throughput(self, content_class: str, duration: float) -> float:
        return (self.responses_by_class.get(content_class, 0) / duration
                if duration > 0 else 0.0)

    def fairness(self, all_clients: Optional[range] = None) -> float:
        """Jain index over per-client response counts.  ``all_clients``
        includes clients that never got service (count 0) — essential
        for the Fig 4 result."""
        if all_clients is not None:
            counts = [self.responses_by_client.get(c, 0) for c in all_clients]
        else:
            counts = list(self.responses_by_client.values())
        return jain_index(counts)

    def response_summary(self):
        return summarize(self.response_times)

    def combined_summary(self):
        return summarize(self.combined_times)
