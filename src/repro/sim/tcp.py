"""TCP connection establishment with SYN drops and exponential backoff.

The Fig 4 story hinges on this: "The extreme unfairness of Apache is
caused by the exponential backoff scheme of the TCP protocol. ... their
TCP SYN packets for establishing connections are dropped [when the
accept backlog is full].  In this case, they may wait for a significant
amount of time before doing a retransmit.  The maximal retransmission
timeout under Solaris is 1 minute."

Model: a server exposes a bounded listen queue (the kernel backlog).  A
client connect attempt succeeds if the backlog has room (the connection
then waits to be *accepted* by the server); otherwise the SYN is dropped
and the client retries after an exponentially growing timeout, capped at
``SYN_RTO_MAX``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.sim.core import SimEvent, Simulator, Store

__all__ = ["SimConnection", "ListenQueue", "connect", "SYN_RTO_INITIAL",
           "SYN_RTO_MAX"]

#: Solaris-flavoured SYN retransmission schedule
SYN_RTO_INITIAL = 3.0
SYN_RTO_MAX = 60.0

_conn_ids = itertools.count(1)


@dataclass
class SimConnection:
    """One client connection as both endpoints see it."""

    sim: Simulator
    client_id: int
    conn_id: int = field(default_factory=lambda: next(_conn_ids))
    priority: int = 0
    content_class: str = "default"
    #: triggered by the server when the connection is accepted
    accepted: SimEvent = None
    #: client -> server request rendezvous
    requests: Store = None
    #: the server shed this connection at accept (O17): ``accepted``
    #: still fires — the client got a cheap canned 503 — but no request
    #: will ever be served; honour ``retry_after`` before reconnecting
    rejected: bool = False
    retry_after: float = 0.0
    closed: bool = False
    opened_at: float = 0.0
    last_activity: float = 0.0

    def __post_init__(self):
        if self.accepted is None:
            self.accepted = self.sim.event()
        if self.requests is None:
            self.requests = Store(self.sim)
        self.opened_at = self.sim.now
        self.last_activity = self.sim.now

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            self.requests.put(None)  # EOF sentinel for a blocked reader


class ListenQueue:
    """The kernel accept backlog of a simulated server."""

    def __init__(self, sim: Simulator, backlog: int = 128):
        self.sim = sim
        self.backlog = backlog
        self.queue = Store(sim, capacity=backlog)
        self.syn_drops = 0
        self.syns = 0

    def try_syn(self, conn: SimConnection) -> bool:
        """Deliver a SYN: queued if the backlog has room, dropped else."""
        self.syns += 1
        if self.queue.try_put(conn):
            return True
        self.syn_drops += 1
        return False

    def accept(self) -> SimEvent:
        """Server side: event yielding the next queued connection."""
        return self.queue.get()

    @property
    def depth(self) -> int:
        return len(self.queue)


def connect(sim: Simulator, listen: ListenQueue, client_id: int,
            priority: int = 0, content_class: str = "default",
            rto_initial: float = SYN_RTO_INITIAL,
            rto_max: float = SYN_RTO_MAX, syn_latency: float = 0.0002,
            jitter=None):
    """Client-side connection establishment (``yield from``).

    Returns ``(connection, wait_time, attempts)`` — wait_time is the
    paper's "time a Web client waits to establish a connection".
    ``jitter()`` (when given) returns a multiplicative factor applied to
    each retransmission timeout, modelling TCP timer granularity so
    retrying clients do not stay phase-locked.
    """
    start = sim.now
    rto = rto_initial
    attempts = 0
    while True:
        attempts += 1
        if syn_latency:
            yield sim.timeout(syn_latency)
        conn = SimConnection(sim=sim, client_id=client_id, priority=priority,
                             content_class=content_class)
        if listen.try_syn(conn):
            yield conn.accepted
            return conn, sim.now - start, attempts
        factor = jitter() if jitter is not None else 1.0
        yield sim.timeout(rto * factor)
        rto = min(rto * 2.0, rto_max)
