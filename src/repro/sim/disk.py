"""Disk and OS buffer cache models.

The paper's testbed: COPS-HTTP has a 20 MB application file cache and
"the file system has a memory buffer of size 80 MB"; the 204.8 MB
SpecWeb99 set does not fit, so misses reach the disk.

The OS buffer cache reuses the *real* cache implementation
(:class:`repro.cache.Cache` with LRU) over size-only entries — the same
replacement code the generated servers run.
"""

from __future__ import annotations

from repro.cache import Cache, LRUPolicy
from repro.sim.core import Resource, Simulator

__all__ = ["OsBufferCache", "Disk"]


class OsBufferCache:
    """Size-budgeted LRU page cache keyed by file path."""

    def __init__(self, capacity_bytes: int = 80 * 1024 * 1024):
        self.cache = Cache(capacity=capacity_bytes, policy=LRUPolicy())

    def lookup(self, path: str, size: int) -> bool:
        """True on hit.  A miss inserts the file (read-through)."""
        if self.cache.get(path) is not None:
            return True
        self.cache.put(path, size)
        return False

    @property
    def stats(self):
        return self.cache.stats


class Disk:
    """Single-arm disk: seek + transfer, FIFO-serialised."""

    def __init__(self, sim: Simulator, seek_time: float = 0.008,
                 bandwidth_bps: float = 320e6,
                 buffer_cache: OsBufferCache | None = None):
        self.sim = sim
        self.seek_time = seek_time
        self.bandwidth_bps = bandwidth_bps
        self.buffer = buffer_cache if buffer_cache is not None else OsBufferCache()
        self._arm = Resource(sim, capacity=1)
        self.physical_reads = 0
        self.buffered_reads = 0

    def service_time(self, nbytes: int) -> float:
        return self.seek_time + nbytes * 8.0 / self.bandwidth_bps

    def read(self, path: str, nbytes: int):
        """Process-style read: fast on an OS-buffer hit, seek+transfer
        on a miss.  ``yield from disk.read(path, n)``."""
        if self.buffer.lookup(path, nbytes):
            self.buffered_reads += 1
            # Memory copy cost: effectively instantaneous at this scale.
            yield self.sim.timeout(nbytes / 4e9)
            return
        req = self._arm.request()
        yield req
        try:
            yield self.sim.timeout(self.service_time(nbytes))
        finally:
            self._arm.release(req)
        self.physical_reads += 1

    @property
    def queue_length(self) -> int:
        return self._arm.queue_length
