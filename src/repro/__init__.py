"""Reproduction of *Using Generative Design Patterns to Develop Network
Server Applications* (Guo, Schaeffer, Szafron, Earl — IPPS 2005).

The package is organised around the paper's three layers:

``repro.co2p3s``
    The generative design-pattern engine and the N-Server pattern
    template.  ``generate_nserver(options, dest)`` emits a custom
    event-driven server framework as plain Python source.

``repro.runtime``, ``repro.cache``, ``repro.http``, ``repro.ftp``
    The library substrate the generated frameworks import: Reactor /
    Proactor machinery, file caching, protocol libraries.

``repro.sim``, ``repro.workload``, ``repro.analysis``
    The evaluation testbed: a discrete-event simulator standing in for
    the paper's Sun/Ethernet hardware, SpecWeb99-like workloads, and the
    metrics (throughput, Jain fairness, response time) the paper reports.

See ``DESIGN.md`` for the full system inventory and ``EXPERIMENTS.md``
for paper-vs-measured results for every table and figure.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
