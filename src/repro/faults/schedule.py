"""Seeded, deterministic fault schedules.

A :class:`FaultSchedule` turns a :class:`FaultSpec` (per-operation fault
probabilities) plus one integer seed into a reproducible stream of
fault decisions.  Each *stream* (one per connection, one for the disk,
one for the handler hooks) owns its own PRNG whose seed is derived from
the master seed and the stream name with a stable hash — ``hash()``
varies across interpreter runs, so :mod:`hashlib` does the derivation.
Two schedules built from the same spec and seed therefore produce
identical per-stream decision sequences regardless of thread timing,
which is what makes a failing fault run replayable.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple
import random

from repro.obs.flight import GLOBAL as GLOBAL_FLIGHT

__all__ = ["FaultSpec", "FaultAction", "FaultSchedule"]


@dataclass
class FaultSpec:
    """Per-operation fault probabilities (all default 0.0 = no faults).

    ``recv``/``send`` decisions are evaluated in the order reset →
    eagain → partial, from a single uniform draw per operation, so the
    probabilities of one operation must sum to at most 1.
    """

    # -- socket reads -------------------------------------------------------
    recv_reset: float = 0.0       # mid-stream connection reset (EOF + close)
    recv_eagain: float = 0.0      # spurious EAGAIN (readiness lied)
    partial_read: float = 0.0     # cap the read at partial_read_bytes
    partial_read_bytes: int = 1
    # -- socket writes ------------------------------------------------------
    send_reset: float = 0.0       # peer reset while flushing
    send_eagain: float = 0.0      # kernel buffer "full"
    partial_write: float = 0.0    # flush at most partial_write_bytes
    partial_write_bytes: int = 1
    # -- disk ---------------------------------------------------------------
    disk_error: float = 0.0       # OSError from the file-I/O loader
    # -- application hooks ---------------------------------------------------
    handler_error: float = 0.0    # hook raises HandlerFault (an Exception)
    handler_crash: float = 0.0    # hook raises WorkerCrash (a BaseException)

    def thresholds(self) -> Dict[str, Tuple[Tuple[str, float], ...]]:
        """op -> ordered (kind, probability) decision table."""
        return {
            "recv": (("reset", self.recv_reset),
                     ("eagain", self.recv_eagain),
                     ("partial", self.partial_read)),
            "send": (("reset", self.send_reset),
                     ("eagain", self.send_eagain),
                     ("partial", self.partial_write)),
            "disk": (("error", self.disk_error),),
            "handle": (("crash", self.handler_crash),
                       ("error", self.handler_error)),
        }


@dataclass(frozen=True)
class FaultAction:
    """One recorded decision: the ``seq``-th draw on ``stream``."""

    seq: int
    stream: str
    op: str
    kind: str


def _derive_seed(seed: int, stream: str) -> int:
    digest = hashlib.sha256(f"{seed}/{stream}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class FaultSchedule:
    """Deterministic per-stream fault decisions from a single seed.

    Thread-safe: streams are created and drawn from under a lock (the
    draws themselves are per-stream sequential, so per-stream sequences
    are reproducible even when many connections interleave).
    """

    def __init__(self, spec: FaultSpec, seed: int = 0):
        self.spec = spec
        self.seed = seed
        self._thresholds = spec.thresholds()
        #: flight recorder that sees every injected (non-ok) decision, so
        #: a fault run's post-mortem dump carries the injections inline
        #: with the lifecycle events.  ``FaultPlane.install`` repoints
        #: this at the target server's own recorder.
        self.flight = GLOBAL_FLIGHT
        self._lock = threading.Lock()
        self._rngs: Dict[str, random.Random] = {}
        self._seq: Dict[str, int] = {}
        self._stream_counters: Dict[str, int] = {}
        self._log: List[FaultAction] = []

    # -- stream management ----------------------------------------------------
    def next_stream(self, prefix: str = "conn") -> str:
        """A fresh stream name (``conn-0``, ``conn-1``, ...).  Naming by
        arrival order — not by peer address, whose ephemeral port would
        differ between runs — keeps stream identity reproducible."""
        with self._lock:
            n = self._stream_counters.get(prefix, 0)
            self._stream_counters[prefix] = n + 1
        return f"{prefix}-{n}"

    # -- decisions -----------------------------------------------------------
    def decide(self, op: str, stream: str, trace_id: int = 0) -> str:
        """Draw the next fault decision for ``op`` on ``stream``.

        Returns the fault kind (``"reset"``, ``"eagain"``, ``"partial"``,
        ``"error"``, ``"crash"``) or ``"ok"``.  Injected decisions are
        mirrored into the flight recorder, stamped with the connection's
        ``trace_id`` when the caller knows it.
        """
        with self._lock:
            rng = self._rngs.get(stream)
            if rng is None:
                rng = random.Random(_derive_seed(self.seed, stream))
                self._rngs[stream] = rng
                self._seq[stream] = 0
            draw = rng.random()
            kind = "ok"
            for candidate, probability in self._thresholds[op]:
                if draw < probability:
                    kind = candidate
                    break
                draw -= probability
            seq = self._seq[stream]
            self._seq[stream] = seq + 1
            self._log.append(FaultAction(seq=seq, stream=stream,
                                         op=op, kind=kind))
        if kind != "ok":
            # outside the schedule lock: the recorder interns category
            # codes under its own lock and nesting the two is pointless
            self.flight.record("fault", f"{stream} {op} {kind}", trace_id)
        return kind

    # -- inspection -----------------------------------------------------------
    def actions(self, stream: Optional[str] = None) -> List[FaultAction]:
        """Recorded decisions; a per-stream slice is deterministic for a
        given seed (the global interleaving is not)."""
        with self._lock:
            log = list(self._log)
        if stream is None:
            return log
        return [a for a in log if a.stream == stream]

    def injected(self, stream: Optional[str] = None) -> List[FaultAction]:
        """Only the decisions that actually injected a fault."""
        return [a for a in self.actions(stream) if a.kind != "ok"]

    def counts(self) -> Dict[str, int]:
        """fault kind -> number of injections (``ok`` excluded)."""
        out: Dict[str, int] = {}
        for action in self.actions():
            if action.kind != "ok":
                out[action.kind] = out.get(action.kind, 0) + 1
        return out
