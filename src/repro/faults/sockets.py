"""Fault-injecting socket handles.

:func:`faulty_handle_cls` builds a dynamic subclass of any
:class:`~repro.runtime.handles.SocketHandle`-compatible base (the
library handle or a generated framework's ``Handle``) whose
``try_recv``/``try_send`` consult a :class:`FaultSchedule` before
touching the real socket:

* ``eagain`` — report "would block" although the kernel had data/room
  (an EAGAIN storm is just this fault at high probability);
* ``reset``  — simulate a mid-stream connection reset: the handle closes
  and the runtime sees the usual EOF/closed-handle path;
* ``partial`` — cap the operation at a few bytes, modelling a trickling
  peer or a congested send buffer.

Faults are injected *above* the socket, so the peer is unaffected —
what is being tested is how the server reacts to the syscall outcomes.
"""

from __future__ import annotations

from repro.faults.schedule import FaultSchedule
from repro.runtime.handles import SocketHandle

__all__ = ["faulty_handle_cls"]


def faulty_handle_cls(schedule: FaultSchedule, base: type = SocketHandle,
                      stream_prefix: str = "conn") -> type:
    """A ``base`` subclass whose socket I/O consults ``schedule``.

    Handles name their fault stream by construction order
    (``conn-0``, ``conn-1``, ...), so per-connection fault sequences
    replay exactly under the same seed.
    """

    class FaultySocketHandle(base):  # type: ignore[misc, valid-type]

        def __init__(self, sock, name: str = ""):
            super().__init__(sock, name=name)
            self.fault_stream = schedule.next_stream(stream_prefix)

        def try_recv(self, max_bytes: int = 65536):
            kind = schedule.decide("recv", self.fault_stream,
                                   trace_id=getattr(self, "trace_id", 0))
            if kind == "eagain":
                return None
            if kind == "reset":
                self.close()
                return b""
            if kind == "partial":
                max_bytes = max(1, min(max_bytes,
                                       schedule.spec.partial_read_bytes))
            return super().try_recv(max_bytes)

        def try_send(self) -> int:
            if not self.out_buffer:
                return 0
            kind = schedule.decide("send", self.fault_stream,
                                   trace_id=getattr(self, "trace_id", 0))
            if kind == "eagain":
                return 0
            if kind == "reset":
                self.close()
                return 0
            if kind == "partial":
                return self._send_capped(schedule.spec.partial_write_bytes)
            return super().try_send()

        def _send_capped(self, cap: int) -> int:
            chunk = bytes(self.out_buffer[:max(1, cap)])
            try:
                n = self.sock.send(chunk)
            except BlockingIOError:
                return 0
            except (ConnectionResetError, BrokenPipeError):
                self.close()
                return 0
            del self.out_buffer[:n]
            return n

    FaultySocketHandle.__name__ = f"Faulty{base.__name__}"
    FaultySocketHandle.__qualname__ = FaultySocketHandle.__name__
    return FaultySocketHandle
