"""The fault plane facade: one object wiring a schedule into a server.

A :class:`FaultPlane` owns a :class:`FaultSchedule` and knows the three
injection seams:

* accepted sockets — via a fault-injecting ``handle_cls`` installed on
  the server's :class:`~repro.runtime.handles.ListenHandle`;
* the async file-I/O loader — via ``AsyncFileIO.fault_hook``;
* the application hooks — via :meth:`wrap_hooks` (done by the caller at
  construction time, since hooks are baked into the server).

``install`` understands both server shapes in this repo: the library
:class:`~repro.runtime.server.ReactorServer` (install *before*
``start()``: its listen handle is created at start) and a generated
framework's ``Server`` facade (whose Reactor builds the listen handle
at construction, so install any time before ``start()``).
"""

from __future__ import annotations

import errno
from typing import Callable, Optional

from repro.faults.hooks import FaultyHooks
from repro.faults.schedule import FaultSchedule, FaultSpec
from repro.faults.sockets import faulty_handle_cls
from repro.runtime.handles import SocketHandle

__all__ = ["FaultPlane"]


class FaultPlane:
    """Facade bundling a seeded schedule with its injection adapters."""

    def __init__(self, spec: Optional[FaultSpec] = None, seed: int = 0):
        self.spec = spec if spec is not None else FaultSpec()
        self.schedule = FaultSchedule(self.spec, seed=seed)

    # -- adapters ------------------------------------------------------------
    def handle_cls(self, base: type = SocketHandle) -> type:
        """A fault-injecting subclass of ``base`` for accepted sockets."""
        return faulty_handle_cls(self.schedule, base=base)

    def wrap_hooks(self, hooks) -> FaultyHooks:
        """Wrap application hooks so Handle Request consults the plane."""
        return FaultyHooks(hooks, self.schedule)

    def file_fault_hook(self) -> Callable[[str], None]:
        """A hook for ``AsyncFileIO.fault_hook``: raises ``OSError`` for
        reads the schedule marks as disk errors."""
        def hook(path: str) -> None:
            if self.schedule.decide("disk", "disk") == "error":
                raise OSError(errno.EIO, f"injected disk error: {path}")
        return hook

    # -- installation ---------------------------------------------------------
    def install(self, server):
        """Attach socket and disk faults to a not-yet-started server.

        Understands all four server shapes: the library
        ``ReactorServer`` and ``ShardedReactorServer`` and the generated
        ``Server`` facade in its single-reactor and O14-sharded forms.
        In the sharded shapes the single accept plane gets the faulty
        handle class (every accepted socket passes through it) and each
        shard's own file loader gets the disk-fault hook.

        Returns the server for chaining.  Hook faults are separate —
        pass ``plane.wrap_hooks(hooks)`` when building the server.
        """
        # Injected-fault events should land in the target server's own
        # flight ring (next to its lifecycle events), not the process
        # global — when the server exposes one.
        flight = getattr(server, "flight", None)
        if flight is not None:
            self.schedule.flight = flight
        sharding = getattr(server, "sharding", None)
        reactor = getattr(server, "reactor", None)
        if sharding is not None and reactor is not None:
            # Generated O14 facade: only the primary listens; every
            # shard loads files through its own AsyncFileIO.
            listen = reactor.server_component.listen
            listen.handle_cls = self.handle_cls(base=listen.handle_cls)
            self._install_shard_file_faults(sharding.shards)
            return server
        if reactor is not None:
            # Generated framework facade: the listen handle exists.
            listen = reactor.server_component.listen
            listen.handle_cls = self.handle_cls(base=listen.handle_cls)
            file_io = getattr(reactor, "file_io", None)
        elif hasattr(server, "shards"):
            # Library ShardedReactorServer: the accept plane's listen
            # handle is created at start().
            server.handle_cls = self.handle_cls(
                base=server.handle_cls or SocketHandle)
            self._install_shard_file_faults(server.shards)
            return server
        else:
            # Library ReactorServer: listen handle is created at start().
            server.handle_cls = self.handle_cls(
                base=server.handle_cls or SocketHandle)
            file_io = getattr(server, "file_io", None)
        if file_io is not None:
            file_io.fault_hook = self.file_fault_hook()
        return server

    def _install_shard_file_faults(self, shards) -> None:
        for shard in shards:
            file_io = getattr(shard, "file_io", None)
            if file_io is not None:
                file_io.fault_hook = self.file_fault_hook()

    # -- inspection -----------------------------------------------------------
    @property
    def log(self):
        return self.schedule.actions()

    def counts(self):
        return self.schedule.counts()
