"""Fault-injecting application hooks.

:class:`FaultyHooks` wraps any :class:`~repro.runtime.communicator.ServerHooks`
object and injects failures into the Handle Request step per the
schedule's ``handle`` stream:

* :class:`HandlerFault` (an ``Exception``) — the ordinary buggy-handler
  case.  The Communicator's pipeline catches it, records an error and
  closes the connection; the server keeps running.
* :class:`WorkerCrash` (a ``BaseException``) — the worst case: it
  escapes both the Communicator pipeline and the Event Processor's
  Exception guard, killing the worker thread mid-event.  This is the
  fault the O13 worker supervisor exists to survive.  With no processor
  pool (O2=No) the event-dispatching thread itself would die — which is
  exactly the wedge fault tolerance is for; only inject it into pooled
  configurations unless that is the point.
"""

from __future__ import annotations

from repro.faults.schedule import FaultSchedule

__all__ = ["HandlerFault", "WorkerCrash", "FaultyHooks"]


class HandlerFault(Exception):
    """Injected handler failure (survivable: an ordinary Exception)."""


class WorkerCrash(BaseException):
    """Injected worker-killing failure.

    Deliberately a ``BaseException``: the runtime's ``except Exception``
    guards — the Communicator pipeline and the Event Processor worker
    loop — must not catch it, so it tears down the worker thread the
    way a real interpreter-level failure would.
    """


class FaultyHooks:
    """Delegating wrapper around application hooks.

    Not a ``ServerHooks`` subclass on purpose: inherited defaults would
    shadow the wrapped object's overrides.  Every hook the framework
    calls is forwarded; only ``handle`` consults the fault schedule.
    """

    def __init__(self, inner, schedule: FaultSchedule,
                 stream: str = "handler"):
        self.inner = inner
        self.schedule = schedule
        self.stream = stream

    # -- the faulted step ----------------------------------------------------
    def handle(self, request, conn):
        kind = self.schedule.decide(
            "handle", self.stream,
            trace_id=getattr(conn.handle, "trace_id", 0))
        if kind == "crash":
            raise WorkerCrash(f"injected worker crash on {conn.handle.name}")
        if kind == "error":
            raise HandlerFault(f"injected handler error on {conn.handle.name}")
        return self.inner.handle(request, conn)

    # -- transparent delegation ----------------------------------------------
    def split_request(self, data):
        return self.inner.split_request(data)

    def decode(self, raw, conn):
        return self.inner.decode(raw, conn)

    def encode(self, result, conn):
        return self.inner.encode(result, conn)

    def on_connect(self, conn):
        return self.inner.on_connect(conn)

    def on_close(self, conn):
        return self.inner.on_close(conn)

    def classify_priority(self, conn):
        return self.inner.classify_priority(conn)

    def __getattr__(self, name):
        # Optional hooks (on_timer, server_greeting, make_cache_policy,
        # application helpers) resolve against the wrapped object; the
        # framework probes for them with hasattr.
        return getattr(self.inner, name)
