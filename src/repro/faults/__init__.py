"""Deterministic fault-injection plane for the N-Server runtime.

Wraps the runtime's I/O seams — :class:`~repro.runtime.handles.SocketHandle`,
the application hook methods, and the async file-I/O loader — with
seeded, scriptable fault schedules: partial reads/writes, ``EAGAIN``
storms, mid-stream resets, disk-read errors and injected handler
exceptions.  Every decision comes from a per-stream PRNG derived from a
single seed, so a failing run replays exactly; nothing here is wired
into a server unless a :class:`FaultPlane` is explicitly installed, so
production builds carry zero overhead.

The hostile-client helpers (:func:`trickle_send`, :func:`abrupt_reset`)
attack from the *outside* — slow-peer trickle and RST injection — which
no server-side wrapper can emulate.
"""

from repro.faults.clients import abrupt_reset, trickle_send
from repro.faults.hooks import FaultyHooks, HandlerFault, WorkerCrash
from repro.faults.plane import FaultPlane
from repro.faults.schedule import FaultAction, FaultSchedule, FaultSpec
from repro.faults.sockets import faulty_handle_cls

__all__ = [
    "FaultAction",
    "FaultPlane",
    "FaultSchedule",
    "FaultSpec",
    "FaultyHooks",
    "HandlerFault",
    "WorkerCrash",
    "abrupt_reset",
    "faulty_handle_cls",
    "trickle_send",
]
