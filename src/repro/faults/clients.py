"""Hostile clients: faults no server-side wrapper can emulate.

These drive a real socket from the peer side — a slow-loris byte
trickle and an abrupt RST — for tests and demos that need the kernel to
deliver the hostility (partial segments arriving over time, a genuine
ECONNRESET) rather than a simulated syscall outcome.
"""

from __future__ import annotations

import socket
import struct
import time

__all__ = ["trickle_send", "abrupt_reset"]


def trickle_send(sock: socket.socket, data: bytes, chunk: int = 1,
                 delay: float = 0.02, deadline: float = None) -> int:
    """Slow-loris: send ``data`` in ``chunk``-byte pieces with ``delay``
    between them.  Returns bytes actually sent; stops early (without
    raising) if the server closes the connection or ``deadline`` (a
    ``time.monotonic`` value) passes — a deadline-enforcing server is
    *expected* to hang up on this client.
    """
    sent = 0
    for start in range(0, len(data), max(1, chunk)):
        if deadline is not None and time.monotonic() >= deadline:
            break
        piece = data[start:start + max(1, chunk)]
        try:
            sock.sendall(piece)
        except OSError:
            break
        sent += len(piece)
        time.sleep(delay)
    return sent


def abrupt_reset(sock: socket.socket) -> None:
    """Close with an RST instead of a FIN (SO_LINGER with zero timeout),
    so the server observes ECONNRESET mid-stream."""
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                        struct.pack("ii", 1, 0))
    except OSError:
        pass
    sock.close()
