"""SMTP session state machine (RFC 5321 subset).

The paper lists a mail server among the applications the N-Server
pattern can generate ("the pattern can be used to generate a mail
server, time server, or any other network-based server").  Like the FTP
session machine, this is transport-agnostic: feed it one framed unit at
a time (a command line, or — in DATA mode — a whole dot-terminated
message) and it returns reply bytes.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.smtp.mailbox import MailStore, Message

__all__ = ["SmtpSession", "MAX_MESSAGE_BYTES"]

MAX_MESSAGE_BYTES = 10 * 1024 * 1024

_ADDRESS = re.compile(r"<([^<>\s]+@[^<>\s]+|[^<>\s]*)>")


class SmtpSession:
    """Per-connection SMTP protocol state."""

    def __init__(self, store: MailStore, hostname: str = "cops-mail"):
        self.store = store
        self.hostname = hostname
        self.helo: Optional[str] = None
        self.sender: Optional[str] = None
        self.recipients: List[str] = []
        self.in_data = False
        self.closed = False
        self.messages_accepted = 0

    # -- framing help for the server hooks --------------------------------
    def greeting(self) -> bytes:
        return f"220 {self.hostname} COPS-Mail (repro) ready\r\n".encode()

    def split_unit(self, data: bytes) -> Optional[Tuple[bytes, bytes]]:
        """One protocol unit: a CRLF line, or a full dot-terminated
        message while in DATA mode."""
        if self.in_data:
            end = data.find(b"\r\n.\r\n")
            if end == -1:
                if data == b".\r\n":  # empty message body
                    return data, b""
                if len(data) > MAX_MESSAGE_BYTES:
                    # Let handle() reject it; keep framing progress.
                    return bytes(data), b""
                return None
            return bytes(data[:end + 5]), bytes(data[end + 5:])
        if b"\n" not in data:
            return None
        line, rest = data.split(b"\n", 1)
        return line + b"\n", rest

    # -- protocol ------------------------------------------------------------
    def handle(self, unit: bytes) -> bytes:
        if self.in_data:
            return self._finish_data(unit)
        text = unit.decode("latin-1", "replace").rstrip("\r\n")
        verb, _, arg = text.partition(" ")
        verb = verb.upper()
        handler = getattr(self, f"_cmd_{verb.lower()}", None)
        if handler is None:
            return b"500 5.5.2 Command not recognized\r\n"
        return handler(arg.strip())

    # -- commands ----------------------------------------------------------------
    def _cmd_helo(self, arg: str) -> bytes:
        if not arg:
            return b"501 5.5.4 HELO requires a domain\r\n"
        self.helo = arg
        return f"250 {self.hostname} Hello {arg}\r\n".encode()

    def _cmd_ehlo(self, arg: str) -> bytes:
        if not arg:
            return b"501 5.5.4 EHLO requires a domain\r\n"
        self.helo = arg
        return (f"250-{self.hostname} Hello {arg}\r\n"
                f"250-SIZE {MAX_MESSAGE_BYTES}\r\n"
                "250 8BITMIME\r\n").encode()

    def _cmd_mail(self, arg: str) -> bytes:
        if self.helo is None:
            return b"503 5.5.1 Say HELO first\r\n"
        if self.sender is not None:
            return b"503 5.5.1 Nested MAIL command\r\n"
        if not arg.upper().startswith("FROM:"):
            return b"501 5.5.4 Syntax: MAIL FROM:<address>\r\n"
        match = _ADDRESS.search(arg)
        if match is None:
            return b"501 5.1.7 Bad sender address syntax\r\n"
        self.sender = match.group(1)
        return b"250 2.1.0 Sender ok\r\n"

    def _cmd_rcpt(self, arg: str) -> bytes:
        if self.sender is None:
            return b"503 5.5.1 Need MAIL before RCPT\r\n"
        if not arg.upper().startswith("TO:"):
            return b"501 5.5.4 Syntax: RCPT TO:<address>\r\n"
        match = _ADDRESS.search(arg)
        if match is None or "@" not in match.group(1):
            return b"501 5.1.3 Bad recipient address syntax\r\n"
        self.recipients.append(match.group(1))
        return b"250 2.1.5 Recipient ok\r\n"

    def _cmd_data(self, arg: str) -> bytes:
        if not self.recipients:
            return b"503 5.5.1 Need RCPT before DATA\r\n"
        self.in_data = True
        return b"354 End data with <CR><LF>.<CR><LF>\r\n"

    def _finish_data(self, unit: bytes) -> bytes:
        self.in_data = False
        if len(unit) > MAX_MESSAGE_BYTES:
            self._reset_envelope()
            return b"552 5.3.4 Message too big\r\n"
        body = unit[:-5] if unit.endswith(b"\r\n.\r\n") else unit[:-3]
        # Dot-unstuffing per RFC 5321 4.5.2.
        body = body.replace(b"\r\n..", b"\r\n.")
        self.store.deliver(Message(sender=self.sender,
                                   recipients=tuple(self.recipients),
                                   body=body))
        self.messages_accepted += 1
        self._reset_envelope()
        return b"250 2.0.0 Message accepted for delivery\r\n"

    def _cmd_rset(self, arg: str) -> bytes:
        self._reset_envelope()
        return b"250 2.0.0 Reset state\r\n"

    def _cmd_noop(self, arg: str) -> bytes:
        return b"250 2.0.0 OK\r\n"

    def _cmd_vrfy(self, arg: str) -> bytes:
        return b"252 2.5.2 Cannot VRFY; try RCPT\r\n"

    def _cmd_quit(self, arg: str) -> bytes:
        self.closed = True
        return f"221 2.0.0 {self.hostname} closing connection\r\n".encode()

    def _reset_envelope(self) -> None:
        self.sender = None
        self.recipients = []
