"""SMTP protocol library: the substrate for the mail-server application
the paper names among the N-Server's uses."""

from repro.smtp.mailbox import MailStore, Message
from repro.smtp.session import MAX_MESSAGE_BYTES, SmtpSession

__all__ = ["MAX_MESSAGE_BYTES", "MailStore", "Message", "SmtpSession"]
