"""In-memory mail store for the mail-server application."""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = ["Message", "MailStore"]

_msg_ids = itertools.count(1)


@dataclass
class Message:
    sender: str
    recipients: Tuple[str, ...]
    body: bytes
    msg_id: int = field(default_factory=lambda: next(_msg_ids))
    received_at: float = field(default_factory=time.time)


class MailStore:
    """Thread-safe per-recipient mailbox map."""

    def __init__(self):
        self._lock = threading.Lock()
        self._boxes: Dict[str, List[Message]] = {}
        self.delivered = 0

    def deliver(self, message: Message) -> None:
        with self._lock:
            for rcpt in message.recipients:
                self._boxes.setdefault(rcpt.lower(), []).append(message)
            self.delivered += 1

    def messages_for(self, recipient: str) -> List[Message]:
        with self._lock:
            return list(self._boxes.get(recipient.lower(), []))

    def mailbox_count(self) -> int:
        with self._lock:
            return len(self._boxes)
