"""Unit tests for EventDispatcher routing and the Acceptor/Connector."""

import socket
import time

import pytest

from repro.runtime import (
    Acceptor,
    Connector,
    EventDispatcher,
    EventKind,
    ListenHandle,
    NullEventSource,
    OverloadController,
    QueueEventSource,
    SocketEventSource,
    TimerEvent,
    UserEvent,
)


# -- dispatcher ----------------------------------------------------------------


def make_dispatcher():
    source = QueueEventSource(NullEventSource())
    return source, EventDispatcher(source, poll_timeout=0.01)


def test_routes_by_kind():
    source, dispatcher = make_dispatcher()
    got = {"user": [], "timer": []}
    dispatcher.route(EventKind.USER, lambda e: got["user"].append(e.payload))
    dispatcher.route(EventKind.TIMER, lambda e: got["timer"].append(e.payload))
    source.post(UserEvent(payload="u"))
    source.post(TimerEvent(payload="t"))
    dispatcher.poll_once(timeout=0.0)
    assert got == {"user": ["u"], "timer": ["t"]}
    assert dispatcher.dispatched == 2


def test_default_route_catches_unrouted():
    source, dispatcher = make_dispatcher()
    fallback = []
    dispatcher.route_default(fallback.append)
    source.post(UserEvent(payload="x"))
    dispatcher.poll_once(timeout=0.0)
    assert len(fallback) == 1


def test_unrouted_counted_not_crashing():
    source, dispatcher = make_dispatcher()
    source.post(UserEvent())
    dispatcher.poll_once(timeout=0.0)
    assert dispatcher.unrouted == 1


def test_thread_count_validation():
    with pytest.raises(ValueError):
        EventDispatcher(NullEventSource(), threads=0)


def test_background_loop_dispatches():
    source, dispatcher = make_dispatcher()
    got = []
    dispatcher.route(EventKind.USER, lambda e: got.append(e.payload))
    dispatcher.start()
    try:
        source.post(UserEvent(payload=1))
        deadline = time.monotonic() + 2
        while not got and time.monotonic() < deadline:
            time.sleep(0.01)
        assert got == [1]
    finally:
        dispatcher.stop()
    assert not dispatcher.running


def test_start_stop_idempotent():
    _, dispatcher = make_dispatcher()
    dispatcher.start()
    dispatcher.start()
    dispatcher.stop()
    dispatcher.stop()


# -- acceptor --------------------------------------------------------------------


def test_acceptor_accepts_and_wires_connection():
    source = SocketEventSource()
    listen = ListenHandle()
    conns = []
    acceptor = Acceptor(listen, source, on_connection=conns.append)
    acceptor.open()
    client = socket.create_connection(("127.0.0.1", listen.port), timeout=2)
    try:
        deadline = time.monotonic() + 2
        while not conns and time.monotonic() < deadline:
            for event in source.poll(0.05):
                if event.kind == EventKind.ACCEPT:
                    acceptor.handle(event)
        assert len(conns) == 1
        assert acceptor.accepted == 1
    finally:
        client.close()
        acceptor.close()
        source.close()


def test_acceptor_postpones_when_overloaded():
    source = SocketEventSource()
    listen = ListenHandle()
    conns = []
    # A watched queue that is permanently over its watermark.
    from repro.runtime import Watermark

    overload = OverloadController()
    overload.watch("q", probe=lambda: 100, mark=Watermark(high=20, low=5))
    acceptor = Acceptor(listen, source, on_connection=conns.append,
                        overload=overload)
    acceptor.open()
    client = socket.create_connection(("127.0.0.1", listen.port), timeout=2)
    try:
        deadline = time.monotonic() + 1
        while time.monotonic() < deadline:
            for event in source.poll(0.05):
                if event.kind == EventKind.ACCEPT:
                    acceptor.handle(event)
        assert conns == []
        assert acceptor.postponed > 0
    finally:
        client.close()
        acceptor.close()
        source.close()


def test_acceptor_drains_burst():
    source = SocketEventSource()
    listen = ListenHandle()
    conns = []
    acceptor = Acceptor(listen, source, on_connection=conns.append)
    acceptor.open()
    clients = [socket.create_connection(("127.0.0.1", listen.port), timeout=2)
               for _ in range(5)]
    try:
        deadline = time.monotonic() + 2
        while len(conns) < 5 and time.monotonic() < deadline:
            for event in source.poll(0.05):
                if event.kind == EventKind.ACCEPT:
                    acceptor.handle(event)
        assert len(conns) == 5
    finally:
        for c in clients:
            c.close()
        acceptor.close()
        source.close()


# -- connector -----------------------------------------------------------------------


def test_connector_establishes_outbound():
    listener = socket.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    port = listener.getsockname()[1]
    connector = Connector(timeout=2.0)
    handle = connector.connect("127.0.0.1", port)
    try:
        server_side, _ = listener.accept()
        handle.out_buffer.extend(b"ping")
        handle.try_send()
        server_side.settimeout(2)
        assert server_side.recv(4) == b"ping"
        server_side.close()
        assert connector.connected == 1
    finally:
        handle.close()
        listener.close()


def test_connector_refused():
    connector = Connector(timeout=0.5)
    with pytest.raises(OSError):
        connector.connect("127.0.0.1", 1)  # nothing listens there


def test_connector_custom_handle_class():
    from repro.runtime import SocketHandle

    class MyHandle(SocketHandle):
        pass

    listener = socket.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    connector = Connector(timeout=2.0, handle_cls=MyHandle)
    handle = connector.connect("127.0.0.1", listener.getsockname()[1])
    assert isinstance(handle, MyHandle)
    handle.close()
    listener.close()
