"""Unit tests for the O17 graceful-degradation primitives.

The classes under test are exactly what both the live ReactorServer and
the simulation testbed run — everything is clock-injectable, so these
tests drive them deterministically with a hand-rolled fake clock.
"""

import pytest

from repro.obs.flight import FlightRecorder
from repro.runtime.degradation import (
    REASON_MAX_CONNECTIONS,
    REASON_OVERLOAD,
    REASON_PRIORITY,
    REASON_RATE_LIMIT,
    AdaptiveController,
    BrownoutController,
    CircuitBreaker,
    CircuitOpenError,
    ClientRateLimiter,
    RetryBudget,
    ShedDecision,
    SheddingPolicy,
    SojournQueue,
    hill_climb,
    reject_handle,
    rejection_response,
)
from repro.runtime.overload import OverloadController, Watermark
from repro.runtime.scheduler import FifoEventQueue


class Clock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


# -- the cheap rejection write path ---------------------------------------

def test_rejection_response_shape():
    payload = rejection_response(retry_after=2.4, reason="rate-limit")
    head, _, body = payload.partition(b"\r\n\r\n")
    lines = head.split(b"\r\n")
    assert lines[0] == b"HTTP/1.1 503 Service Unavailable"
    assert b"Retry-After: 2" in lines
    assert b"Connection: close" in lines
    assert b"X-Shed-Reason: rate-limit" in lines
    assert b"Content-Length: %d" % len(body) in lines


def test_rejection_response_retry_after_floor():
    # sub-second retry hints still render a valid non-zero header
    assert b"Retry-After: 1\r\n" in rejection_response(retry_after=0.05)
    # no reason -> no X-Shed-Reason header at all
    assert b"X-Shed-Reason" not in rejection_response()


class FakeHandle:
    def __init__(self):
        self.out_buffer = b""
        self.sends = 0
        self.closed = False

    def try_send(self):
        self.sends += 1

    def close(self):
        self.closed = True


def test_reject_handle_flushes_and_closes():
    handle = FakeHandle()
    reject_handle(handle, b"503!")
    assert handle.out_buffer == b"503!"
    assert handle.sends == 1 and handle.closed


def test_reject_handle_empty_payload_closes_silently():
    handle = FakeHandle()
    reject_handle(handle, b"")
    assert handle.sends == 0 and handle.closed


# -- per-client rate limiting ---------------------------------------------

def test_rate_limiter_is_per_client():
    clock = Clock()
    limiter = ClientRateLimiter(rate=1.0, burst=2.0, clock=clock)
    assert limiter.allow("a") and limiter.allow("a")
    assert not limiter.allow("a")        # a's burst is spent
    assert limiter.allow("b")            # b starts with a full burst
    clock.advance(1.0)
    assert limiter.allow("a")            # one token refilled
    assert limiter.allowed == 4 and limiter.rejected == 1


def test_rate_limiter_lru_bound():
    limiter = ClientRateLimiter(rate=1.0, burst=1.0, max_clients=3,
                                clock=Clock())
    for i in range(10):
        limiter.allow(f"client-{i}")
    assert limiter.clients == 3
    # a forgotten client comes back with a fresh burst, not its old
    # (empty) bucket
    assert limiter.allow("client-0")


# -- the shedding policy --------------------------------------------------

def _tripped_overload(max_connections=None):
    """An OverloadController with its single watermark latched."""
    length = {"n": 100}
    controller = OverloadController(max_connections=max_connections)
    controller.watch("reactive", lambda: length["n"],
                     Watermark(high=20, low=5))
    assert not controller.accepting()    # trips the latch
    return controller, length


def test_shedding_admits_when_unconstrained():
    policy = SheddingPolicy(flight=FlightRecorder(capacity=16))
    assert policy.admit_accept().admitted
    assert policy.admit_client("anyone").admitted
    assert policy.admit_request("anything").admitted
    assert policy.shed_total == 0


def test_shedding_rejects_on_overload_with_reason():
    controller, _ = _tripped_overload()
    flight = FlightRecorder(capacity=16)
    policy = SheddingPolicy(overload=controller, retry_after=3.0,
                            flight=flight)
    decision = policy.admit_accept()
    assert decision.action == "reject"
    assert decision.reason == REASON_OVERLOAD
    assert decision.retry_after == 3.0
    # the caller accounts the rejection once the accept happened
    policy.record_rejection(decision, "client=1.2.3.4", trace_id=7)
    assert policy.shed_total == 1
    assert policy.shed_by_reason() == {REASON_OVERLOAD: 1}
    (event,) = flight.events(category="shed")
    assert "reason=overload" in event.detail
    assert "client=1.2.3.4" in event.detail
    assert event.trace_id == 7


def test_shedding_reason_prefers_connection_cap():
    controller = OverloadController(max_connections=1)
    controller.connection_opened()
    policy = SheddingPolicy(overload=controller,
                            flight=FlightRecorder(capacity=16))
    assert policy.admit_accept().reason == REASON_MAX_CONNECTIONS


def test_shedding_postpone_mode_keeps_paper_behaviour():
    controller, _ = _tripped_overload()
    policy = SheddingPolicy(overload=controller, on_overload="postpone",
                            flight=FlightRecorder(capacity=16))
    decision = policy.admit_accept()
    assert decision.action == "postpone" and not decision.admitted
    # postpone decisions self-account (there is no later accept)
    assert policy.shed_total == 1


def test_shedding_rejects_invalid_mode():
    with pytest.raises(ValueError):
        SheddingPolicy(on_overload="drop-on-floor")


def test_shedding_rate_limit_gate():
    policy = SheddingPolicy(
        limiter=ClientRateLimiter(rate=1.0, burst=1.0, clock=Clock()),
        flight=FlightRecorder(capacity=16))
    assert policy.admit_client("1.2.3.4").admitted
    decision = policy.admit_client("1.2.3.4")
    assert decision.action == "reject"
    assert decision.reason == REASON_RATE_LIMIT
    assert policy.shed_by_reason() == {REASON_RATE_LIMIT: 1}
    assert policy.admit_client("5.6.7.8").admitted  # fairness


def test_shedding_priority_classes_only_under_pressure():
    flight = FlightRecorder(capacity=16)
    controller, length = _tripped_overload()
    policy = SheddingPolicy(
        overload=controller,
        classes={"bulk": 0, "interactive": 5},
        priority_floor=1,
        flight=flight)
    # pressure on: low-priority classes shed, the rest pass
    assert not policy.admit_request("bulk").admitted
    assert policy.admit_request("interactive").admitted
    assert policy.admit_request("unknown-class").admitted  # floor default
    assert policy.shed_by_reason() == {REASON_PRIORITY: 1}
    # pressure off: everything passes again
    length["n"] = 0
    assert controller.accepting()        # clears the latch
    assert policy.admit_request("bulk").admitted


def test_shedding_status_snapshot():
    policy = SheddingPolicy(
        limiter=ClientRateLimiter(rate=1.0, burst=1.0, clock=Clock()),
        flight=FlightRecorder(capacity=16))
    policy.admit_client("a")
    policy.admit_client("a")
    status = policy.status()
    assert status["shed_total"] == 1
    assert status["rate_limited_clients"] == 1
    assert status["rate_limit_rejections"] == 1
    assert status["on_overload"] == "reject"


# -- CoDel-style sojourn dropping -----------------------------------------

def test_sojourn_queue_passes_fresh_work():
    clock = Clock()
    q = SojournQueue(FifoEventQueue(), deadline=0.5, interval=0.1,
                     clock=clock)
    q.push("a")
    q.push("b")
    assert len(q) == 2
    assert q.try_pop() == "a"
    assert q.pop(timeout=0.01) == "b"
    assert q.dropped == 0


def test_sojourn_queue_interval_grace_then_drops():
    clock = Clock()
    dropped = []
    q = SojournQueue(FifoEventQueue(), deadline=0.5, interval=0.1,
                     on_drop=lambda item, sojourn: dropped.append(item),
                     clock=clock)
    for item in ("a", "b", "c"):
        q.push(item)
    clock.advance(1.0)                   # all three are now stale
    # CoDel grace: the first stale pop only starts the interval timer
    assert q.try_pop() == "a"
    # still inside the interval: stale work continues to pass
    clock.advance(0.05)
    assert q.try_pop() == "b"
    # interval expired with sojourn still above deadline: drop begins;
    # the drop is consumed internally and the pop returns queue-empty
    clock.advance(0.1)
    assert q.try_pop() is None
    assert dropped == ["c"] and q.dropped == 1


def test_sojourn_queue_fresh_item_resets_control_law():
    clock = Clock()
    q = SojournQueue(FifoEventQueue(), deadline=0.5, interval=0.1,
                     clock=clock)
    q.push("stale")
    clock.advance(1.0)
    assert q.try_pop() == "stale"        # starts the interval
    q.push("fresh")
    clock.advance(0.2)                   # interval long expired...
    assert q.try_pop() == "fresh"        # ...but this item is young
    q.push("stale-2")
    clock.advance(1.0)
    assert q.try_pop() == "stale-2"      # law restarted: grace again


def test_sojourn_queue_droppable_filter_protects_control_items():
    clock = Clock()
    dropped = []
    q = SojournQueue(
        FifoEventQueue(), deadline=0.5, interval=0.0,
        on_drop=lambda item, sojourn: dropped.append(item),
        droppable=lambda item: item != "retire-pill",
        clock=clock)
    q.push("retire-pill")
    q.push("doomed-a")
    q.push("doomed-b")
    clock.advance(10.0)
    # the control message passes however stale; request work drops
    # (interval=0 means the grace period is a single pop)
    assert q.pop(timeout=0.01) == "retire-pill"
    assert q.pop(timeout=0.01) == "doomed-a"   # grace pop
    assert q.pop(timeout=0.01) is None
    assert dropped == ["doomed-b"]


def test_sojourn_queue_validates_deadline_and_forwards_lifecycle():
    with pytest.raises(ValueError):
        SojournQueue(FifoEventQueue(), deadline=0.0)
    q = SojournQueue(FifoEventQueue(), deadline=1.0)
    assert not q.closed
    q.close()
    assert q.closed


# -- circuit breaker / retry budget ---------------------------------------

def test_breaker_call_wraps_success_and_failure():
    clock = Clock()
    breaker = CircuitBreaker(failure_threshold=2, recovery_time=1.0,
                             clock=clock)
    assert breaker.call(lambda: "ok") == "ok"
    for _ in range(2):
        with pytest.raises(KeyError):
            breaker.call(lambda: (_ for _ in ()).throw(KeyError("x")))
    assert breaker.state == CircuitBreaker.OPEN
    with pytest.raises(CircuitOpenError):
        breaker.call(lambda: "ok")
    assert breaker.trips == 1 and breaker.rejected == 1
    clock.advance(1.0)
    assert breaker.call(lambda: "ok") == "ok"    # the probe
    assert breaker.state == CircuitBreaker.CLOSED


def test_breaker_success_resets_consecutive_failures():
    breaker = CircuitBreaker(failure_threshold=3, clock=Clock())
    breaker.record_failure()
    breaker.record_failure()
    breaker.record_success()             # streak broken
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == CircuitBreaker.CLOSED
    assert breaker.status()["failures"] == 2


def test_retry_budget_bounds_amplification():
    budget = RetryBudget(ratio=0.25, min_retries=1.0, cap=5.0)
    assert budget.can_retry()            # the cold-start allowance
    assert not budget.can_retry()        # now empty
    for _ in range(4):
        budget.record_request()          # deposits 4 * 0.25 = 1 token
    assert budget.can_retry()
    assert not budget.can_retry()
    assert budget.withdrawals == 2 and budget.refusals == 2
    for _ in range(200):
        budget.record_request()
    assert budget.balance == 5.0         # capped


def test_retry_budget_validates_ratio():
    with pytest.raises(ValueError):
        RetryBudget(ratio=1.5)


# -- brownout -------------------------------------------------------------

def test_brownout_levels_and_thresholds():
    brownout = BrownoutController(stale_threshold=0.25, bound_threshold=0.5,
                                  max_response_bytes=1 << 20)
    assert not brownout.serve_stale and brownout.response_cap() is None
    brownout.raise_level(0.3)
    assert brownout.serve_stale and brownout.response_cap() is None
    brownout.set_level(0.5)
    assert brownout.response_cap() == 1 << 20    # cap engages at threshold
    brownout.set_level(1.0)
    assert brownout.response_cap() == (1 << 20) // 4   # quarter at max
    brownout.lower_level(2.0)
    assert brownout.level == 0.0         # clamped
    brownout.raise_level(9.0)
    assert brownout.level == 1.0         # clamped
    brownout.served_stale()
    brownout.bounded()
    status = brownout.status()
    assert status["stale_served"] == 1 and status["responses_bounded"] == 1


# -- adaptive control -----------------------------------------------------

def _adaptive(latency, brownout=None, **kwargs):
    controller = OverloadController()
    controller.watch("reactive", lambda: 0, Watermark(high=20, low=5))
    adaptive = AdaptiveController(
        controller, latency_probe=lambda: latency["p99"],
        brownout=brownout, target_p99=0.25, **kwargs)
    return controller, adaptive


def test_adaptive_aimd_decrease_on_congestion():
    latency = {"p99": 1.0}
    brownout = BrownoutController()
    controller, adaptive = _adaptive(latency, brownout=brownout)
    assert adaptive.step() == (10, 2)    # 20 * 0.5, low = high // 4 (ish)
    assert controller.watermark("reactive").high == 10
    assert brownout.level > 0.0
    # keeps halving down to the floor, never below
    for _ in range(10):
        adaptive.step()
    assert controller.watermark("reactive").high == adaptive.min_high


def test_adaptive_aimd_additive_recovery():
    latency = {"p99": 0.01}
    brownout = BrownoutController()
    brownout.set_level(0.5)
    controller, adaptive = _adaptive(latency, brownout=brownout)
    assert adaptive.step() == (22, 5)    # 20 + 2 additive
    assert brownout.level < 0.5
    latency["p99"] = None                # idle: no signal, no change
    assert adaptive.step() is None
    assert controller.watermark("reactive").high == 22
    assert adaptive.status()["adjustments"] == 1
    assert adaptive.status()["last_p99"] is None


def test_adaptive_preserves_hysteresis_latch_across_retune():
    length = {"n": 100}
    controller = OverloadController()
    controller.watch("reactive", lambda: length["n"],
                     Watermark(high=20, low=5))
    assert not controller.accepting()    # latch trips
    adaptive = AdaptiveController(controller,
                                  latency_probe=lambda: 1.0,
                                  target_p99=0.25)
    adaptive.step()                      # shrinks the band
    assert controller.overloaded_queues() == ["reactive"]  # still latched


def test_adaptive_validates_decrease():
    with pytest.raises(ValueError):
        AdaptiveController(OverloadController(), decrease=1.0)


def test_hill_climb_finds_concave_peak():
    evaluations = []

    def evaluate(x):
        evaluations.append(x)
        return -(x - 37) ** 2

    best, score = hill_climb(evaluate, initial=20, lo=4, hi=128,
                             budget=32)
    assert best == 37 and score == 0
    assert len(set(evaluations)) == len(evaluations)  # cache: no repeats


def test_hill_climb_validates_initial():
    with pytest.raises(ValueError):
        hill_climb(lambda x: 0.0, initial=0, lo=4, hi=8)
