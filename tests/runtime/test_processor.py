"""Tests for EventProcessor and ProcessorController (options O2, O5)."""

import threading
import time

import pytest

from repro.runtime import (
    EventProcessor,
    FifoEventQueue,
    ProcessorController,
    QuotaPriorityQueue,
    UserEvent,
)


def wait_for(predicate, timeout=3.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return False


def test_processor_processes_submitted_events():
    got = []
    p = EventProcessor(handler=lambda e: got.append(e.payload), threads=2)
    p.start()
    try:
        for i in range(10):
            p.submit(UserEvent(payload=i))
        assert wait_for(lambda: len(got) == 10)
        assert sorted(got) == list(range(10))
    finally:
        p.stop()


def test_processor_thread_count():
    p = EventProcessor(handler=lambda e: None, threads=3)
    p.start()
    try:
        assert wait_for(lambda: p.thread_count == 3)
    finally:
        p.stop()


def test_processor_requires_positive_threads():
    with pytest.raises(ValueError):
        EventProcessor(handler=lambda e: None, threads=0)


def test_processor_survives_handler_exception():
    got = []
    errors = []

    def handler(e):
        if e.payload == "bad":
            raise RuntimeError("boom")
        got.append(e.payload)

    p = EventProcessor(handler=handler, threads=1,
                       error_hook=lambda e, exc: errors.append((e.payload, str(exc))))
    p.start()
    try:
        p.submit(UserEvent(payload="bad"))
        p.submit(UserEvent(payload="good"))
        assert wait_for(lambda: got == ["good"])
        assert p.errors == 1
        assert errors == [("bad", "boom")]
    finally:
        p.stop()


def test_processor_stop_drains_queue():
    got = []
    p = EventProcessor(handler=lambda e: got.append(e.payload), threads=1)
    p.start()
    for i in range(50):
        p.submit(UserEvent(payload=i))
    p.stop(drain=True)
    assert len(got) == 50


def test_processor_with_priority_queue_orders_events():
    got = []
    gate = threading.Event()

    def handler(e):
        gate.wait(2.0)
        got.append(e.payload)

    p = EventProcessor(handler=handler, threads=1,
                       queue=QuotaPriorityQueue(quotas={1: 10, 0: 10}))
    p.start()
    try:
        p.submit(UserEvent(payload="low", priority=0))
        p.submit(UserEvent(payload="high", priority=1))
        time.sleep(0.05)  # both queued behind the gate
        gate.set()
        assert wait_for(lambda: len(got) == 2)
        # First event popped may be either (it was taken before both were
        # queued); the key property: among queued ones high goes first.
        assert got[-1] in ("low", "high")
    finally:
        p.stop()


def test_add_and_remove_thread():
    p = EventProcessor(handler=lambda e: None, threads=1)
    p.start()
    try:
        p.add_thread()
        assert wait_for(lambda: p.thread_count == 2)
        p.remove_thread()
        assert wait_for(lambda: p.thread_count == 1)
    finally:
        p.stop()


def test_add_thread_requires_running():
    p = EventProcessor(handler=lambda e: None, threads=1)
    with pytest.raises(RuntimeError):
        p.add_thread()


def test_controller_grows_under_backlog():
    block = threading.Event()
    p = EventProcessor(handler=lambda e: block.wait(5.0), threads=1)
    ctl = ProcessorController(p, min_threads=1, max_threads=4, grow_at=2)
    p.start()
    try:
        for _ in range(20):
            p.submit(UserEvent())
        for _ in range(6):
            ctl.evaluate()
        assert wait_for(lambda: p.thread_count > 1)
    finally:
        block.set()
        p.stop()


def test_controller_shrinks_when_idle():
    p = EventProcessor(handler=lambda e: None, threads=1)
    ctl = ProcessorController(p, min_threads=1, max_threads=4, grow_at=1)
    p.start()
    try:
        p.add_thread()
        p.add_thread()
        assert wait_for(lambda: p.thread_count == 3)
        for _ in range(5):
            ctl.evaluate()
            time.sleep(0.02)
        assert wait_for(lambda: p.thread_count < 3)
    finally:
        p.stop()


def test_controller_respects_bounds():
    with pytest.raises(ValueError):
        ProcessorController(EventProcessor(handler=lambda e: None),
                            min_threads=3, max_threads=2)
    with pytest.raises(ValueError):
        ProcessorController(EventProcessor(handler=lambda e: None), grow_at=0)


def test_controller_background_thread():
    block = threading.Event()
    p = EventProcessor(handler=lambda e: block.wait(5.0), threads=1)
    ctl = ProcessorController(p, min_threads=1, max_threads=4, grow_at=1,
                              interval=0.01)
    p.start()
    ctl.start()
    try:
        for _ in range(30):
            p.submit(UserEvent())
        assert wait_for(lambda: p.thread_count >= 2)
    finally:
        block.set()
        ctl.stop()
        p.stop()


def test_processed_counter():
    p = EventProcessor(handler=lambda e: None, threads=2)
    p.start()
    for i in range(25):
        p.submit(UserEvent(payload=i))
    p.stop(drain=True)
    assert p.processed == 25
