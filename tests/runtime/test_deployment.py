"""O16 deployment plane: the process supervisor over real workers.

Every test here forks real interpreter processes — the supervisor's
whole point — so the suite keeps worker counts at 2 and workloads
small.  Synchronisation is harness-timed (``wait_until`` on supervisor
state), never slept.
"""

import random
import socket
import threading

import pytest

from harness import wait_until
from repro.runtime.deployment import ProcessSupervisor

#: importable by the fresh worker interpreters (module:attr, zero-arg)
HOOKS = "repro.servers.time_server:TimeServerHooks"

pytestmark = pytest.mark.skipif(
    not hasattr(socket, "send_fds"),
    reason="fd passing (socket.send_fds) unavailable")


def make_supervisor(procs=2, **kwargs):
    kwargs.setdefault("factory", "repro.runtime.deployment:reactor_worker")
    kwargs.setdefault("args", {"hooks": HOOKS,
                               "config": {"profiling": True,
                                          "use_codec": False}})
    return ProcessSupervisor(procs=procs, **kwargs)


def ask_time(port, timeout=10.0):
    """One request line in, one timestamp line out."""
    s = socket.create_connection(("127.0.0.1", port), timeout=timeout)
    s.settimeout(timeout)
    try:
        s.sendall(b"time please\n")
        buf = b""
        while not buf.endswith(b"\n"):
            chunk = s.recv(4096)
            if not chunk:
                raise ConnectionError("peer closed mid-reply")
            buf += chunk
        return buf
    finally:
        s.close()


def test_supervisor_spawns_and_serves():
    with make_supervisor(procs=2) as supervisor:
        status = supervisor.status()
        assert len(status["workers"]) == 2
        assert status["generation"] == 0
        for _ in range(4):  # SO_REUSEPORT spreads these across workers
            reply = ask_time(supervisor.port)
            assert reply.endswith(b"\n") and reply[4:5] == b"-"
    assert supervisor.status()["workers"] == []


def test_crashed_worker_respawns_within_budget():
    # A seeded storm: four induced crashes, picked pseudo-randomly,
    # each the way a segfault dies (os._exit, no cleanup).  The monitor
    # must respawn every one within the budget and keep serving.
    rng = random.Random(7)
    with make_supervisor(procs=2, respawn_limit=10,
                         respawn_window=60.0) as supervisor:
        for round_number in range(1, 5):
            victim = rng.choice(supervisor._live_workers())
            victim.send({"type": "crash", "code": 3})
            wait_until(
                lambda: supervisor.status()["restarts_total"]
                >= round_number,
                message=f"crash {round_number} not respawned")
            wait_until(
                lambda: len(supervisor.status()["workers"]) == 2
                and victim.pid not in supervisor.status()["workers"],
                message="worker table not back to full strength")
            assert ask_time(supervisor.port).endswith(b"\n")
        status = supervisor.status()
        assert status["restarts_total"] == 4
        assert not status["respawn_exhausted"]


def test_respawn_storm_beyond_budget_latches_exhausted():
    with make_supervisor(procs=1, respawn_limit=1,
                         respawn_window=60.0) as supervisor:
        first, = supervisor._live_workers()
        first.send({"type": "crash", "code": 3})
        wait_until(lambda: supervisor.status()["restarts_total"] == 1,
                   message="first crash should respawn")
        wait_until(lambda: len(supervisor.status()["workers"]) == 1,
                   message="replacement never became live")
        second, = supervisor._live_workers()
        second.send({"type": "crash", "code": 3})
        wait_until(lambda: supervisor.status()["respawn_exhausted"],
                   message="budget breach should latch the storm guard")
        assert supervisor.status()["restarts_total"] == 1


def test_rolling_restart_replaces_every_worker():
    with make_supervisor(procs=2) as supervisor:
        before = set(supervisor.status()["workers"])
        supervisor.rolling_restart()
        after = set(supervisor.status()["workers"])
        assert len(after) == 2
        assert before.isdisjoint(after)
        assert supervisor.status()["generation"] == 1
        assert ask_time(supervisor.port).endswith(b"\n")


def test_rolling_restart_drops_no_inflight_connections():
    """Zero downtime under load: closed-loop keep-alive clients hammer
    through a rolling restart.  A worker may close a connection at a
    request boundary while draining (the client reconnects — ordinary
    HTTP keep-alive semantics); what must never happen is a truncated
    reply: response bytes started and then cut."""
    with make_supervisor(procs=2) as supervisor:
        port = supervisor.port
        stop = threading.Event()
        truncated = []
        completed = [0] * 4

        def client(index):
            sock = None
            while not stop.is_set():
                try:
                    if sock is None:
                        sock = socket.create_connection(
                            ("127.0.0.1", port), timeout=10)
                        sock.settimeout(10)
                    sock.sendall(b"tick\n")
                except OSError:
                    # Send failed: the previous reply completed, so
                    # this is a clean boundary close.  Reconnect.
                    sock = None
                    continue
                buf = b""
                try:
                    while not buf.endswith(b"\n"):
                        chunk = sock.recv(4096)
                        if not chunk:
                            raise ConnectionError("eof")
                        buf += chunk
                    completed[index] += 1
                except OSError:
                    sock = None
                    if buf:  # reply started, then died: a real drop
                        truncated.append(buf)
                    # buf empty: boundary race — the request was never
                    # admitted; an idempotent retry is the protocol.

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(4)]
        for t in threads:
            t.start()
        try:
            wait_until(lambda: sum(completed) >= 20,
                       message="load never ramped")
            before = set(supervisor.status()["workers"])
            supervisor.rolling_restart()
            after = set(supervisor.status()["workers"])
            floor = sum(completed) + 10
            wait_until(lambda: sum(completed) >= floor,
                       message="no traffic after the restart")
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=10)
        assert truncated == [], truncated[:3]
        assert before.isdisjoint(after)
        assert min(completed) > 0, completed


def test_aggregated_status_fields_cover_every_worker_exactly_once():
    with make_supervisor(procs=2) as supervisor:
        for _ in range(6):
            ask_time(supervisor.port)
        wait_until(lambda: len(supervisor.collect_status_fields()) == 2,
                   message="both workers should answer the status poll")
        fields = supervisor.aggregated_status_fields()
        as_dict = dict(fields)
        pids = supervisor.status()["workers"]
        # one labelled section per live worker, no duplicates
        labelled = [name for name, _v in fields
                    if name.startswith("server_requests_total{worker=")]
        assert len(labelled) == len(set(labelled)) == 2
        assert {f'server_requests_total{{worker="{pid}"}}'
                for pid in pids} == set(labelled)
        # the cluster total is exactly the sum of the per-worker parts
        assert float(as_dict["server_requests_total"]) == sum(
            float(as_dict[name]) for name in labelled) == 6.0
        assert int(as_dict["Workers"]) == 2


def test_generated_worker_args_reject_unimportable_hooks():
    from repro.runtime.deployment import generated_worker_args

    class LocalHooks:  # not importable from a fresh interpreter
        pass

    class FakeConfiguration:
        host = "127.0.0.1"

    with pytest.raises(ValueError, match="importable"):
        generated_worker_args("pkg.deployment", "/tmp/pkg/deployment.py",
                              FakeConfiguration(), LocalHooks())


def test_drain_stops_workers_and_releases_socket():
    supervisor = make_supervisor(procs=2)
    supervisor.start()
    port = supervisor.port
    assert supervisor.drain(timeout=5.0)
    assert supervisor.status()["workers"] == []
    with pytest.raises(OSError):
        socket.create_connection(("127.0.0.1", port), timeout=0.5)
