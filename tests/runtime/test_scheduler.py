"""Tests for FifoEventQueue and QuotaPriorityQueue (option O8)."""

import threading

import pytest

from repro.runtime import FifoEventQueue, QuotaPriorityQueue


# -- FIFO ---------------------------------------------------------------------


def test_fifo_order():
    q = FifoEventQueue()
    for i in range(5):
        q.push(i)
    assert [q.try_pop() for _ in range(5)] == [0, 1, 2, 3, 4]


def test_fifo_ignores_priority():
    q = FifoEventQueue()
    q.push("low", priority=0)
    q.push("high", priority=99)
    assert q.try_pop() == "low"


def test_fifo_try_pop_empty():
    assert FifoEventQueue().try_pop() is None


def test_fifo_pop_timeout():
    q = FifoEventQueue()
    assert q.pop(timeout=0.01) is None


def test_fifo_close_unblocks():
    q = FifoEventQueue()
    results = []

    def consumer():
        results.append(q.pop(timeout=5.0))

    t = threading.Thread(target=consumer)
    t.start()
    q.close()
    t.join(timeout=2.0)
    assert results == [None]


def test_fifo_len():
    q = FifoEventQueue()
    q.push(1)
    q.push(2)
    assert len(q) == 2


def test_fifo_blocking_pop_gets_item():
    q = FifoEventQueue()
    results = []

    def consumer():
        results.append(q.pop(timeout=5.0))

    t = threading.Thread(target=consumer)
    t.start()
    q.push("item")
    t.join(timeout=2.0)
    assert results == ["item"]


# -- QuotaPriorityQueue ---------------------------------------------------------


def drain(q, n):
    return [q.try_pop() for _ in range(n)]


def test_quota_higher_priority_first():
    q = QuotaPriorityQueue(quotas={1: 10, 0: 10})
    q.push("low", priority=0)
    q.push("high", priority=1)
    assert q.try_pop() == "high"
    assert q.try_pop() == "low"


def test_quota_ratio_enforced_under_backlog():
    # Portal (prio 1) quota 4, homepage (prio 0) quota 1 -> 4:1 service.
    q = QuotaPriorityQueue(quotas={1: 4, 0: 1})
    for i in range(20):
        q.push(f"p{i}", priority=1)
        q.push(f"h{i}", priority=0)
    first10 = drain(q, 10)
    portal = sum(1 for x in first10 if x.startswith("p"))
    home = sum(1 for x in first10 if x.startswith("h"))
    assert portal == 8 and home == 2


def test_quota_no_starvation():
    q = QuotaPriorityQueue(quotas={1: 100, 0: 1})
    for i in range(300):
        q.push(f"p{i}", priority=1)
    q.push("home", priority=0)
    got = drain(q, 102)
    assert "home" in got  # served within the first round+1


def test_quota_empty_level_does_not_burn_quota():
    q = QuotaPriorityQueue(quotas={1: 2, 0: 2})
    for i in range(4):
        q.push(f"h{i}", priority=0)
    # No priority-1 backlog: homepage events flow without stalls.
    assert drain(q, 4) == ["h0", "h1", "h2", "h3"]


def test_quota_round_resets():
    q = QuotaPriorityQueue(quotas={1: 1, 0: 1})
    for i in range(3):
        q.push(f"p{i}", priority=1)
        q.push(f"h{i}", priority=0)
    got = drain(q, 6)
    assert got == ["p0", "h0", "p1", "h1", "p2", "h2"]


def test_quota_fifo_within_level():
    q = QuotaPriorityQueue(quotas={0: 10})
    for i in range(5):
        q.push(i, priority=0)
    assert drain(q, 5) == [0, 1, 2, 3, 4]


def test_quota_default_for_unlisted_level():
    q = QuotaPriorityQueue(quotas={}, default_quota=2)
    q.push("a", priority=5)
    q.push("b", priority=5)
    q.push("c", priority=1)
    assert drain(q, 3) == ["a", "b", "c"]


def test_quota_validation():
    with pytest.raises(ValueError):
        QuotaPriorityQueue(quotas={0: 0})
    with pytest.raises(ValueError):
        QuotaPriorityQueue(quotas={}, default_quota=0)


def test_quota_len_and_backlog():
    q = QuotaPriorityQueue(quotas={1: 1, 0: 1})
    q.push("a", priority=1)
    q.push("b", priority=0)
    q.push("c", priority=0)
    assert len(q) == 3
    assert q.backlog(0) == 2 and q.backlog(1) == 1


def test_quota_pop_timeout_and_close():
    q = QuotaPriorityQueue(quotas={})
    assert q.pop(timeout=0.01) is None
    q.close()
    assert q.pop() is None


def test_quota_threaded_producer_consumer():
    q = QuotaPriorityQueue(quotas={1: 2, 0: 1})
    got = []

    def consumer():
        while True:
            item = q.pop(timeout=1.0)
            if item is None:
                return
            got.append(item)

    t = threading.Thread(target=consumer)
    t.start()
    for i in range(30):
        q.push(("p", i), priority=1)
        q.push(("h", i), priority=0)
    import time

    deadline = time.monotonic() + 3.0
    while len(got) < 60 and time.monotonic() < deadline:
        time.sleep(0.01)
    q.close()
    t.join(timeout=2.0)
    assert len(got) == 60


def test_quota_long_run_ratio_converges():
    q = QuotaPriorityQueue(quotas={1: 10, 0: 1})
    for i in range(1100):
        q.push(("p", i), priority=1)
    for i in range(110):
        q.push(("h", i), priority=0)
    got = drain(q, 550)
    portal = sum(1 for x in got if x[0] == "p")
    home = len(got) - portal
    assert portal / home == pytest.approx(10.0, rel=0.1)
