"""Tests for AsyncFileIO (Proactor emulation), IdleConnectionReaper and
Container."""

import time

import pytest

from repro.cache import FileCache
from repro.runtime import (
    AsyncFileIO,
    AsynchronousCompletionToken,
    Container,
    IdleConnectionReaper,
)


def wait_for(predicate, timeout=3.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return False


# -- AsyncFileIO ---------------------------------------------------------------


def test_read_file_posts_completion(tmp_path):
    (tmp_path / "f.txt").write_bytes(b"contents")
    got = []
    io_pool = AsyncFileIO(sink=got.append, threads=1, root=str(tmp_path))
    io_pool.start()
    try:
        io_pool.read_file("/f.txt")
        assert wait_for(lambda: got)
        assert got[0].ok and got[0].payload == b"contents"
    finally:
        io_pool.stop()


def test_read_missing_file_posts_error(tmp_path):
    got = []
    io_pool = AsyncFileIO(sink=got.append, threads=1, root=str(tmp_path))
    io_pool.start()
    try:
        io_pool.read_file("/missing.txt")
        assert wait_for(lambda: got)
        assert not got[0].ok and isinstance(got[0].error, OSError)
    finally:
        io_pool.stop()


def test_act_round_trips_context(tmp_path):
    (tmp_path / "f").write_bytes(b"x")
    got = []
    io_pool = AsyncFileIO(sink=got.append, threads=1, root=str(tmp_path))
    io_pool.start()
    try:
        io_pool.read_file("/f", act=AsynchronousCompletionToken(context={"req": 7}))
        assert wait_for(lambda: got)
        assert got[0].token.context == {"req": 7}
    finally:
        io_pool.stop()


def test_cache_hit_completes_without_disk(tmp_path):
    (tmp_path / "f").write_bytes(b"cached")
    cache = FileCache.for_directory(str(tmp_path), capacity=1 << 20)
    got = []
    io_pool = AsyncFileIO(sink=got.append, threads=1, cache=cache)
    io_pool.start()
    try:
        io_pool.read_file("/f")
        assert wait_for(lambda: len(got) == 1)
        io_pool.read_file("/f")   # now a cache hit: completes synchronously
        assert wait_for(lambda: len(got) == 2)
        assert io_pool.cache_hits == 1
        assert got[1].payload == b"cached"
    finally:
        io_pool.stop()


def test_completion_priority_propagates(tmp_path):
    (tmp_path / "f").write_bytes(b"x")
    got = []
    io_pool = AsyncFileIO(sink=got.append, threads=1, root=str(tmp_path))
    io_pool.start()
    try:
        io_pool.read_file("/f", priority=3)
        assert wait_for(lambda: got)
        assert got[0].priority == 3
    finally:
        io_pool.stop()


def test_traversal_outside_root_rejected(tmp_path):
    got = []
    io_pool = AsyncFileIO(sink=got.append, threads=1, root=str(tmp_path))
    io_pool.start()
    try:
        io_pool.read_file("/../../etc/hostname")
        assert wait_for(lambda: got)
        assert not got[0].ok
    finally:
        io_pool.stop()


def test_thread_validation():
    with pytest.raises(ValueError):
        AsyncFileIO(sink=lambda e: None, threads=0)


# -- IdleConnectionReaper ---------------------------------------------------------


class FakeConn:
    def __init__(self, last_activity=0.0):
        self.last_activity = last_activity
        self.closed = False


def test_reaper_closes_only_idle():
    now = {"t": 100.0}
    reaped = []
    reaper = IdleConnectionReaper(idle_limit=10.0, on_idle=reaped.append,
                                  clock=lambda: now["t"])
    fresh = FakeConn(last_activity=95.0)
    stale = FakeConn(last_activity=80.0)
    reaper.watch(fresh)
    reaper.watch(stale)
    assert reaper.scan() == 1
    assert reaped == [stale]
    assert reaper.watched_count == 1


def test_reaper_skips_already_closed():
    reaped = []
    reaper = IdleConnectionReaper(idle_limit=1.0, on_idle=reaped.append,
                                  clock=lambda: 100.0)
    dead = FakeConn(last_activity=0.0)
    dead.closed = True
    reaper.watch(dead)
    assert reaper.scan() == 0
    assert reaper.watched_count == 0  # forgotten


def test_reaper_unwatch():
    reaper = IdleConnectionReaper(idle_limit=1.0, on_idle=lambda h: None,
                                  clock=lambda: 100.0)
    c = FakeConn()
    reaper.watch(c)
    reaper.unwatch(c)
    assert reaper.scan() == 0


def test_reaper_validation():
    with pytest.raises(ValueError):
        IdleConnectionReaper(idle_limit=0, on_idle=lambda h: None)


def test_reaper_counts():
    now = {"t": 100.0}
    reaper = IdleConnectionReaper(idle_limit=1.0, on_idle=lambda h: None,
                                  clock=lambda: now["t"])
    for _ in range(3):
        reaper.watch(FakeConn(last_activity=0.0))
    reaper.scan()
    assert reaper.reaped == 3


# -- Container ---------------------------------------------------------------------


class FakeCommunicator:
    def __init__(self):
        self.handle = object()
        self.readable_calls = 0
        self.writable_calls = 0
        self.closed = False

    def on_readable(self, event):
        self.readable_calls += 1

    def on_writable(self, event):
        self.writable_calls += 1

    def close(self):
        self.closed = True


class FakeEvent:
    def __init__(self, handle):
        self.handle = handle


def test_container_routes_by_handle():
    cont = Container()
    a, b = FakeCommunicator(), FakeCommunicator()
    cont.add(a)
    cont.add(b)
    cont.route_readable(FakeEvent(a.handle))
    cont.route_writable(FakeEvent(b.handle))
    assert a.readable_calls == 1 and a.writable_calls == 0
    assert b.writable_calls == 1 and b.readable_calls == 0


def test_container_unknown_handle_ignored():
    cont = Container()
    cont.route_readable(FakeEvent(object()))  # must not raise


def test_container_remove_and_len():
    cont = Container()
    a = FakeCommunicator()
    cont.add(a)
    assert len(cont) == 1
    cont.remove(a)
    assert len(cont) == 0
    assert cont.lookup(a.handle) is None


def test_container_close_all():
    cont = Container()
    conns = [FakeCommunicator() for _ in range(3)]
    for c in conns:
        cont.add(c)
    cont.close_all()
    assert all(c.closed for c in conns)
