"""Tests for the watermark overload controller (option O9)."""

import pytest

from repro.runtime import OverloadController, Watermark


def test_watermark_validation():
    with pytest.raises(ValueError):
        Watermark(high=5, low=5)
    with pytest.raises(ValueError):
        Watermark(high=5, low=-1)
    Watermark(high=20, low=5)  # the Fig 6 configuration


def test_accepts_when_nothing_watched():
    assert OverloadController().accepting()


def test_trips_above_high_watermark():
    length = {"n": 0}
    ctl = OverloadController()
    ctl.watch("q", probe=lambda: length["n"], mark=Watermark(high=20, low=5))
    length["n"] = 20
    assert ctl.accepting()          # 20 is not > 20
    length["n"] = 21
    assert not ctl.accepting()
    assert ctl.overloaded_queues() == ["q"]


def test_hysteresis_clears_only_below_low():
    length = {"n": 25}
    ctl = OverloadController()
    ctl.watch("q", probe=lambda: length["n"], mark=Watermark(high=20, low=5))
    assert not ctl.accepting()
    length["n"] = 10               # between low and high: still tripped
    assert not ctl.accepting()
    length["n"] = 4                # below low: clears
    assert ctl.accepting()
    assert ctl.overloaded_queues() == []


def test_retrips_after_clearing():
    length = {"n": 0}
    ctl = OverloadController()
    ctl.watch("q", probe=lambda: length["n"], mark=Watermark(high=20, low=5))
    length["n"] = 30
    assert not ctl.accepting()
    length["n"] = 0
    assert ctl.accepting()
    length["n"] = 30
    assert not ctl.accepting()


def test_multiple_queues_any_trips():
    cpu = {"n": 0}
    disk = {"n": 0}
    ctl = OverloadController()
    ctl.watch("cpu", probe=lambda: cpu["n"], mark=Watermark(high=20, low=5))
    ctl.watch("disk", probe=lambda: disk["n"], mark=Watermark(high=10, low=2))
    disk["n"] = 11                 # disk bottleneck alone blocks accepts
    assert not ctl.accepting()
    disk["n"] = 1
    assert ctl.accepting()


def test_connection_cap_mechanism():
    ctl = OverloadController(max_connections=2)
    assert ctl.accepting()
    ctl.connection_opened()
    ctl.connection_opened()
    assert not ctl.accepting()
    ctl.connection_closed()
    assert ctl.accepting()


def test_connection_cap_validation():
    with pytest.raises(ValueError):
        OverloadController(max_connections=0)


def test_connection_closed_never_negative():
    ctl = OverloadController()
    ctl.connection_closed()
    assert ctl.open_connections == 0


def test_postponed_accounting():
    length = {"n": 100}
    ctl = OverloadController()
    ctl.watch("q", probe=lambda: length["n"], mark=Watermark(high=20, low=5))
    for _ in range(3):
        ctl.accepting()
    assert ctl.postponed_accepts == 3


def test_unwatch():
    length = {"n": 100}
    ctl = OverloadController()
    ctl.watch("q", probe=lambda: length["n"], mark=Watermark(high=20, low=5))
    assert not ctl.accepting()
    ctl.unwatch("q")
    assert ctl.accepting()


# -- status snapshot (feeds the observability sampler) -----------------------


def test_status_snapshot_values():
    length = {"n": 30}
    ctl = OverloadController(max_connections=50)
    ctl.watch("q", probe=lambda: length["n"], mark=Watermark(high=20, low=5))
    ctl.connection_opened()
    assert not ctl.accepting()             # trips the latch, postpones one
    status = ctl.status()
    assert status["open_connections"] == 1
    assert status["max_connections"] == 50
    assert status["postponed_accepts"] == 1
    assert status["tripped"] == ["q"]
    assert status["queues"]["q"] == {
        "length": 30, "high": 20, "low": 5, "tripped": True}


def test_status_is_read_only():
    """status() must never trip or clear the hysteresis latch."""
    length = {"n": 30}
    ctl = OverloadController()
    ctl.watch("q", probe=lambda: length["n"], mark=Watermark(high=20, low=5))
    status = ctl.status()                  # probes above high — no trip
    assert status["queues"]["q"]["length"] == 30
    assert status["queues"]["q"]["tripped"] is False
    assert ctl.overloaded_queues() == []
    assert not ctl.accepting()             # accepting() does the tripping
    length["n"] = 1
    assert ctl.status()["queues"]["q"]["tripped"] is True   # no clear either
    assert ctl.accepting()                 # accepting() below low does clear


def test_status_probe_exception_reports_none():
    def probe():
        raise RuntimeError("probe died")

    ctl = OverloadController()
    ctl.watch("q", probe=probe, mark=Watermark(high=20, low=5))
    status = ctl.status()
    assert status["queues"]["q"]["length"] is None
    assert status["queues"]["q"]["tripped"] is False
